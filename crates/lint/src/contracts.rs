//! Cross-crate RPC contract checker.
//!
//! Every client `forward("name")` / provider `margo.register("name")`
//! pair is a dynamically-bound contract the Rust type system cannot see
//! across crates: providers are torn down and re-registered at runtime,
//! so a mismatch only surfaces as an RPC-not-found (or a codec error) on
//! a live node. This analysis rebuilds the contract statically:
//!
//! 1. a **constant table** maps every `pub const NAME: &str = "…"` to its
//!    value, so call sites that name RPCs through the per-crate
//!    `rpc_names` modules resolve exactly like string literals;
//! 2. every registration site (`register`, `register_typed`, and the
//!    Bedrock `handler!` wrapper macro) and every call site (the
//!    `forward` family, `notify`, `rpc_id_for_name`, the Bedrock
//!    `ServiceHandle::call` wrapper, and the service-client
//!    `call`/`call_raw` chokepoints) is extracted with its argument and
//!    reply types where they are syntactically evident — closure
//!    parameter annotations, turbofish type parameters, `let x: T =`
//!    bindings, inline struct literals, and local `let`/parameter
//!    bindings of forwarded values;
//! 3. the merged workspace table is checked for (a) calls naming an RPC
//!    no provider registers, (b) registered RPCs no client ever calls
//!    (dead surface), and (c) name pairs whose argument or reply type
//!    idents disagree.
//!
//! Types that cannot be determined — raw byte payloads, dynamically
//! computed values — act as wildcards: a mismatch is only reported when
//! *both* sides are known. `serde_json::Value` is also a wildcard (it
//! deserializes from anything the codec accepts).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{column_of, is_ident_byte, line_of, matching_brace};
use crate::source::SourceFile;

/// Whether a site registers an RPC or calls one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// A `register`/`register_typed`/`handler!` site.
    Register,
    /// A `forward`-family, `notify`, `rpc_id_for_name`, or `call` site.
    Call,
}

/// One registration or call site in the workspace contract table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RpcSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    pub role: Role,
    /// The method or macro through which the site was found.
    pub via: String,
    /// Resolved RPC name; `None` when the name expression is dynamic
    /// (e.g. a function parameter inside the margo plumbing itself).
    pub name: Option<String>,
    /// The source expression in name position, for the report.
    pub name_expr: String,
    /// Normalized argument type ident, when syntactically evident.
    pub arg_type: Option<String>,
    /// Normalized reply type ident, when syntactically evident.
    pub reply_type: Option<String>,
}

/// One contract violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ContractIssue {
    pub file: String,
    pub function: String,
    /// `unregistered:<rpc>`, `dead:<rpc>`, `arg-mismatch:<rpc>`, or
    /// `reply-mismatch:<rpc>` — the allowlist kind key.
    pub kind: String,
    pub rpc: String,
    pub line: usize,
    pub column: usize,
    pub detail: String,
}

// ----------------------------------------------------------------------
// Constant table
// ----------------------------------------------------------------------

/// Workspace map of `const IDENT: &str = "value"` definitions.
#[derive(Debug, Default)]
pub struct ConstTable {
    /// `(crate, ident) → value`; `None` marks an ident defined twice in
    /// one crate with different values (unresolvable).
    by_crate: BTreeMap<(String, String), Option<String>>,
    /// `ident → all values across the workspace`, for the global-unique
    /// fallback when a cross-crate path re-exports a constant.
    by_ident: BTreeMap<String, BTreeSet<String>>,
}

impl ConstTable {
    /// Scans every file for string-constant definitions.
    pub fn build(files: &[SourceFile]) -> ConstTable {
        let mut table = ConstTable::default();
        for file in files {
            scan_consts(file, &mut table);
        }
        table
    }

    /// Resolves `ident` as seen from `crate_name`: same-crate definition
    /// first, then a workspace-wide unique value.
    pub fn resolve(&self, crate_name: &str, ident: &str) -> Option<&str> {
        if let Some(value) = self.by_crate.get(&(crate_name.to_string(), ident.to_string())) {
            return value.as_deref();
        }
        match self.by_ident.get(ident) {
            Some(values) if values.len() == 1 => values.iter().next().map(|s| s.as_str()),
            _ => None,
        }
    }

    /// Number of distinct (crate, ident) definitions.
    pub fn len(&self) -> usize {
        self.by_crate.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_crate.is_empty()
    }
}

/// Finds `const IDENT: &str = "…";` (with any `pub` qualifier and an
/// optional `'static` lifetime) and reads the value from the raw bytes —
/// the sanitizer blanks literals but preserves offsets.
fn scan_consts(file: &SourceFile, table: &mut ConstTable) {
    let text = &file.text;
    let mut i = 0usize;
    while i + 5 < text.len() {
        if !word_at(text, i, "const") {
            i += 1;
            continue;
        }
        let mut j = skip_ws(text, i + 5);
        let ident_start = j;
        while j < text.len() && is_ident_byte(text[j]) {
            j += 1;
        }
        if j == ident_start {
            i += 5;
            continue;
        }
        let ident = String::from_utf8_lossy(&text[ident_start..j]).into_owned();
        j = skip_ws(text, j);
        if text.get(j) != Some(&b':') {
            i = j;
            continue;
        }
        // The type must be a `str` reference; scan it up to the `=`.
        let type_start = j + 1;
        let mut eq = type_start;
        while eq < text.len() && text[eq] != b'=' && text[eq] != b';' {
            eq += 1;
        }
        if text.get(eq) != Some(&b'=') {
            i = eq;
            continue;
        }
        let type_text = String::from_utf8_lossy(&text[type_start..eq]);
        if !type_text.contains("str") {
            i = eq;
            continue;
        }
        // Skip whitespace in the RAW buffer: the sanitizer blanked the
        // string literal to spaces, so the sanitized text cannot tell
        // where the value starts.
        let value_start = skip_ws(&file.raw, eq + 1);
        if file.raw.get(value_start) != Some(&b'"') {
            i = eq;
            continue;
        }
        let mut end = value_start + 1;
        while end < file.raw.len() && file.raw[end] != b'"' {
            end += 1;
        }
        let value = String::from_utf8_lossy(&file.raw[value_start + 1..end]).into_owned();
        table
            .by_crate
            .entry((file.crate_name.clone(), ident.clone()))
            .and_modify(|existing| {
                if existing.as_deref() != Some(value.as_str()) {
                    *existing = None;
                }
            })
            .or_insert_with(|| Some(value.clone()));
        table.by_ident.entry(ident).or_default().insert(value);
        i = end + 1;
    }
}

// ----------------------------------------------------------------------
// Site extraction
// ----------------------------------------------------------------------

struct Callee {
    name: &'static str,
    role: Role,
    /// Index of the RPC-name argument.
    name_arg: usize,
    /// Index of the serialized-input argument, when typed.
    input_arg: Option<usize>,
    /// Minimum argument count (filters `fabric.register(addr)`).
    min_args: usize,
    /// `true` for `handler!` (macro invocation, not a method call).
    is_macro: bool,
    /// Wrappers are only recorded when the name resolves.
    requires_resolution: bool,
    /// Also match as a free function (`rpc_id_for_name(…)`), not just as
    /// a method — its own `fn` definition is excluded.
    allow_free: bool,
}

const CALLEES: &[Callee] = &[
    Callee { name: "register_typed", role: Role::Register, name_arg: 0, input_arg: None, min_args: 3, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "register", role: Role::Register, name_arg: 0, input_arg: None, min_args: 3, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "handler", role: Role::Register, name_arg: 0, input_arg: Some(1), min_args: 2, is_macro: true, requires_resolution: false, allow_free: false },
    Callee { name: "forward", role: Role::Call, name_arg: 1, input_arg: Some(3), min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "forward_with_context", role: Role::Call, name_arg: 1, input_arg: Some(3), min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "forward_timeout", role: Role::Call, name_arg: 1, input_arg: Some(3), min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "forward_full", role: Role::Call, name_arg: 1, input_arg: Some(3), min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "forward_raw", role: Role::Call, name_arg: 1, input_arg: None, min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "notify", role: Role::Call, name_arg: 1, input_arg: Some(3), min_args: 4, is_macro: false, requires_resolution: false, allow_free: false },
    Callee { name: "rpc_id_for_name", role: Role::Call, name_arg: 0, input_arg: None, min_args: 1, is_macro: false, requires_resolution: false, allow_free: true },
    Callee { name: "call", role: Role::Call, name_arg: 0, input_arg: Some(1), min_args: 2, is_macro: false, requires_resolution: true, allow_free: false },
    Callee { name: "call_raw", role: Role::Call, name_arg: 0, input_arg: None, min_args: 2, is_macro: false, requires_resolution: true, allow_free: false },
];

/// Extracts every registration and call site from one file.
pub fn sites(file: &SourceFile, consts: &ConstTable) -> Vec<RpcSite> {
    let text = &file.text;
    let mut out = Vec::new();
    for callee in CALLEES {
        let needle = callee.name.as_bytes();
        let mut i = 1usize;
        while i + needle.len() < text.len() {
            if &text[i..i + needle.len()] != needle
                || is_ident_byte(text[i + needle.len()])
                || is_ident_byte(text[i - 1])
            {
                i += 1;
                continue;
            }
            // Methods need a `.` receiver (so `RemiProvider::register(…)`
            // constructors never match); `handler!` needs its bang.
            let mut j = i + needle.len();
            if callee.is_macro {
                if text.get(j) != Some(&b'!') {
                    i += 1;
                    continue;
                }
                j += 1;
            } else if text[i - 1] != b'.' {
                // Free-function form: allowed only for callees that opt
                // in, and never at the definition site (`fn …(`).
                if !callee.allow_free || preceded_by_fn_keyword(text, i) {
                    i += 1;
                    continue;
                }
            }
            let turbofish = parse_turbofish(text, &mut j);
            j = skip_ws(text, j);
            if text.get(j) != Some(&b'(') {
                i += 1;
                continue;
            }
            let close = matching_paren(text, j);
            let args = split_args(text, j + 1, close);
            if args.len() < callee.min_args {
                i = j + 1;
                continue;
            }
            if let Some(site) = build_site(file, consts, callee, i, &args, &turbofish, j, close) {
                out.push(site);
            }
            i = j + 1;
        }
    }
    out.sort();
    out
}

#[allow(clippy::too_many_arguments)]
fn build_site(
    file: &SourceFile,
    consts: &ConstTable,
    callee: &Callee,
    word: usize,
    args: &[(usize, usize)],
    turbofish: &[String],
    open: usize,
    close: usize,
) -> Option<RpcSite> {
    let text = &file.text;
    let (name_start, name_end) = args[callee.name_arg];
    let name_expr =
        String::from_utf8_lossy(&text[name_start..name_end]).trim().to_string();
    let name = resolve_name(file, consts, name_start, name_end);
    if callee.requires_resolution && name.is_none() {
        return None;
    }

    let function = file
        .function_at(word)
        .map(|f| f.name.clone())
        .unwrap_or_else(|| "<module>".to_string());

    let mut arg_type = None;
    let mut reply_type = None;
    match callee.role {
        Role::Register => {
            if callee.is_macro {
                // `handler!(NAME, ArgType, |…| …)`: the second macro
                // argument is the decoded argument type.
                if let Some(&(s, e)) = args.get(1) {
                    arg_type = normalize_type(&String::from_utf8_lossy(&text[s..e]));
                }
            } else if callee.name == "register_typed" {
                // `register_typed::<I, O, _>` or the handler closure's
                // first parameter annotation.
                arg_type = turbofish.first().and_then(|t| normalize_type(t));
                reply_type = turbofish.get(1).and_then(|t| normalize_type(t));
                if let Some((params, body)) = closure_in(text, open + 1, close) {
                    if arg_type.is_none() {
                        arg_type = closure_first_param_type(text, params);
                    }
                    if reply_type.is_none() {
                        reply_type = closure_ok_type(text, body);
                    }
                }
            }
        }
        Role::Call => {
            // Reply: explicit turbofish output, else a `let x: T =`
            // statement prefix annotation.
            reply_type = turbofish.get(1).and_then(|t| normalize_type(t));
            if reply_type.is_none() {
                reply_type = let_annotation_type(text, word);
            }
            if let Some(input) = callee.input_arg {
                if let Some(&(s, e)) = args.get(input) {
                    arg_type = type_of_expr(file, s, e);
                }
            }
        }
    }

    Some(RpcSite {
        file: file.rel_path.clone(),
        function,
        crate_name: file.crate_name.clone(),
        line: line_of(text, word),
        column: column_of(text, word),
        role: callee.role,
        via: if callee.is_macro { format!("{}!", callee.name) } else { callee.name.to_string() },
        name,
        name_expr,
        arg_type,
        reply_type,
    })
}

/// Resolves the expression in name position: a string literal (read from
/// the raw bytes) or a constant path.
pub(crate) fn resolve_name(
    file: &SourceFile,
    consts: &ConstTable,
    start: usize,
    end: usize,
) -> Option<String> {
    let text = &file.text;
    // Lead-in (`&`, `*`, whitespace) is identical in raw and sanitized
    // text, but the literal itself only survives in raw — skip on raw.
    let mut s = skip_ws(&file.raw, start);
    while s < end && (file.raw[s] == b'&' || file.raw[s] == b'*') {
        s = skip_ws(&file.raw, s + 1);
    }
    if s >= end {
        return None;
    }
    if file.raw[s] == b'"' {
        let mut e = s + 1;
        while e < end && file.raw[e] != b'"' {
            e += 1;
        }
        return Some(String::from_utf8_lossy(&file.raw[s + 1..e]).into_owned());
    }
    // A path: `rpc::PUT`, `proto::GET_CONFIG`, `crate::provider::rpc::PUT`.
    let path_start = s;
    while s < end && (is_ident_byte(text[s]) || text[s] == b':') {
        s += 1;
    }
    if skip_ws(text, s) != end && s != end {
        return None; // trailing tokens: a method call or other expression
    }
    let path = String::from_utf8_lossy(&text[path_start..s]);
    let ident = path.rsplit("::").next().unwrap_or(&path);
    if ident.is_empty() || !ident.bytes().all(is_ident_byte) {
        return None;
    }
    consts.resolve(&file.crate_name, ident).map(str::to_string)
}

// ----------------------------------------------------------------------
// Type extraction helpers
// ----------------------------------------------------------------------

/// Normalizes a type expression: whitespace stripped, references and
/// path qualifiers dropped (`&proto::QueryArgs` → `QueryArgs`). Returns
/// `None` for underscores and empty input.
pub fn normalize_type(s: &str) -> Option<String> {
    let mut t = s.trim();
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest.trim_start();
            if let Some(rest) = t.strip_prefix("mut ") {
                t = rest.trim_start();
            }
            if t.starts_with('\'') {
                // Skip a lifetime: `&'static str` → `str`.
                let end = t[1..]
                    .find(|c: char| !c.is_alphanumeric() && c != '_')
                    .map(|p| p + 1)
                    .unwrap_or(t.len());
                t = t[end..].trim_start();
            }
            continue;
        }
        break;
    }
    let compact: String = t.chars().filter(|c| !c.is_whitespace()).collect();
    let t = compact.as_str();
    if t.is_empty() || t == "_" {
        return None;
    }
    // Drop path qualifiers: every `ident::` prefix of a path segment.
    let mut out = String::with_capacity(t.len());
    let mut ident_start = 0usize;
    let bytes = t.as_bytes();
    let mut k = 0usize;
    while k < bytes.len() {
        if k + 1 < bytes.len() && bytes[k] == b':' && bytes[k + 1] == b':' {
            out.truncate(ident_start);
            k += 2;
            ident_start = out.len();
        } else {
            if !is_ident_byte(bytes[k]) {
                out.push(bytes[k] as char);
                ident_start = out.len();
            } else {
                if out.len() == ident_start || is_ident_byte(*out.as_bytes().last().unwrap_or(&b' ')) {
                } else {
                    ident_start = out.len();
                }
                out.push(bytes[k] as char);
            }
            k += 1;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Whether a known type ident still cannot support a mismatch verdict:
/// `Value` decodes anything, `Bytes`/`Vec<u8>` are raw payloads.
fn is_wildcard(t: &str) -> bool {
    matches!(t, "Value" | "Bytes")
}

/// The type of an argument expression at a call site, when evident.
fn type_of_expr(file: &SourceFile, start: usize, end: usize) -> Option<String> {
    let text = &file.text;
    let mut s = skip_ws(text, start);
    let mut e = end;
    while e > s && text[e - 1].is_ascii_whitespace() {
        e -= 1;
    }
    while s < e && text[s] == b'&' {
        s = skip_ws(text, s + 1);
        if word_at(text, s, "mut") {
            s = skip_ws(text, s + 3);
        }
    }
    if s >= e {
        return None;
    }
    let expr = String::from_utf8_lossy(&text[s..e]);
    // `()` — the unit argument.
    if expr.trim() == "()" {
        return Some("()".to_string());
    }
    // Inline struct literal: `Type { … }` or `path::Type { … }`.
    if let Some(brace) = expr.find('{') {
        let head = expr[..brace].trim();
        if !head.is_empty() && head.bytes().all(|b| is_ident_byte(b) || b == b':') {
            let ident = head.rsplit("::").next().unwrap_or(head);
            if ident.chars().next().map(char::is_uppercase).unwrap_or(false) {
                return normalize_type(ident);
            }
        }
        return None;
    }
    // A plain local or parameter: look up its binding.
    if expr.bytes().all(is_ident_byte) {
        return binding_type(file, s, &expr);
    }
    None
}

/// Searches the enclosing function (body before `offset`, then the
/// signature) for the type of `var`: `let var: T =`, `let var = Type {`,
/// or a `var: T` parameter.
fn binding_type(file: &SourceFile, offset: usize, var: &str) -> Option<String> {
    let text = &file.text;
    let function = file.function_at(offset)?;
    // `let [mut] var` bindings inside the body, nearest-first.
    let body = &text[function.body_start..offset.min(function.body_end)];
    let needle = var.as_bytes();
    let mut best: Option<usize> = None;
    let mut k = 0usize;
    while k + needle.len() <= body.len() {
        if &body[k..k + needle.len()] == needle
            && (k == 0 || !is_ident_byte(body[k - 1]))
            && !body.get(k + needle.len()).map(|&b| is_ident_byte(b)).unwrap_or(false)
        {
            let before = String::from_utf8_lossy(&body[k.saturating_sub(12)..k]);
            let before = before.trim_end();
            if before.ends_with("let") || before.ends_with("let mut") {
                best = Some(k);
            }
        }
        k += 1;
    }
    if let Some(k) = best {
        let after = function.body_start + k + needle.len();
        let mut j = skip_ws(text, after);
        if text.get(j) == Some(&b':') {
            // `let var: T =` — the annotation up to the `=`.
            let type_start = j + 1;
            let mut depth = 0i32;
            j = type_start;
            while j < function.body_end {
                match text[j] {
                    b'<' => depth += 1,
                    b'>' => depth -= 1,
                    b'=' if depth == 0 => break,
                    b';' => break,
                    _ => {}
                }
                j += 1;
            }
            return annotation_to_type(&String::from_utf8_lossy(&text[type_start..j]));
        }
        if text.get(j) == Some(&b'=') {
            // `let var = Type { …` — an inline struct literal RHS.
            let rhs_start = skip_ws(text, j + 1);
            let mut r = rhs_start;
            while r < function.body_end && (is_ident_byte(text[r]) || text[r] == b':') {
                r += 1;
            }
            let head_end = r;
            r = skip_ws(text, r);
            if text.get(r) == Some(&b'{') && head_end > rhs_start {
                let head = String::from_utf8_lossy(&text[rhs_start..head_end]);
                let ident = head.rsplit("::").next().unwrap_or(&head).to_string();
                if ident.chars().next().map(char::is_uppercase).unwrap_or(false) {
                    return normalize_type(&ident);
                }
            }
            return None;
        }
    }
    // Function parameters: `var: T` between the `fn` signature parens.
    let sig_start = text[..function.body_start]
        .windows(3)
        .rposition(|w| w == b"fn " || w == b"fn\t" || w == b"fn\n")
        .unwrap_or(0);
    let sig = &text[sig_start..function.body_start];
    let mut k = 0usize;
    while k + needle.len() <= sig.len() {
        if &sig[k..k + needle.len()] == needle
            && (k == 0 || !is_ident_byte(sig[k - 1]))
            && sig.get(k + needle.len()).map(|&b| !is_ident_byte(b)).unwrap_or(true)
        {
            let mut j = k + needle.len();
            while j < sig.len() && sig[j].is_ascii_whitespace() {
                j += 1;
            }
            if sig.get(j) == Some(&b':') {
                let type_start = j + 1;
                let mut depth = 0i32;
                let mut t = type_start;
                while t < sig.len() {
                    match sig[t] {
                        b'<' => depth += 1,
                        b'>' if depth > 0 => depth -= 1,
                        b'(' => depth += 1,
                        b')' if depth > 0 => depth -= 1,
                        b')' | b',' if depth == 0 => break,
                        _ => {}
                    }
                    t += 1;
                }
                return normalize_type(&String::from_utf8_lossy(&sig[type_start..t]));
            }
        }
        k += 1;
    }
    None
}

/// Reduces a `let` annotation to the reply type: `Result<T, E>` → `T`,
/// anything else as-is.
pub(crate) fn annotation_to_type(annotation: &str) -> Option<String> {
    let t = annotation.trim();
    let compact: String = t.chars().filter(|c| !c.is_whitespace()).collect();
    if let Some(inner) = compact.strip_prefix("Result<") {
        let mut depth = 0i32;
        for (i, c) in inner.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return normalize_type(&inner[..i]),
                _ => {}
            }
        }
        return None;
    }
    normalize_type(&compact)
}

/// For a call at `word` (the method-name offset), the `let x: T =`
/// annotation of its statement, if the statement has that shape.
fn let_annotation_type(text: &[u8], word: usize) -> Option<String> {
    // Walk back over the receiver chain to the statement start. Commas
    // and parens inside generic arguments (`let r: Result<A, B> = …`)
    // are not statement boundaries, so track angle depth while walking.
    let mut s = word;
    let mut angle = 0i32;
    while s > 0 {
        match text[s - 1] {
            b';' | b'{' | b'}' => break,
            b'>' => {
                angle += 1;
                s -= 1;
            }
            b'<' => {
                angle -= 1;
                s -= 1;
            }
            b'(' | b')' | b',' if angle == 0 => break,
            _ => s -= 1,
        }
    }
    let prefix = String::from_utf8_lossy(&text[s..word]);
    let prefix = prefix.trim();
    let rest = prefix.strip_prefix("let ")?;
    let eq = rest.find('=')?;
    let lhs = &rest[..eq];
    let colon = lhs.find(':')?;
    annotation_to_type(&lhs[colon + 1..])
}

/// Finds the handler closure inside a `register_typed` argument span:
/// returns (params span, body span).
fn closure_in(text: &[u8], start: usize, end: usize) -> Option<((usize, usize), (usize, usize))> {
    let mut depth = 0i32;
    let mut i = start;
    while i < end {
        match text[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'|' if depth == 0 => {
                let params_start = i + 1;
                let mut j = params_start;
                let mut angle = 0i32;
                while j < end {
                    match text[j] {
                        b'<' => angle += 1,
                        b'>' if angle > 0 => angle -= 1,
                        b'|' if angle == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= end {
                    return None;
                }
                let params = (params_start, j);
                let mut b = skip_ws(text, j + 1);
                let body = if text.get(b) == Some(&b'{') {
                    let close = matching_brace(text, b).min(end);
                    (b + 1, close.saturating_sub(1))
                } else {
                    // Expression-bodied closure: to the end of the span.
                    if b > end {
                        b = end;
                    }
                    (b, end)
                };
                return Some((params, body));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Type annotation of the closure's first parameter (`|args: T, ctx|`).
fn closure_first_param_type(text: &[u8], (start, end): (usize, usize)) -> Option<String> {
    let mut i = start;
    // Skip the pattern up to `:`.
    while i < end && text[i] != b':' && text[i] != b',' {
        i += 1;
    }
    if text.get(i) != Some(&b':') {
        return None;
    }
    let type_start = i + 1;
    let mut depth = 0i32;
    let mut j = type_start;
    while j < end {
        match text[j] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' if depth > 0 => depth -= 1,
            b',' if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    normalize_type(&String::from_utf8_lossy(&text[type_start..j]))
}

/// Reply type from the closure body: the unique `Ok(Type { …` (or
/// `Ok(true|false)`) construction, when there is exactly one candidate
/// and no opaque `Ok(expr)` that could be a different type.
fn closure_ok_type(text: &[u8], (start, end): (usize, usize)) -> Option<String> {
    let mut candidates: BTreeSet<String> = BTreeSet::new();
    let mut opaque = false;
    let mut i = start;
    while i + 3 < end {
        if word_at(text, i, "Ok") {
            let mut j = skip_ws(text, i + 2);
            if text.get(j) == Some(&b'(') {
                j = skip_ws(text, j + 1);
                if word_at(text, j, "true") || word_at(text, j, "false") {
                    candidates.insert("bool".to_string());
                } else {
                    let head_start = j;
                    while j < end && (is_ident_byte(text[j]) || text[j] == b':') {
                        j += 1;
                    }
                    let head = String::from_utf8_lossy(&text[head_start..j]);
                    let ident = head.rsplit("::").next().unwrap_or(&head);
                    let next = skip_ws(text, j);
                    if !ident.is_empty()
                        && ident.chars().next().map(char::is_uppercase).unwrap_or(false)
                        && text.get(next) == Some(&b'{')
                    {
                        candidates.insert(ident.to_string());
                    } else {
                        opaque = true;
                    }
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    if opaque || candidates.len() != 1 {
        return None;
    }
    candidates.into_iter().next()
}

// ----------------------------------------------------------------------
// Cross-workspace check
// ----------------------------------------------------------------------

/// Checks the merged contract table for the three mismatch classes.
pub fn check(sites: &[RpcSite]) -> Vec<ContractIssue> {
    let mut registrations: BTreeMap<&str, Vec<&RpcSite>> = BTreeMap::new();
    let mut calls: BTreeMap<&str, Vec<&RpcSite>> = BTreeMap::new();
    for site in sites {
        if let Some(name) = site.name.as_deref() {
            match site.role {
                Role::Register => registrations.entry(name).or_default().push(site),
                Role::Call => calls.entry(name).or_default().push(site),
            }
        }
    }

    let mut issues = Vec::new();

    // (a) Calls naming an RPC no provider registers.
    for (name, call_sites) in &calls {
        if registrations.contains_key(name) {
            continue;
        }
        for call in call_sites {
            issues.push(ContractIssue {
                file: call.file.clone(),
                function: call.function.clone(),
                kind: format!("unregistered:{name}"),
                rpc: name.to_string(),
                line: call.line,
                column: call.column,
                detail: format!(
                    "`{}` forwards RPC \"{name}\" but no provider registers it",
                    call.via
                ),
            });
        }
    }

    // (b) Registered RPCs no client ever calls (dead surface).
    for (name, reg_sites) in &registrations {
        if calls.contains_key(name) {
            continue;
        }
        let reg = reg_sites[0];
        issues.push(ContractIssue {
            file: reg.file.clone(),
            function: reg.function.clone(),
            kind: format!("dead:{name}"),
            rpc: name.to_string(),
            line: reg.line,
            column: reg.column,
            detail: format!("RPC \"{name}\" is registered but never called from any client"),
        });
    }

    // (c) Argument / reply type disagreements.
    for (name, call_sites) in &calls {
        let Some(reg_sites) = registrations.get(name) else { continue };
        let reg_args: BTreeSet<&str> = reg_sites
            .iter()
            .filter_map(|r| r.arg_type.as_deref())
            .collect();
        let reg_replies: BTreeSet<&str> = reg_sites
            .iter()
            .filter_map(|r| r.reply_type.as_deref())
            .collect();
        let args_checkable = !reg_args.is_empty() && !reg_args.iter().any(|t| is_wildcard(t));
        let replies_checkable =
            !reg_replies.is_empty() && !reg_replies.iter().any(|t| is_wildcard(t));
        for call in call_sites {
            if args_checkable {
                if let Some(arg) = call.arg_type.as_deref() {
                    if !is_wildcard(arg) && !reg_args.contains(arg) {
                        issues.push(ContractIssue {
                            file: call.file.clone(),
                            function: call.function.clone(),
                            kind: format!("arg-mismatch:{name}"),
                            rpc: name.to_string(),
                            line: call.line,
                            column: call.column,
                            detail: format!(
                                "RPC \"{name}\" is called with argument type `{arg}` but registered with `{}`",
                                reg_args.iter().copied().collect::<Vec<_>>().join("` / `")
                            ),
                        });
                    }
                }
            }
            if replies_checkable {
                if let Some(reply) = call.reply_type.as_deref() {
                    if !is_wildcard(reply) && !reg_replies.contains(reply) {
                        issues.push(ContractIssue {
                            file: call.file.clone(),
                            function: call.function.clone(),
                            kind: format!("reply-mismatch:{name}"),
                            rpc: name.to_string(),
                            line: call.line,
                            column: call.column,
                            detail: format!(
                                "RPC \"{name}\" reply is decoded as `{reply}` but the handler replies `{}`",
                                reg_replies.iter().copied().collect::<Vec<_>>().join("` / `")
                            ),
                        });
                    }
                }
            }
        }
    }

    issues.sort();
    issues
}

// ----------------------------------------------------------------------
// Small shared helpers
// ----------------------------------------------------------------------

pub(crate) fn skip_ws(text: &[u8], mut i: usize) -> usize {
    while i < text.len() && text[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// True when the identifier starting at `i` is a function *definition*
/// (`fn name(` — possibly with whitespace between `fn` and the name).
pub(crate) fn preceded_by_fn_keyword(text: &[u8], i: usize) -> bool {
    let mut p = i;
    while p > 0 && text[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    p >= 2 && &text[p - 2..p] == b"fn" && (p == 2 || !is_ident_byte(text[p - 3]))
}

pub(crate) fn word_at(text: &[u8], i: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if i + w.len() > text.len() || &text[i..i + w.len()] != w {
        return false;
    }
    let before_ok = i == 0 || !is_ident_byte(text[i - 1]);
    let after_ok = i + w.len() >= text.len() || !is_ident_byte(text[i + w.len()]);
    before_ok && after_ok
}

/// `::<A, B>` immediately after a method name; advances `j` past it and
/// returns the top-level generic arguments.
pub(crate) fn parse_turbofish(text: &[u8], j: &mut usize) -> Vec<String> {
    let mut k = skip_ws(text, *j);
    if !(text.get(k) == Some(&b':') && text.get(k + 1) == Some(&b':') && text.get(k + 2) == Some(&b'<'))
    {
        return Vec::new();
    }
    k += 3;
    let start = k;
    let mut depth = 1i32;
    let mut parts = Vec::new();
    let mut part_start = start;
    while k < text.len() {
        match text[k] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    parts.push(String::from_utf8_lossy(&text[part_start..k]).trim().to_string());
                    *j = k + 1;
                    return parts;
                }
            }
            b',' if depth == 1 => {
                parts.push(String::from_utf8_lossy(&text[part_start..k]).trim().to_string());
                part_start = k + 1;
            }
            b'(' | b';' => return Vec::new(), // not a turbofish after all
            _ => {}
        }
        k += 1;
    }
    Vec::new()
}

pub(crate) fn matching_paren(text: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < text.len() {
        match text[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    text.len()
}

/// Splits an argument span at depth-0 commas (parens, brackets, braces).
pub(crate) fn split_args(text: &[u8], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut arg_start = start;
    let mut i = start;
    while i < end {
        match text[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                args.push((arg_start, i));
                arg_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if arg_start < end || !args.is_empty() {
        args.push((arg_start, end));
    }
    // An empty single span (`()`) is zero arguments.
    if args.len() == 1 {
        let (s, e) = args[0];
        if text[s..e].iter().all(u8::is_ascii_whitespace) {
            return Vec::new();
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn workspace(files: &[(&str, &str)]) -> (Vec<SourceFile>, ConstTable) {
        let parsed: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let consts = ConstTable::build(&parsed);
        (parsed, consts)
    }

    fn all_sites(files: &[(&str, &str)]) -> Vec<RpcSite> {
        let (parsed, consts) = workspace(files);
        parsed.iter().flat_map(|f| sites(f, &consts)).collect()
    }

    const PROVIDER: &str = r#"
pub mod rpc { pub const PUT: &str = "demo_put"; pub const GET: &str = "demo_get"; }
fn register(margo: &M) {
    margo.register_typed(rpc::PUT, 1, None, move |args: PutArgs, _| Ok(PutReply { n: 0 }));
    margo.register_typed(rpc::GET, 1, None, move |args: GetArgs, _| Ok(true));
}
"#;

    #[test]
    fn const_table_resolves_same_crate_first() {
        let (_, consts) = workspace(&[
            ("crates/a/src/lib.rs", "pub const X: &str = \"a_x\";"),
            ("crates/b/src/lib.rs", "pub const X: &str = \"b_x\";"),
        ]);
        assert_eq!(consts.resolve("a", "X"), Some("a_x"));
        assert_eq!(consts.resolve("b", "X"), Some("b_x"));
        // Ambiguous from a third crate: two values, no same-crate def.
        assert_eq!(consts.resolve("c", "X"), None);
    }

    #[test]
    fn register_and_forward_sites_extracted_with_types() {
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "use crate::provider::rpc;\nfn put(&self) { let r: Result<PutReply, E> = self.margo.forward_timeout(&self.addr, rpc::PUT, 1, &PutArgs { n: 1 }, t); }\nfn get(&self) { let _: bool = self.margo.forward(&self.addr, rpc::GET, 1, &GetArgs { n: 1 })?; }",
            ),
        ]);
        let reg_put = found
            .iter()
            .find(|s| s.role == Role::Register && s.name.as_deref() == Some("demo_put"))
            .expect("put registration");
        assert_eq!(reg_put.arg_type.as_deref(), Some("PutArgs"));
        assert_eq!(reg_put.reply_type.as_deref(), Some("PutReply"));
        let call_put = found
            .iter()
            .find(|s| s.role == Role::Call && s.name.as_deref() == Some("demo_put"))
            .expect("put call");
        assert_eq!(call_put.arg_type.as_deref(), Some("PutArgs"));
        assert_eq!(call_put.reply_type.as_deref(), Some("PutReply"));
        let issues = check(&found);
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn unregistered_call_detected() {
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "fn f(&self) { let _: bool = self.margo.forward(&a, \"demo_missing\", 1, &())?; let _: bool = self.margo.forward(&a, \"demo_put\", 1, &())?; let _: bool = self.margo.forward(&a, \"demo_get\", 1, &())?; }",
            ),
        ]);
        let issues = check(&found);
        assert!(
            issues.iter().any(|i| i.kind == "unregistered:demo_missing"),
            "{issues:?}"
        );
    }

    #[test]
    fn dead_surface_detected() {
        let found = all_sites(&[("crates/demo/src/provider.rs", PROVIDER)]);
        let issues = check(&found);
        assert!(issues.iter().any(|i| i.kind == "dead:demo_put"), "{issues:?}");
        assert!(issues.iter().any(|i| i.kind == "dead:demo_get"), "{issues:?}");
    }

    #[test]
    fn arg_type_mismatch_detected() {
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "use crate::provider::rpc;\nfn f(&self) { let _: PutReply = self.margo.forward(&a, rpc::PUT, 1, &GetArgs { n: 1 })?; let _: bool = self.margo.forward(&a, rpc::GET, 1, &GetArgs { n: 1 })?; }",
            ),
        ]);
        let issues = check(&found);
        assert!(issues.iter().any(|i| i.kind == "arg-mismatch:demo_put"), "{issues:?}");
        assert!(!issues.iter().any(|i| i.kind.starts_with("arg-mismatch:demo_get")));
    }

    #[test]
    fn reply_type_mismatch_detected() {
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "use crate::provider::rpc;\nfn f(&self) { let _: WrongReply = self.margo.forward(&a, rpc::PUT, 1, &PutArgs { n: 1 })?; }",
            ),
        ]);
        let issues = check(&found);
        assert!(issues.iter().any(|i| i.kind == "reply-mismatch:demo_put"), "{issues:?}");
    }

    #[test]
    fn handler_macro_and_call_wrapper_match() {
        let found = all_sites(&[
            (
                "crates/bed/src/server.rs",
                "pub mod proto { pub const GET: &str = \"bed_get\"; }\nfn register_rpcs(&self) { handler!(proto::GET, proto::GetArgs, |server, a| { Ok(json!(true)) }); }",
            ),
            (
                "crates/bed/src/client.rs",
                "fn get(&self) { self.call::<_, Value>(proto::GET, &proto::GetArgs { n: 1 }).map(|_| ()) }",
            ),
        ]);
        let reg = found.iter().find(|s| s.role == Role::Register).expect("handler! site");
        assert_eq!(reg.name.as_deref(), Some("bed_get"));
        assert_eq!(reg.arg_type.as_deref(), Some("GetArgs"));
        let call = found.iter().find(|s| s.role == Role::Call).expect("call site");
        assert_eq!(call.name.as_deref(), Some("bed_get"));
        assert_eq!(call.arg_type.as_deref(), Some("GetArgs"));
        assert!(check(&found).is_empty());
    }

    #[test]
    fn call_raw_wrapper_counts_as_client_use() {
        // The pre-encoded chokepoint (`call_raw` in the yokan/warabi
        // clients) carries no typed input, but it must still keep the
        // RPC's surface alive and resolve the name through the consts.
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "use crate::provider::rpc;\nfn put(&self) { let frame = self.call_raw(rpc::PUT, payload)?; }\nfn get(&self) { let _: bool = self.call(rpc::GET, &GetArgs { n: 1 })?; }",
            ),
        ]);
        let raw = found
            .iter()
            .find(|s| s.role == Role::Call && s.name.as_deref() == Some("demo_put"))
            .expect("call_raw site");
        assert!(raw.arg_type.is_none());
        let issues = check(&found);
        assert!(!issues.iter().any(|i| i.kind.starts_with("dead:")), "{issues:?}");
    }

    #[test]
    fn fabric_register_and_constructors_do_not_match() {
        let found = all_sites(&[(
            "crates/mercury/src/fabric.rs",
            "fn f(&self) { fabric.register(addr); let p = RemiProvider::register(&margo, 1, &dir, None); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unresolved_plumbing_sites_recorded_without_findings() {
        let found = all_sites(&[(
            "crates/margo/src/runtime.rs",
            "impl R { pub fn forward_timeout<I, O>(&self, dest: &Address, rpc_name: &str, pid: u16, input: &I, t: Duration) -> Result<O, E> { self.forward_full(dest, rpc_name, pid, input, CallContext::TOP_LEVEL, t) } }",
        )]);
        assert_eq!(found.len(), 1);
        assert!(found[0].name.is_none());
        assert_eq!(found[0].name_expr, "rpc_name");
        assert!(check(&found).is_empty());
    }

    #[test]
    fn rpc_id_for_name_counts_as_client_use() {
        let found = all_sites(&[
            ("crates/demo/src/provider.rs", PROVIDER),
            (
                "crates/demo/src/client.rs",
                "use crate::provider::rpc;\nfn ids(&self) { let put = self.margo.rpc_id_for_name(rpc::PUT); let get = self.margo.rpc_id_for_name(rpc::GET); }",
            ),
        ]);
        let issues = check(&found);
        assert!(!issues.iter().any(|i| i.kind.starts_with("dead:")), "{issues:?}");
    }

    #[test]
    fn normalizes_types() {
        assert_eq!(normalize_type("&proto::QueryArgs").as_deref(), Some("QueryArgs"));
        assert_eq!(normalize_type("serde_json::Value").as_deref(), Some("Value"));
        assert_eq!(normalize_type("Vec<u8>").as_deref(), Some("Vec<u8>"));
        assert_eq!(normalize_type("Vec<proto::Item>").as_deref(), Some("Vec<Item>"));
        assert_eq!(normalize_type("&'static str").as_deref(), Some("str"));
        assert_eq!(normalize_type("_"), None);
        assert_eq!(normalize_type("()").as_deref(), Some("()"));
    }
}
