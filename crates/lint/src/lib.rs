//! `mochi-lint`: workspace-specific static analysis for the mochi-rs
//! stack.
//!
//! Three lints, all tuned to the failure modes that matter for dynamic
//! HPC data services (a panicking or deadlocked provider is a dead node,
//! which defeats the resilience layer):
//!
//! 1. **Lock-order analysis** ([`locks`]): extracts nested
//!    `.lock()`/`.read()`/`.write()` spans per function, merges them into
//!    a workspace lock-order graph, and reports cycles (potential
//!    deadlocks) and identical-receiver re-locks (immediate deadlocks
//!    with `parking_lot`).
//! 2. **Panic-path lint** ([`panics`]): `unwrap()`/`expect()`/`panic!`
//!    inside provider and RPC-handler crates. Existing debt is frozen in
//!    `lint-allow.json`; new sites fail.
//! 3. **Blocking-call-in-ULT lint** ([`blocking`]): sleeps and channel
//!    waits inside closures that run as ULTs on the fixed xstream threads.
//! 4. **Data-plane JSON lint** ([`jsonuse`]): `serde_json::` in the RPC
//!    hot path (codec/frame and the yokan/warabi/remi client/provider
//!    modules), which must use the mochi-wire binary codec. Monitoring,
//!    Bedrock config, and Jx9 surfaces stay JSON and are not scanned.
//!
//! Run as `cargo run -p mochi-lint -- --root .`, or through the umbrella
//! crate's `lint_gate` test, which makes it part of the tier-1 gate.

pub mod allowlist;
pub mod blocking;
pub mod jsonuse;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

use allowlist::Allowlist;
use blocking::BlockingSite;
use jsonuse::JsonSite;
use locks::{LockCycle, LockEdge, RecursiveLock};
use panics::PanicSite;
use source::SourceFile;

/// Everything one run of the analysis produced.
pub struct LintReport {
    /// Files analyzed.
    pub files: usize,
    /// All lock-order edges observed (the workspace lock-order graph).
    pub lock_edges: Vec<LockEdge>,
    /// Lock-order cycles — always fatal, never allowlisted.
    pub lock_cycles: Vec<LockCycle>,
    /// Identical-receiver re-locks — always fatal.
    pub recursive_locks: Vec<RecursiveLock>,
    /// Panic-path findings beyond the allowlist.
    pub panic_violations: Vec<PanicSite>,
    /// Panic-path findings covered by the allowlist (frozen debt).
    pub panic_allowed: usize,
    /// Blocking-call findings beyond the allowlist.
    pub blocking_violations: Vec<BlockingSite>,
    /// Blocking-call findings covered by the allowlist.
    pub blocking_allowed: usize,
    /// Data-plane JSON findings beyond the allowlist.
    pub json_violations: Vec<JsonSite>,
    /// Data-plane JSON findings covered by the allowlist.
    pub json_allowed: usize,
    /// Raw (pre-allowlist) finding counts, for `--write-allowlist`.
    pub panic_counts: BTreeMap<allowlist::Key, usize>,
    pub blocking_counts: BTreeMap<allowlist::Key, usize>,
    pub json_counts: BTreeMap<allowlist::Key, usize>,
}

impl LintReport {
    /// True when nothing fails the gate.
    pub fn is_clean(&self) -> bool {
        self.lock_cycles.is_empty()
            && self.recursive_locks.is_empty()
            && self.panic_violations.is_empty()
            && self.blocking_violations.is_empty()
            && self.json_violations.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mochi-lint: {} files, {} lock-order edges, {} frozen panic sites, {} frozen blocking sites, {} frozen JSON sites",
            self.files,
            self.lock_edges.len(),
            self.panic_allowed,
            self.blocking_allowed,
            self.json_allowed
        );
        for cycle in &self.lock_cycles {
            let _ = writeln!(out, "LOCK-ORDER CYCLE between {}:", cycle.locks.join(" <-> "));
            for edge in &cycle.edges {
                let _ = writeln!(
                    out,
                    "  {} -> {}  at {}:{} (fn {})",
                    edge.from, edge.to, edge.file, edge.line, edge.function
                );
            }
        }
        for r in &self.recursive_locks {
            let _ = writeln!(
                out,
                "RECURSIVE LOCK {} re-acquired at {}:{} (fn {}) — immediate deadlock",
                r.lock, r.file, r.line, r.function
            );
        }
        for p in &self.panic_violations {
            let _ = writeln!(
                out,
                "PANIC PATH {}:{} (fn {}): {} in an RPC/provider path — propagate an error instead, or freeze it in lint-allow.json",
                p.file, p.line, p.function, p.kind
            );
        }
        for b in &self.blocking_violations {
            let _ = writeln!(
                out,
                "BLOCKING IN ULT {}:{} (fn {}): {} would stall an xstream — use a dedicated pool and freeze it, or restructure",
                b.file, b.line, b.function, b.kind
            );
        }
        for j in &self.json_violations {
            let _ = writeln!(
                out,
                "JSON IN DATA PLANE {}:{} (fn {}): serde_json on the RPC hot path — use the mochi-wire codec, or freeze it in lint-allow.json",
                j.file, j.line, j.function
            );
        }
        if self.is_clean() {
            let _ = writeln!(out, "OK: no lock-order cycles, no new panic paths, no new blocking calls, no data-plane JSON");
        }
        out
    }
}

/// Analyzes already-parsed sources against an allowlist. The unit tests
/// and the fixture tests drive this directly with in-memory snippets.
pub fn analyze(files: &[SourceFile], allowlist: &Allowlist) -> LintReport {
    let ignored: BTreeSet<String> = allowlist.ignored_locks.iter().cloned().collect();

    let mut lock_edges = Vec::new();
    let mut recursive_locks = Vec::new();
    let mut panic_sites: Vec<PanicSite> = Vec::new();
    let mut blocking_sites: Vec<BlockingSite> = Vec::new();
    let mut json_sites: Vec<JsonSite> = Vec::new();

    for file in files {
        let (edges, recursive) = locks::extract(file, &ignored);
        lock_edges.extend(edges);
        recursive_locks.extend(recursive);
        if panics::in_provider_path(&file.rel_path) {
            panic_sites.extend(panics::scan(file));
        }
        if jsonuse::in_data_plane(&file.rel_path) {
            json_sites.extend(jsonuse::scan(file));
        }
        blocking_sites.extend(blocking::scan(file));
    }
    lock_edges.sort();
    recursive_locks.sort();
    panic_sites.sort();
    blocking_sites.sort();
    json_sites.sort();

    let lock_cycles = locks::find_cycles(&lock_edges);

    let (panic_violations, panic_allowed, panic_counts) =
        apply_allowances(&panic_sites, &allowlist.panic_paths, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (blocking_violations, blocking_allowed, blocking_counts) =
        apply_allowances(&blocking_sites, &allowlist.blocking, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (json_violations, json_allowed, json_counts) =
        apply_allowances(&json_sites, &allowlist.serde_json, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });

    LintReport {
        files: files.len(),
        lock_edges,
        lock_cycles,
        recursive_locks,
        panic_violations,
        panic_allowed,
        blocking_violations,
        blocking_allowed,
        json_violations,
        json_allowed,
        panic_counts,
        blocking_counts,
        json_counts,
    }
}

/// Splits findings into allowed (within frozen counts) and violations.
fn apply_allowances<T: Clone>(
    sites: &[T],
    allowances: &BTreeMap<allowlist::Key, usize>,
    key_of: impl Fn(&T) -> allowlist::Key,
) -> (Vec<T>, usize, BTreeMap<allowlist::Key, usize>) {
    let mut counts: BTreeMap<allowlist::Key, usize> = BTreeMap::new();
    for site in sites {
        *counts.entry(key_of(site)).or_insert(0) += 1;
    }
    let mut seen: BTreeMap<allowlist::Key, usize> = BTreeMap::new();
    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for site in sites {
        let key = key_of(site);
        let used = seen.entry(key.clone()).or_insert(0);
        *used += 1;
        if *used <= allowances.get(&key).copied().unwrap_or(0) {
            allowed += 1;
        } else {
            violations.push(site.clone());
        }
    }
    (violations, allowed, counts)
}

/// Loads and analyzes every production `.rs` file under `root`.
pub fn run(root: &Path, allowlist: &Allowlist) -> Result<LintReport, String> {
    let mut files = Vec::new();
    for (rel, path) in source::collect_rs_files(root).map_err(|e| format!("walking {root:?}: {e}"))? {
        let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
        files.push(SourceFile::parse(&rel, &raw));
    }
    Ok(analyze(&files, allowlist))
}

/// Loads the allowlist at `path`; a missing file is an empty allowlist.
pub fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::from_json(&text).map_err(|e| format!("{path:?}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("reading {path:?}: {e}")),
    }
}
