//! `mochi-lint`: workspace-specific static analysis for the mochi-rs
//! stack.
//!
//! Thirteen analyses, all tuned to the failure modes that matter for dynamic
//! HPC data services (a panicking or deadlocked provider is a dead node,
//! which defeats the resilience layer; a mistyped RPC name only fails on
//! a live, reconfigured cluster):
//!
//! 1. **Lock-order analysis** ([`locks`], MOCHI001/002): extracts nested
//!    `.lock()`/`.read()`/`.write()` spans per function, merges them into
//!    a workspace lock-order graph, and reports cycles (potential
//!    deadlocks) and identical-receiver re-locks (immediate deadlocks
//!    with `parking_lot`).
//! 2. **Panic-path lint** ([`panics`], MOCHI003): `unwrap()`/`expect()`/
//!    `panic!` inside provider and RPC-handler crates. Existing debt is
//!    frozen in `lint-allow.json`; new sites fail.
//! 3. **Blocking-call-in-ULT lint** ([`blocking`], MOCHI004): sleeps and
//!    channel waits inside closures that run as ULTs on the fixed
//!    xstream threads.
//! 4. **Data-plane JSON lint** ([`jsonuse`], MOCHI005): `serde_json::`
//!    in the RPC hot path (codec/frame and the yokan/warabi/remi
//!    client/provider modules), which must use the mochi-wire binary
//!    codec. Monitoring, Bedrock config, and Jx9 surfaces stay JSON and
//!    are not scanned.
//! 5. **RPC contract checker** ([`contracts`], MOCHI006/007/008): builds
//!    a workspace table of every `register`/`register_typed`/`handler!`
//!    site and every `forward`-family/`call` site, resolves RPC-name
//!    constants through the per-crate `rpc_names` modules, and reports
//!    unregistered calls, dead surface, and argument/reply type
//!    disagreements.
//! 6. **Lock-held-across-yield analysis** ([`yields`], MOCHI009): a lock
//!    guard whose span encloses a `forward`, bulk transfer, channel
//!    receive, or `yield_now` in ULT/handler code.
//! 7. **Raw-forward-in-client lint** ([`rawforward`], MOCHI011):
//!    `forward`-family calls in the yokan/warabi/remi client modules
//!    outside the `call`/`call_raw` chokepoints, which would bypass the
//!    retry/breaker/deadline plane.
//!
//! Three interprocedural analyses run on a workspace-wide call graph
//! ([`callgraph`] — method/trait/free-call edges with receiver-type
//! inference, plus handler-registration entry points from the contract
//! table):
//!
//! 8. **Deadline-loss analysis** ([`deadline`], MOCHI012): a
//!    `forward`-family call reachable from a registered RPC handler that
//!    builds its context from `CallContext::TOP_LEVEL` instead of
//!    threading `nested_context`, silently restarting the caller's
//!    deadline budget mid-fan-out.
//! 9. **Retry-soundness analysis** ([`retry`], MOCHI013): a
//!    non-idempotent effect (unkeyed collection mutation, counter bump,
//!    REMI file append) reachable from the server-side handler of an RPC
//!    in a `declare_idempotent` set — the retry plane would duplicate it.
//! 10. **Relaxed-atomic analysis** ([`atomics`], MOCHI014):
//!    `Ordering::Relaxed` on cross-function decision flags (shutdown /
//!    closed state read in `if`/`while` conditions) where publish and
//!    decision happen in different functions; stats counters pass by
//!    construction.
//! 11. **RPC-under-lock analysis** ([`rpclock`], MOCHI015): an
//!    `OrderedMutex`/`OrderedRwLock` guard (tracked by the [`dataflow`]
//!    engine) live across a call whose callee transitively reaches a
//!    `forward`-family RPC — the interprocedural form of MOCHI009.
//! 12. **Swallowed-background-error analysis** ([`bgerrors`], MOCHI016):
//!    fallible calls inside `spawn` bodies whose `Result` is discarded
//!    via `let _ =`, a statement-terminated `.ok()`, or an unused bare
//!    return; `BackgroundExecutor` error parking is the blessed pattern.
//! 13. **Unbounded-queue-growth analysis** ([`queues`], MOCHI017):
//!    push/send/extend into shared state inside a handler-reachable loop
//!    with no bound check, capacity, or drain evidence.
//!
//! Stale `lint-allow.json` entries (MOCHI010) are reported so frozen
//! debt burns down instead of rotting. Output formats: `text` (default),
//! `json`, and `sarif` — see [`report`]; `--baseline` diffs findings
//! against a committed SARIF baseline by stable fingerprint.
//!
//! Run as `cargo run -p mochi-lint -- --root . [--format json]`, or
//! through the umbrella crate's `lint_gate` test, which makes it part of
//! the tier-1 gate.

pub mod allowlist;
pub mod atomics;
pub mod bgerrors;
pub mod blocking;
pub mod callgraph;
pub mod contracts;
pub mod dataflow;
pub mod deadline;
pub mod jsonuse;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod queues;
pub mod rawforward;
pub mod report;
pub mod retry;
pub mod rpclock;
pub mod source;
pub mod yields;

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use allowlist::{Allowlist, StaleEntry};
use atomics::AtomicSite;
use bgerrors::BgErrorSite;
use blocking::BlockingSite;
use callgraph::{CallGraph, GraphStats};
use contracts::{ContractIssue, RpcSite};
use deadline::DeadlineSite;
use jsonuse::JsonSite;
use locks::{LockCycle, LockEdge, RecursiveLock};
use panics::PanicSite;
use queues::QueueSite;
use rawforward::RawForwardSite;
use retry::RetrySite;
use rpclock::RpcLockSite;
use source::SourceFile;
use yields::YieldSite;

/// Everything one run of the analysis produced.
pub struct LintReport {
    /// Files analyzed.
    pub files: usize,
    /// All lock-order edges observed (the workspace lock-order graph).
    pub lock_edges: Vec<LockEdge>,
    /// Lock-order cycles — always fatal, never allowlisted.
    pub lock_cycles: Vec<LockCycle>,
    /// Identical-receiver re-locks — always fatal.
    pub recursive_locks: Vec<RecursiveLock>,
    /// Panic-path findings beyond the allowlist.
    pub panic_violations: Vec<PanicSite>,
    /// Panic-path findings covered by the allowlist (frozen debt).
    pub panic_allowed: usize,
    /// Blocking-call findings beyond the allowlist.
    pub blocking_violations: Vec<BlockingSite>,
    /// Blocking-call findings covered by the allowlist.
    pub blocking_allowed: usize,
    /// Data-plane JSON findings beyond the allowlist.
    pub json_violations: Vec<JsonSite>,
    /// Data-plane JSON findings covered by the allowlist.
    pub json_allowed: usize,
    /// The full workspace RPC contract table (every register/forward
    /// site, resolved or not).
    pub contract_sites: Vec<RpcSite>,
    /// Contract issues beyond the allowlist.
    pub contract_violations: Vec<ContractIssue>,
    /// Contract issues covered by the allowlist.
    pub contract_allowed: usize,
    /// Lock-held-across-yield findings beyond the allowlist.
    pub yield_violations: Vec<YieldSite>,
    /// Lock-held-across-yield findings covered by the allowlist.
    pub yield_allowed: usize,
    /// Raw-forward-in-client findings beyond the allowlist.
    pub raw_forward_violations: Vec<RawForwardSite>,
    /// Raw-forward-in-client findings covered by the allowlist.
    pub raw_forward_allowed: usize,
    /// Deadline-loss findings beyond the allowlist.
    pub deadline_violations: Vec<DeadlineSite>,
    /// Deadline-loss findings covered by the allowlist.
    pub deadline_allowed: usize,
    /// Retry-soundness findings beyond the allowlist.
    pub retry_violations: Vec<RetrySite>,
    /// Retry-soundness findings covered by the allowlist.
    pub retry_allowed: usize,
    /// Relaxed-atomic findings beyond the allowlist.
    pub atomics_violations: Vec<AtomicSite>,
    /// Relaxed-atomic findings covered by the allowlist.
    pub atomics_allowed: usize,
    /// RPC-under-lock findings beyond the allowlist.
    pub rpc_lock_violations: Vec<RpcLockSite>,
    /// RPC-under-lock findings covered by the allowlist.
    pub rpc_lock_allowed: usize,
    /// Swallowed-background-error findings beyond the allowlist.
    pub bg_error_violations: Vec<BgErrorSite>,
    /// Swallowed-background-error findings covered by the allowlist.
    pub bg_error_allowed: usize,
    /// Unbounded-queue-growth findings beyond the allowlist.
    pub queue_violations: Vec<QueueSite>,
    /// Unbounded-queue-growth findings covered by the allowlist.
    pub queue_allowed: usize,
    /// Call-graph construction counters (nodes, edges, resolution).
    pub graph_stats: GraphStats,
    /// Allowlist entries matching no current finding.
    pub stale_entries: Vec<StaleEntry>,
    /// Raw (pre-allowlist) finding counts, for `--write-allowlist` and
    /// stale detection.
    pub panic_counts: BTreeMap<allowlist::Key, usize>,
    pub blocking_counts: BTreeMap<allowlist::Key, usize>,
    pub json_counts: BTreeMap<allowlist::Key, usize>,
    pub contract_counts: BTreeMap<allowlist::Key, usize>,
    pub yield_counts: BTreeMap<allowlist::Key, usize>,
    pub raw_forward_counts: BTreeMap<allowlist::Key, usize>,
    pub deadline_counts: BTreeMap<allowlist::Key, usize>,
    pub retry_counts: BTreeMap<allowlist::Key, usize>,
    pub atomics_counts: BTreeMap<allowlist::Key, usize>,
    pub rpc_lock_counts: BTreeMap<allowlist::Key, usize>,
    pub bg_error_counts: BTreeMap<allowlist::Key, usize>,
    pub queue_counts: BTreeMap<allowlist::Key, usize>,
}

impl LintReport {
    /// True when nothing fails the gate (stale allowlist entries are a
    /// separate, warning-level condition — see [`LintReport::stale_entries`]).
    pub fn is_clean(&self) -> bool {
        self.lock_cycles.is_empty()
            && self.recursive_locks.is_empty()
            && self.panic_violations.is_empty()
            && self.blocking_violations.is_empty()
            && self.json_violations.is_empty()
            && self.contract_violations.is_empty()
            && self.yield_violations.is_empty()
            && self.raw_forward_violations.is_empty()
            && self.deadline_violations.is_empty()
            && self.retry_violations.is_empty()
            && self.atomics_violations.is_empty()
            && self.rpc_lock_violations.is_empty()
            && self.bg_error_violations.is_empty()
            && self.queue_violations.is_empty()
    }

    /// The resolved RPC names in the contract table with their
    /// registration and call counts, sorted by name.
    pub fn rpc_names(&self) -> Vec<(String, usize, usize)> {
        let mut table: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for site in &self.contract_sites {
            if let Some(name) = site.name.as_deref() {
                let entry = table.entry(name).or_insert((0, 0));
                match site.role {
                    contracts::Role::Register => entry.0 += 1,
                    contracts::Role::Call => entry.1 += 1,
                }
            }
        }
        table.into_iter().map(|(n, (r, c))| (n.to_string(), r, c)).collect()
    }

    /// Human-readable report (the default `--format text`).
    pub fn render(&self) -> String {
        report::render_text(self)
    }
}

/// Analyzes already-parsed sources against an allowlist. The unit tests
/// and the fixture tests drive this directly with in-memory snippets.
pub fn analyze(files: &[SourceFile], allowlist: &Allowlist) -> LintReport {
    let ignored: BTreeSet<String> = allowlist.ignored_locks.iter().cloned().collect();

    let mut lock_edges = Vec::new();
    let mut recursive_locks = Vec::new();
    let mut yield_sites: Vec<YieldSite> = Vec::new();
    let mut panic_sites: Vec<PanicSite> = Vec::new();
    let mut blocking_sites: Vec<BlockingSite> = Vec::new();
    let mut json_sites: Vec<JsonSite> = Vec::new();
    let mut raw_forward_sites: Vec<RawForwardSite> = Vec::new();

    let consts = contracts::ConstTable::build(files);
    let mut contract_sites: Vec<RpcSite> = Vec::new();

    for file in files {
        let (edges, recursive, yields_found) = locks::extract(file, &ignored);
        lock_edges.extend(edges);
        recursive_locks.extend(recursive);
        if yields::in_scope(&file.rel_path) {
            yield_sites.extend(yields_found);
        }
        if panics::in_provider_path(&file.rel_path) {
            panic_sites.extend(panics::scan(file));
        }
        if jsonuse::in_data_plane(&file.rel_path) {
            json_sites.extend(jsonuse::scan(file));
        }
        if rawforward::in_client(&file.rel_path) {
            raw_forward_sites.extend(rawforward::scan(file));
        }
        blocking_sites.extend(blocking::scan(file));
        contract_sites.extend(contracts::sites(file, &consts));
    }
    lock_edges.sort();
    recursive_locks.sort();
    yield_sites.sort();
    panic_sites.sort();
    blocking_sites.sort();
    json_sites.sort();
    raw_forward_sites.sort();
    contract_sites.sort();

    let lock_cycles = locks::find_cycles(&lock_edges);
    let contract_issues = contracts::check(&contract_sites);

    // The interprocedural layer: one call graph, three analyses.
    let graph = CallGraph::build(files);
    let graph_stats = graph.stats();
    let deadline_sites = deadline::check(files, &graph, &contract_sites);
    let retry_sites = retry::check(files, &graph, &consts, &contract_sites);
    let atomics_sites = atomics::check(files);
    let rpc_lock_sites = rpclock::check(files, &graph);
    let bg_error_sites = bgerrors::check(files, &graph);
    let queue_sites = queues::check(files, &graph, &contract_sites);

    let (panic_violations, panic_allowed, panic_counts) =
        apply_allowances(&panic_sites, &allowlist.panic_paths, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (blocking_violations, blocking_allowed, blocking_counts) =
        apply_allowances(&blocking_sites, &allowlist.blocking, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (json_violations, json_allowed, json_counts) =
        apply_allowances(&json_sites, &allowlist.serde_json, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (contract_violations, contract_allowed, contract_counts) =
        apply_allowances(&contract_issues, &allowlist.contracts, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (yield_violations, yield_allowed, yield_counts) =
        apply_allowances(&yield_sites, &allowlist.lock_across_yield, |s| {
            (s.file.clone(), s.function.clone(), format!("{}:{}", s.yield_call, s.lock))
        });
    let (raw_forward_violations, raw_forward_allowed, raw_forward_counts) =
        apply_allowances(&raw_forward_sites, &allowlist.raw_forward, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (deadline_violations, deadline_allowed, deadline_counts) =
        apply_allowances(&deadline_sites, &allowlist.deadline_loss, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (retry_violations, retry_allowed, retry_counts) =
        apply_allowances(&retry_sites, &allowlist.retry_soundness, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (atomics_violations, atomics_allowed, atomics_counts) =
        apply_allowances(&atomics_sites, &allowlist.relaxed_atomics, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (rpc_lock_violations, rpc_lock_allowed, rpc_lock_counts) =
        apply_allowances(&rpc_lock_sites, &allowlist.rpc_under_lock, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (bg_error_violations, bg_error_allowed, bg_error_counts) =
        apply_allowances(&bg_error_sites, &allowlist.background_errors, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });
    let (queue_violations, queue_allowed, queue_counts) =
        apply_allowances(&queue_sites, &allowlist.queue_growth, |s| {
            (s.file.clone(), s.function.clone(), s.kind.clone())
        });

    let stale_entries = allowlist.stale_entries(&[
        ("panic_paths", &panic_counts),
        ("blocking", &blocking_counts),
        ("serde_json", &json_counts),
        ("contracts", &contract_counts),
        ("lock_across_yield", &yield_counts),
        ("raw_forward", &raw_forward_counts),
        ("deadline_loss", &deadline_counts),
        ("retry_soundness", &retry_counts),
        ("relaxed_atomics", &atomics_counts),
        ("rpc_under_lock", &rpc_lock_counts),
        ("background_errors", &bg_error_counts),
        ("queue_growth", &queue_counts),
    ]);

    LintReport {
        files: files.len(),
        lock_edges,
        lock_cycles,
        recursive_locks,
        panic_violations,
        panic_allowed,
        blocking_violations,
        blocking_allowed,
        json_violations,
        json_allowed,
        contract_sites,
        contract_violations,
        contract_allowed,
        yield_violations,
        yield_allowed,
        raw_forward_violations,
        raw_forward_allowed,
        deadline_violations,
        deadline_allowed,
        retry_violations,
        retry_allowed,
        atomics_violations,
        atomics_allowed,
        rpc_lock_violations,
        rpc_lock_allowed,
        bg_error_violations,
        bg_error_allowed,
        queue_violations,
        queue_allowed,
        graph_stats,
        stale_entries,
        panic_counts,
        blocking_counts,
        json_counts,
        contract_counts,
        yield_counts,
        raw_forward_counts,
        deadline_counts,
        retry_counts,
        atomics_counts,
        rpc_lock_counts,
        bg_error_counts,
        queue_counts,
    }
}

/// Splits findings into allowed (within frozen counts) and violations.
fn apply_allowances<T: Clone>(
    sites: &[T],
    allowances: &BTreeMap<allowlist::Key, usize>,
    key_of: impl Fn(&T) -> allowlist::Key,
) -> (Vec<T>, usize, BTreeMap<allowlist::Key, usize>) {
    let mut counts: BTreeMap<allowlist::Key, usize> = BTreeMap::new();
    for site in sites {
        *counts.entry(key_of(site)).or_insert(0) += 1;
    }
    let mut seen: BTreeMap<allowlist::Key, usize> = BTreeMap::new();
    let mut violations = Vec::new();
    let mut allowed = 0usize;
    for site in sites {
        let key = key_of(site);
        let used = seen.entry(key.clone()).or_insert(0);
        *used += 1;
        if *used <= allowances.get(&key).copied().unwrap_or(0) {
            allowed += 1;
        } else {
            violations.push(site.clone());
        }
    }
    (violations, allowed, counts)
}

/// Loads and analyzes every production `.rs` file under `root`.
pub fn run(root: &Path, allowlist: &Allowlist) -> Result<LintReport, String> {
    let mut files = Vec::new();
    for (rel, path) in source::collect_rs_files(root).map_err(|e| format!("walking {root:?}: {e}"))? {
        let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path:?}: {e}"))?;
        files.push(SourceFile::parse(&rel, &raw));
    }
    Ok(analyze(&files, allowlist))
}

/// Loads the allowlist at `path`; a missing file is an empty allowlist.
pub fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Allowlist::from_json(&text).map_err(|e| format!("{path:?}: {e}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("reading {path:?}: {e}")),
    }
}
