//! Interprocedural deadline-loss analysis (MOCHI012).
//!
//! PR 5 made deadlines propagate: a handler that issues a nested RPC via
//! [`RpcContext::nested_context`] (or `RpcContext::forward`, which calls
//! it) inherits the caller's remaining budget, so a fan-out tree shares
//! one deadline instead of resetting it at every hop. Nothing enforced
//! that handlers actually do this — a nested forward built with
//! `CallContext::TOP_LEVEL` (which every context-less convenience
//! wrapper defaults to) silently restarts the budget, and the paper's
//! fan-out premise makes that a correctness bug at scale, not a style
//! issue.
//!
//! The analysis walks the call graph from every function that registers
//! an RPC handler (the contract table's `Register` sites — handler
//! closures are lexically inside those functions, so their calls are
//! attributed there) and inspects every reachable `forward`-family call
//! site in service code:
//!
//! * `forward` — context-less wrapper, always `TOP_LEVEL`. Flagged
//!   unless the receiver is an `RpcContext` (whose `forward` threads
//!   `nested_context` by construction).
//! * `forward_timeout` — always `TOP_LEVEL`; flagged.
//! * `forward_with_context` / `forward_full` / `forward_raw` /
//!   `forward_bytes` — the context argument (index 4) is inspected:
//!   `nested_context` ⇒ clean, `TOP_LEVEL` ⇒ flagged, anything else (a
//!   threaded context variable such as `self.context`) ⇒ assumed clean.
//!   The variable case is deliberately optimistic: the client
//!   chokepoints hold a `CallContext` field that handler-side callers
//!   populate via `with_context(ctx.nested_context())`, and flagging
//!   every variable would force allowlisting the entire fixed surface.
//!
//! `call`/`call_raw` chokepoints need no separate sink rule: their
//! bodies *contain* the forward-family sites, and the walk reaches them
//! through the same edges, so a chokepoint that drops context is flagged
//! at the line that drops it.
//!
//! Sites inside `spawn(…)` arguments are skipped — detached background
//! work (replication loops, gossip rounds) is top-level by design.
//! Plumbing crates (margo/mercury/argobots/util/wire — where the
//! forward family is *implemented*) are excluded from both the walk and
//! the sink scan.

use crate::callgraph::CallGraph;
use crate::contracts::{Role, RpcSite};
use crate::source::SourceFile;

/// One deadline-dropping forward reachable from a handler.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DeadlineSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// `drop:<forward-family method>` — the allowlist kind.
    pub kind: String,
    /// Witness path from a registering function to the sink.
    pub path: Vec<String>,
}

/// Crates that implement the RPC plane rather than use it; the walk
/// neither enters them nor scans their forward internals.
pub const PLUMBING: &[&str] =
    &["argobots", "bench", "lint", "margo", "mercury", "util", "wire"];

const SINKS: &[&str] = &[
    "forward",
    "forward_bytes",
    "forward_full",
    "forward_raw",
    "forward_timeout",
    "forward_with_context",
];

/// Index of the `CallContext` argument in the explicit-context forms.
const CONTEXT_ARG: usize = 4;

/// Runs the analysis over the built graph and contract table.
pub fn check(files: &[SourceFile], graph: &CallGraph, sites: &[RpcSite]) -> Vec<DeadlineSite> {
    let mut entries: Vec<usize> = Vec::new();
    for site in sites {
        if site.role != Role::Register || PLUMBING.contains(&site.crate_name.as_str()) {
            continue;
        }
        entries.extend(graph.nodes_named(&site.file, &site.function));
    }
    entries.sort_unstable();
    entries.dedup();

    let parents = graph.reachable(&entries, |n| !PLUMBING.contains(&n.crate_name.as_str()));
    let mut findings = Vec::new();
    for &node_id in parents.keys() {
        let node = &graph.nodes[node_id];
        if PLUMBING.contains(&node.crate_name.as_str()) {
            continue;
        }
        for call in &graph.calls[node_id] {
            if call.in_spawn
                || call.receiver.is_none()
                || !SINKS.contains(&call.callee.as_str())
            {
                continue;
            }
            let dropped = match call.callee.as_str() {
                // Context-less wrappers: clean only on an RpcContext
                // receiver (RpcContext::forward threads nested_context).
                "forward" => {
                    let typed_ctx = call.receiver_type.as_deref() == Some("RpcContext");
                    let named_ctx = call
                        .receiver
                        .as_deref()
                        .map(|r| r == "ctx" || r.ends_with("ctx") || r.ends_with("context"))
                        .unwrap_or(false);
                    !(typed_ctx || named_ctx)
                }
                "forward_timeout" => true,
                _ => match call.args.get(CONTEXT_ARG) {
                    Some(&(s, e)) => {
                        let arg = String::from_utf8_lossy(&files[node.file_idx].text[s..e]);
                        !arg.contains("nested_context") && arg.contains("TOP_LEVEL")
                    }
                    None => false,
                },
            };
            if dropped {
                findings.push(DeadlineSite {
                    file: node.file.clone(),
                    function: node.name.clone(),
                    crate_name: node.crate_name.clone(),
                    line: call.line,
                    column: call.column,
                    kind: format!("drop:{}", call.callee),
                    path: graph.path_names(&parents, node_id),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}
