//! Interprocedural RPC-under-lock analysis (MOCHI015).
//!
//! The classic progress-engine deadlock at scale-out: a handler (or any
//! service function) holds an `OrderedMutex`/`OrderedRwLock` guard while
//! calling a function that — transitively, through the call graph —
//! issues a `forward`-family RPC. The forward suspends the ULT with the
//! guard held; under fan-out the peer may be this very provider (or one
//! blocked on it), and the handler that would release the lock is queued
//! behind the suspension. MOCHI009 catches the *direct* form (the
//! forward lexically inside the guard span); this rule closes the
//! interprocedural gap: the guard is live at a *call site* whose callee
//! reaches a forward.
//!
//! Mechanics:
//!
//! 1. an ordered-lock field index is built from `OrderedMutex<…>` /
//!    `OrderedRwLock<…>` type ascriptions (struct fields, locals,
//!    parameters), keyed `crate::field` — the same class identity the
//!    guard spans carry. Plain `parking_lot` locks are out of scope:
//!    the rank-checked locks are the documented hierarchy, and scoping
//!    to them keeps the rule's false-positive budget at zero;
//! 2. a reverse reachability pass marks every non-plumbing node that
//!    contains a non-spawn forward-family call or calls one that does,
//!    recording a next-hop so findings carry a witness path;
//! 3. for each node in ULT/handler scope, the [`BodyFlow`] guard spans
//!    answer "which ordered guards are live at this call site, in this
//!    closure context?" — a live guard over a forward-reaching call is
//!    a finding.
//!
//! Call sites inside `spawn(…)` arguments are skipped (the closure runs
//! without the caller's guard — `dataflow` models the fresh context, and
//! the spawned work doesn't suspend *this* ULT). Direct forward-family
//! callees are skipped here because MOCHI009 already owns that form.

use std::collections::BTreeSet;

use crate::dataflow::BodyFlow;
use crate::deadline::PLUMBING;
use crate::callgraph::CallGraph;
use crate::lexer::is_ident_byte;
use crate::source::SourceFile;
use crate::yields;

/// One ordered guard held across a forward-reaching call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RpcLockSite {
    pub file: String,
    pub function: String,
    pub crate_name: String,
    pub line: usize,
    pub column: usize,
    /// `<callee>:<lock>` — the allowlist kind (e.g. `flush_all:yokan::writer`).
    pub kind: String,
    /// The ordered lock class held at the call.
    pub lock: String,
    /// Witness path from the call site's callee down to the forward.
    pub path: Vec<String>,
}

/// The suspending calls the reachability pass looks for: the MOCHI009
/// yield family plus `forward_bytes` (the margo chokepoint service code
/// can reach through wrappers).
const FORWARD_FAMILY: &[&str] = &[
    "forward",
    "forward_bytes",
    "forward_full",
    "forward_raw",
    "forward_timeout",
    "forward_with_context",
    "notify",
    "bulk_pull",
    "bulk_push",
    "recv",
    "recv_timeout",
];

/// Builds the `crate::field` index of rank-ordered lock declarations.
/// Matches `name: OrderedMutex<…>` / `name: Arc<OrderedRwLock<…>>` (and
/// path-qualified forms) — struct fields, locals, and parameters alike.
pub fn ordered_lock_index(files: &[SourceFile]) -> BTreeSet<String> {
    let mut index = BTreeSet::new();
    for file in files {
        let text = &file.text;
        for marker in ["OrderedMutex", "OrderedRwLock"] {
            let needle = marker.as_bytes();
            let mut from = 0usize;
            while let Some(pos) = find_word(text, needle, from) {
                from = pos + needle.len();
                if let Some(field) = declared_field_before(text, pos) {
                    index.insert(format!("{}::{}", file.crate_name, field));
                }
            }
        }
    }
    index
}

/// Runs the analysis over the built graph.
pub fn check(files: &[SourceFile], graph: &CallGraph) -> Vec<RpcLockSite> {
    let ordered = ordered_lock_index(files);
    if ordered.is_empty() {
        return Vec::new();
    }

    // Pass 2: which nodes reach a forward? Seed with direct containers,
    // then walk the reverse graph. `forward_hop[n]` is the next node on
    // the path to the forward (or `None` when n contains it directly).
    let n = graph.nodes.len();
    let mut reaches = vec![false; n];
    let mut forward_hop: Vec<Option<usize>> = vec![None; n];
    let mut forward_name: Vec<Option<String>> = vec![None; n];
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            reverse[e.to].push(from);
        }
    }
    let mut queue = std::collections::VecDeque::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if PLUMBING.contains(&node.crate_name.as_str()) {
            continue;
        }
        if let Some(call) = graph.calls[id]
            .iter()
            .find(|c| !c.in_spawn && FORWARD_FAMILY.contains(&c.callee.as_str()))
        {
            reaches[id] = true;
            forward_name[id] = Some(call.callee.clone());
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &caller in &reverse[id] {
            if reaches[caller] || PLUMBING.contains(&graph.nodes[caller].crate_name.as_str()) {
                continue;
            }
            reaches[caller] = true;
            forward_hop[caller] = Some(id);
            queue.push_back(caller);
        }
    }

    // Pass 3: ordered guards live at forward-reaching call sites.
    let mut findings = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if PLUMBING.contains(&node.crate_name.as_str()) || !yields::in_scope(&node.file) {
            continue;
        }
        let has_candidate = graph.calls[id].iter().any(|c| {
            !c.in_spawn
                && !FORWARD_FAMILY.contains(&c.callee.as_str())
                && c.targets.iter().any(|&t| reaches[t])
        });
        if !has_candidate {
            continue;
        }
        let file = &files[node.file_idx];
        let func = &file.functions[node.func_idx];
        let flow = BodyFlow::analyze(file, func.body_start, func.body_end, &BTreeSet::new());
        for call in &graph.calls[id] {
            if call.in_spawn || FORWARD_FAMILY.contains(&call.callee.as_str()) {
                continue; // direct forwards under a guard are MOCHI009's
            }
            let Some(&target) = call.targets.iter().find(|&&t| reaches[t]) else {
                continue;
            };
            for span in flow.live_at(call.offset) {
                if !ordered.contains(&span.lock) {
                    continue;
                }
                let mut path = vec![node.name.clone()];
                let mut at = target;
                path.push(graph.nodes[at].name.clone());
                while let Some(next) = forward_hop[at] {
                    at = next;
                    path.push(graph.nodes[at].name.clone());
                }
                if let Some(fwd) = &forward_name[at] {
                    path.push(format!(".{fwd}()"));
                }
                findings.push(RpcLockSite {
                    file: node.file.clone(),
                    function: node.name.clone(),
                    crate_name: node.crate_name.clone(),
                    line: call.line,
                    column: call.column,
                    kind: format!("{}:{}", call.callee, span.lock),
                    lock: span.lock.clone(),
                    path,
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// Finds the next whole-word occurrence of `needle` at or after `from`.
fn find_word(text: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || text.len() < needle.len() {
        return None;
    }
    let mut i = from;
    while i + needle.len() <= text.len() {
        if &text[i..i + needle.len()] == needle
            && (i == 0 || !is_ident_byte(text[i - 1]))
            && (i + needle.len() == text.len() || !is_ident_byte(text[i + needle.len()]))
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Given the offset of an `OrderedMutex`/`OrderedRwLock` type use, walks
/// backward through path qualifiers (`mochi_util::`) and generic
/// wrappers (`Arc<`, `Box<`) to the `name:` ascription and returns the
/// declared name. Returns `None` for non-ascription uses
/// (`OrderedMutex::new(…)` in expressions without a field context,
/// `use` imports, turbofish).
fn declared_field_before(text: &[u8], mut p: usize) -> Option<String> {
    // Skip `path::` qualifiers directly before the marker.
    while p >= 2 && text[p - 1] == b':' && text[p - 2] == b':' {
        p -= 2;
        while p > 0 && is_ident_byte(text[p - 1]) {
            p -= 1;
        }
    }
    // Skip generic wrappers: `Arc<`, `Box<`, `Option<`, …
    loop {
        while p > 0 && text[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p > 0 && text[p - 1] == b'<' {
            p -= 1;
            while p > 0 && is_ident_byte(text[p - 1]) {
                p -= 1;
            }
            continue;
        }
        break;
    }
    // Require a single `:` (not `::`) — the ascription.
    if p == 0 || text[p - 1] != b':' || (p >= 2 && text[p - 2] == b':') {
        return None;
    }
    p -= 1;
    while p > 0 && text[p - 1].is_ascii_whitespace() {
        p -= 1;
    }
    let end = p;
    while p > 0 && is_ident_byte(text[p - 1]) {
        p -= 1;
    }
    if p == end {
        return None;
    }
    let name = String::from_utf8_lossy(&text[p..end]).into_owned();
    if name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true) {
        return None;
    }
    Some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect()
    }

    #[test]
    fn ordered_index_sees_fields_locals_and_wrappers() {
        let files = parse(&[(
            "crates/demo/src/lib.rs",
            "struct S { core: OrderedMutex<Inner>, view: Arc<mochi_util::OrderedRwLock<View>> }\n\
             fn f() { let extra: OrderedMutex<u32> = OrderedMutex::new(9, 0); }\n",
        )]);
        let index = ordered_lock_index(&files);
        assert!(index.contains("demo::core"), "{index:?}");
        assert!(index.contains("demo::view"), "{index:?}");
        assert!(index.contains("demo::extra"), "{index:?}");
        // The bare `OrderedMutex::new` expression ascribes nothing new.
        assert_eq!(index.len(), 3, "{index:?}");
    }

    #[test]
    fn guard_live_across_forward_reaching_call_flagged() {
        let files = parse(&[(
            "crates/yokan/src/provider.rs",
            "struct S { state: OrderedMutex<Inner> }\n\
             impl S {\n\
                 fn handle(&self) { let g = self.state.lock(); self.relay(1); }\n\
                 fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
             }\n",
        )]);
        let graph = CallGraph::build(&files);
        let found = check(&files, &graph);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].function, "handle");
        assert_eq!(found[0].lock, "yokan::state");
        assert_eq!(found[0].kind, "relay:yokan::state");
        assert_eq!(
            found[0].path,
            vec!["handle".to_string(), "relay".to_string(), ".forward()".to_string()]
        );
    }

    #[test]
    fn dropped_guard_before_call_is_clean() {
        let files = parse(&[(
            "crates/yokan/src/provider.rs",
            "struct S { state: OrderedMutex<Inner> }\n\
             impl S {\n\
                 fn handle(&self) { let g = self.state.lock(); drop(g); self.relay(1); }\n\
                 fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
             }\n",
        )]);
        let graph = CallGraph::build(&files);
        assert!(check(&files, &graph).is_empty());
    }

    #[test]
    fn unordered_lock_is_out_of_scope() {
        let files = parse(&[(
            "crates/yokan/src/provider.rs",
            "struct S { state: Mutex<Inner> }\n\
             impl S {\n\
                 fn handle(&self) { let g = self.state.lock(); self.relay(1); }\n\
                 fn relay(&self, v: u64) { self.margo.forward(&dest(), \"yokan_next\", 1, &v).ok(); }\n\
             }\n",
        )]);
        let graph = CallGraph::build(&files);
        assert!(check(&files, &graph).is_empty());
    }
}
