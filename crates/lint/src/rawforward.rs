//! Raw-forward lint: `forward`-family calls in service clients that
//! bypass the retry-aware chokepoint.
//!
//! The yokan/warabi/remi client libraries funnel every RPC through a
//! single `call`/`call_raw` wrapper so retry, circuit-breaker, deadline,
//! and idempotency handling apply uniformly (see `DESIGN.md` §13). A
//! `forward_timeout` sprinkled directly into a client method silently
//! opts that RPC out of the resilience plane — it still works on a
//! healthy fabric, and only misbehaves during the faults the plane
//! exists for. New sites fail; deliberate exceptions (e.g. REMI's
//! windowed chunk pipeline, which manages its own in-flight tracking)
//! are frozen in the allowlist with the reason recorded in the code.

use crate::lexer::{column_of, is_ident_byte, line_of};
use crate::source::SourceFile;

/// Service-client modules where a raw forward is a finding. Exact files:
/// providers and the margo runtime itself legitimately call the forward
/// family.
pub const CLIENT_PATHS: &[&str] = &[
    "crates/yokan/src/client.rs",
    "crates/warabi/src/client.rs",
    "crates/remi/src/client.rs",
];

/// The forward family on `MargoRuntime` (and `RpcContext`).
const FORWARD_FAMILY: &[&str] =
    &["forward", "forward_timeout", "forward_full", "forward_raw", "forward_with_context"];

/// Functions allowed to forward: the designated chokepoints.
const WRAPPERS: &[&str] = &["call", "call_raw"];

/// One raw forward call outside the chokepoints.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawForwardSite {
    pub file: String,
    pub function: String,
    /// The forward-family method called (`forward_timeout`, …).
    pub kind: String,
    pub line: usize,
    pub column: usize,
}

/// Whether the raw-forward lint applies to `rel_path`.
pub fn in_client(rel_path: &str) -> bool {
    CLIENT_PATHS.iter().any(|p| rel_path == *p)
}

/// Scans one client file for `.forward*(…)` method calls outside
/// `call`/`call_raw` (strings, comments, and test modules are already
/// blanked by the sanitizer).
pub fn scan(file: &SourceFile) -> Vec<RawForwardSite> {
    let text = &file.text;
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i + 1 < text.len() {
        if text[i] != b'.' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut end = start;
        while end < text.len() && is_ident_byte(text[end]) {
            end += 1;
        }
        let Ok(name) = std::str::from_utf8(&text[start..end]) else {
            i = end.max(i + 1);
            continue;
        };
        if FORWARD_FAMILY.contains(&name) {
            let function = file
                .function_at(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "<module>".to_string());
            if !WRAPPERS.contains(&function.as_str()) {
                sites.push(RawForwardSite {
                    file: file.rel_path.clone(),
                    function,
                    kind: name.to_string(),
                    line: line_of(text, i),
                    column: column_of(text, i),
                });
            }
        }
        i = end.max(i + 1);
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn sites(rel_path: &str, src: &str) -> Vec<(String, String, usize)> {
        let file = SourceFile::parse(rel_path, src);
        scan(&file).into_iter().map(|s| (s.function, s.kind, s.line)).collect()
    }

    #[test]
    fn raw_forward_outside_wrappers_is_flagged() {
        let found = sites(
            "crates/yokan/src/client.rs",
            "fn put(&self) { let _ = self.margo.forward_timeout(&a, N, 1, &x, t); }\n",
        );
        assert_eq!(found, vec![("put".to_string(), "forward_timeout".to_string(), 1)]);
    }

    #[test]
    fn chokepoints_may_forward() {
        let found = sites(
            "crates/yokan/src/client.rs",
            "fn call(&self) { self.margo.forward_timeout(&a, N, 1, &x, t) }\n\
             fn call_raw(&self) { self.margo.forward_raw(&a, N, 1, p, c, t) }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn whole_forward_family_is_covered() {
        for method in super::FORWARD_FAMILY {
            let src = format!("fn get(&self) {{ self.margo.{method}(&a, N, 1, &x) }}\n");
            let found = sites("crates/remi/src/client.rs", &src);
            assert_eq!(found.len(), 1, "{method} not flagged");
            assert_eq!(found[0].1, *method);
        }
    }

    #[test]
    fn non_forward_methods_and_lookalikes_pass() {
        let found = sites(
            "crates/warabi/src/client.rs",
            "fn f(&self) { self.margo.forward_bulk_stats(); self.fast_forward(); let forward_timeout = 3; }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn strings_comments_and_tests_are_invisible() {
        let found = sites(
            "crates/yokan/src/client.rs",
            "// self.margo.forward_timeout(...)\nfn f() { log(\".forward_raw\"); }\n#[cfg(test)]\nmod tests { fn t(m: &M) { m.forward_timeout(&a, N, 1, &x, t); } }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn client_filter_is_exact_files() {
        assert!(in_client("crates/yokan/src/client.rs"));
        assert!(in_client("crates/remi/src/client.rs"));
        assert!(!in_client("crates/margo/src/runtime.rs"));
        assert!(!in_client("crates/yokan/src/provider.rs"));
        assert!(!in_client("crates/core/src/failover.rs"));
    }
}
