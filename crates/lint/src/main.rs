//! CLI for `mochi-lint`.
//!
//! ```text
//! cargo run -p mochi-lint -- --root . [--allowlist lint-allow.json]
//!     [--format text|json|sarif] [--json-report <path>]
//!     [--allow-stale] [--write-allowlist]
//! ```
//!
//! Exit codes:
//! * 0 — clean (no findings; no stale allowlist entries, unless
//!   `--allow-stale` downgraded them to warnings)
//! * 1 — findings (cycles / new panic paths / new blocking calls /
//!   data-plane JSON / contract issues / locks across yields /
//!   deadline loss / retry-unsound effects / relaxed-atomic misuse)
//! * 2 — usage or I/O error
//! * 3 — no findings, but stale `lint-allow.json` entries (frozen debt
//!   that has been paid down must be pruned; pass `--allow-stale` to
//!   warn instead)

use std::path::PathBuf;
use std::process::ExitCode;

use mochi_lint::allowlist::Allowlist;
use mochi_lint::report;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut write_allowlist = false;
    let mut allow_stale = false;
    let mut format = String::from("text");
    let mut json_report: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some(v @ ("text" | "json" | "sarif")) => format = v.to_string(),
                Some(other) => return usage(&format!("unknown format '{other}'")),
                None => return usage("--format needs text|json|sarif"),
            },
            "--json-report" => match args.next() {
                Some(v) => json_report = Some(PathBuf::from(v)),
                None => return usage("--json-report needs a path"),
            },
            "--allow-stale" => allow_stale = true,
            "--write-allowlist" => write_allowlist = true,
            "--help" | "-h" => {
                eprintln!(
                    "mochi-lint --root <workspace> [--allowlist <json>] \
                     [--format text|json|sarif] [--json-report <path>] \
                     [--allow-stale] [--write-allowlist]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.json"));
    let allowlist = match mochi_lint::load_allowlist(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let lint = match mochi_lint::run(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_allowlist {
        let frozen = Allowlist::freeze(
            lint.panic_counts.clone(),
            lint.blocking_counts.clone(),
            lint.json_counts.clone(),
            lint.contract_counts.clone(),
            lint.yield_counts.clone(),
            lint.raw_forward_counts.clone(),
            lint.deadline_counts.clone(),
            lint.retry_counts.clone(),
            lint.atomics_counts.clone(),
            allowlist.reasons.clone(),
            allowlist.ignored_locks.clone(),
        );
        if let Err(e) = std::fs::write(&allowlist_path, frozen.to_json()) {
            eprintln!("mochi-lint: writing {allowlist_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} panic-path, {} blocking, {} data-plane JSON, {} contract, {} lock-across-yield, {} raw-forward, {} deadline-loss, {} retry-soundness, and {} relaxed-atomic allowances to {}",
            lint.panic_counts.values().sum::<usize>(),
            lint.blocking_counts.values().sum::<usize>(),
            lint.json_counts.values().sum::<usize>(),
            lint.contract_counts.values().sum::<usize>(),
            lint.yield_counts.values().sum::<usize>(),
            lint.raw_forward_counts.values().sum::<usize>(),
            lint.deadline_counts.values().sum::<usize>(),
            lint.retry_counts.values().sum::<usize>(),
            lint.atomics_counts.values().sum::<usize>(),
            allowlist_path.display()
        );
    }

    // The JSON report file is written regardless of the stdout format, so
    // CI always has the machine-readable document.
    if let Some(path) = &json_report {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, report::render_json(&lint)) {
            eprintln!("mochi-lint: writing {path:?}: {e}");
            return ExitCode::from(2);
        }
    }

    match format.as_str() {
        "json" => print!("{}", report::render_json(&lint)),
        "sarif" => print!("{}", report::render_sarif(&lint)),
        _ => print!("{}", report::render_text(&lint)),
    }

    if !lint.is_clean() {
        return ExitCode::FAILURE;
    }
    if !lint.stale_entries.is_empty() {
        if allow_stale {
            eprintln!(
                "mochi-lint: warning: {} stale allowlist entr{} (--allow-stale)",
                lint.stale_entries.len(),
                if lint.stale_entries.len() == 1 { "y" } else { "ies" }
            );
        } else {
            eprintln!(
                "mochi-lint: {} stale allowlist entr{} — prune lint-allow.json or pass --allow-stale",
                lint.stale_entries.len(),
                if lint.stale_entries.len() == 1 { "y" } else { "ies" }
            );
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    eprintln!("mochi-lint: {message} (see --help)");
    ExitCode::from(2)
}
