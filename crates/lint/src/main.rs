//! CLI for `mochi-lint`.
//!
//! ```text
//! cargo run -p mochi-lint -- --root . [--allowlist lint-allow.json]
//!     [--format text|json|sarif] [--json-report <path>]
//!     [--allow-stale] [--write-allowlist]
//!     [--baseline <sarif>] [--write-baseline <sarif>]
//! ```
//!
//! Exit codes:
//! * 0 — clean (no findings; no stale allowlist entries, unless
//!   `--allow-stale` downgraded them to warnings). In `--baseline` mode:
//!   no findings *beyond the baseline*.
//! * 1 — findings (cycles / new panic paths / new blocking calls /
//!   data-plane JSON / contract issues / locks across yields /
//!   deadline loss / retry-unsound effects / relaxed-atomic misuse /
//!   RPC-under-lock / swallowed background errors / unbounded queues).
//!   In `--baseline` mode: findings whose fingerprint the baseline
//!   doesn't contain.
//! * 2 — usage or I/O error
//! * 3 — no findings, but stale `lint-allow.json` entries (frozen debt
//!   that has been paid down must be pruned; pass `--allow-stale` to
//!   warn instead)

use std::path::PathBuf;
use std::process::ExitCode;

use mochi_lint::allowlist::Allowlist;
use mochi_lint::report;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut write_allowlist = false;
    let mut allow_stale = false;
    let mut format = String::from("text");
    let mut json_report: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some(v @ ("text" | "json" | "sarif")) => format = v.to_string(),
                Some(other) => return usage(&format!("unknown format '{other}'")),
                None => return usage("--format needs text|json|sarif"),
            },
            "--json-report" => match args.next() {
                Some(v) => json_report = Some(PathBuf::from(v)),
                None => return usage("--json-report needs a path"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a SARIF path"),
            },
            "--write-baseline" => match args.next() {
                Some(v) => write_baseline = Some(PathBuf::from(v)),
                None => return usage("--write-baseline needs a SARIF path"),
            },
            "--allow-stale" => allow_stale = true,
            "--write-allowlist" => write_allowlist = true,
            "--help" | "-h" => {
                eprintln!(
                    "mochi-lint --root <workspace> [--allowlist <json>] \
                     [--format text|json|sarif] [--json-report <path>] \
                     [--allow-stale] [--write-allowlist] \
                     [--baseline <sarif>] [--write-baseline <sarif>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.json"));
    let allowlist = match mochi_lint::load_allowlist(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Read the baseline before the (long) analysis so a bad path fails
    // fast.
    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match report::parse_baseline(&text) {
                Ok(prints) => Some(prints),
                Err(e) => {
                    eprintln!("mochi-lint: parsing baseline {path:?}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("mochi-lint: reading baseline {path:?}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let lint = match mochi_lint::run(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_allowlist {
        let frozen = Allowlist::freeze(
            lint.panic_counts.clone(),
            lint.blocking_counts.clone(),
            lint.json_counts.clone(),
            lint.contract_counts.clone(),
            lint.yield_counts.clone(),
            lint.raw_forward_counts.clone(),
            lint.deadline_counts.clone(),
            lint.retry_counts.clone(),
            lint.atomics_counts.clone(),
            lint.rpc_lock_counts.clone(),
            lint.bg_error_counts.clone(),
            lint.queue_counts.clone(),
            allowlist.reasons.clone(),
            allowlist.ignored_locks.clone(),
        );
        if let Err(e) = std::fs::write(&allowlist_path, frozen.to_json()) {
            eprintln!("mochi-lint: writing {allowlist_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} panic-path, {} blocking, {} data-plane JSON, {} contract, {} lock-across-yield, {} raw-forward, {} deadline-loss, {} retry-soundness, {} relaxed-atomic, {} rpc-under-lock, {} background-error, and {} queue-growth allowances to {}",
            lint.panic_counts.values().sum::<usize>(),
            lint.blocking_counts.values().sum::<usize>(),
            lint.json_counts.values().sum::<usize>(),
            lint.contract_counts.values().sum::<usize>(),
            lint.yield_counts.values().sum::<usize>(),
            lint.raw_forward_counts.values().sum::<usize>(),
            lint.deadline_counts.values().sum::<usize>(),
            lint.retry_counts.values().sum::<usize>(),
            lint.atomics_counts.values().sum::<usize>(),
            lint.rpc_lock_counts.values().sum::<usize>(),
            lint.bg_error_counts.values().sum::<usize>(),
            lint.queue_counts.values().sum::<usize>(),
            allowlist_path.display()
        );
    }

    if let Some(path) = &write_baseline {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("mochi-lint: creating {parent:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report::render_sarif(&lint)) {
            eprintln!("mochi-lint: writing baseline {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} fingerprinted findings to baseline {}",
            report::findings(&lint).len(),
            path.display()
        );
    }

    // The JSON report file is written regardless of the stdout format, so
    // CI always has the machine-readable document. A failed directory
    // creation surfaces through the write error below either way, but
    // report it in its own words when it is the root cause.
    if let Some(path) = &json_report {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("mochi-lint: creating {parent:?}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, report::render_json(&lint)) {
            eprintln!("mochi-lint: writing {path:?}: {e}");
            return ExitCode::from(2);
        }
    }

    match format.as_str() {
        "json" => print!("{}", report::render_json(&lint)),
        "sarif" => print!("{}", report::render_sarif(&lint)),
        _ => print!("{}", report::render_text(&lint)),
    }

    // Baseline mode replaces the absolute gate with a delta gate: only
    // findings missing from the committed baseline fail the run.
    if let Some(baseline) = &baseline {
        let new = report::baseline_diff(&lint, baseline);
        if new.is_empty() {
            eprintln!("mochi-lint: baseline: no new findings");
        } else {
            for f in &new {
                eprintln!(
                    "NEW {} [{} {}] {}:{}:{} (fn {}): {}",
                    f.level.to_uppercase(),
                    f.rule,
                    f.rule_name,
                    f.file,
                    f.line,
                    f.column,
                    f.function,
                    f.message
                );
            }
            eprintln!("mochi-lint: {} finding(s) not in the baseline", new.len());
            return ExitCode::FAILURE;
        }
    } else if !lint.is_clean() {
        return ExitCode::FAILURE;
    }
    if !lint.stale_entries.is_empty() {
        if allow_stale {
            eprintln!(
                "mochi-lint: warning: {} stale allowlist entr{} (--allow-stale)",
                lint.stale_entries.len(),
                if lint.stale_entries.len() == 1 { "y" } else { "ies" }
            );
        } else {
            eprintln!(
                "mochi-lint: {} stale allowlist entr{} — prune lint-allow.json or pass --allow-stale",
                lint.stale_entries.len(),
                if lint.stale_entries.len() == 1 { "y" } else { "ies" }
            );
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}

fn usage(message: &str) -> ExitCode {
    eprintln!("mochi-lint: {message} (see --help)");
    ExitCode::from(2)
}
