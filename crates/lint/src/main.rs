//! CLI for `mochi-lint`.
//!
//! ```text
//! cargo run -p mochi-lint -- --root . [--allowlist lint-allow.json] [--write-allowlist]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (cycles / new panic paths / new
//! blocking calls), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mochi_lint::allowlist::Allowlist;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut write_allowlist = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a path"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a path"),
            },
            "--write-allowlist" => write_allowlist = true,
            "--help" | "-h" => {
                eprintln!(
                    "mochi-lint --root <workspace> [--allowlist <json>] [--write-allowlist]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint-allow.json"));
    let allowlist = match mochi_lint::load_allowlist(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match mochi_lint::run(&root, &allowlist) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mochi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if write_allowlist {
        let frozen = Allowlist::freeze(
            report.panic_counts.clone(),
            report.blocking_counts.clone(),
            report.json_counts.clone(),
            allowlist.ignored_locks.clone(),
        );
        if let Err(e) = std::fs::write(&allowlist_path, frozen.to_json()) {
            eprintln!("mochi-lint: writing {allowlist_path:?}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {} panic-path, {} blocking, and {} data-plane JSON allowances to {}",
            report.panic_counts.values().sum::<usize>(),
            report.blocking_counts.values().sum::<usize>(),
            report.json_counts.values().sum::<usize>(),
            allowlist_path.display()
        );
    }

    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("mochi-lint: {message} (see --help)");
    ExitCode::from(2)
}
