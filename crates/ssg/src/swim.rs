//! The SWIM membership state machine (Das et al., DSN'02).
//!
//! This module is deliberately network-free: it owns the membership
//! table, the incarnation/override rules, the suspicion timers (counted
//! in protocol periods), and the piggyback dissemination buffer.
//! [`crate::group`] drives it from a protocol thread and carries its
//! updates inside ping/ack RPCs. Keeping the rules pure makes them unit-
//! and property-testable without a fabric.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use mochi_mercury::Address;
use mochi_util::SeededRng;

use crate::view::{GroupView, MemberState};

/// A disseminated membership update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    /// The member the update is about.
    pub subject: Address,
    /// Claimed state.
    pub state: MemberState,
    /// Incarnation number the claim refers to.
    pub incarnation: u64,
}

/// A membership change surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A member appeared (bootstrap, join, or resurrection).
    Joined(Address),
    /// A member is suspected (missed direct + indirect probes).
    Suspected(Address),
    /// A member was declared dead (suspicion expired) or left.
    Died(Address),
    /// A suspected member refuted the suspicion.
    Recovered(Address),
}

#[derive(Debug, Clone)]
struct MemberRecord {
    state: MemberState,
    incarnation: u64,
    /// Period at which the member became suspected.
    suspect_since: u64,
}

/// Entry in the join snapshot handed to new members.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberSnapshot {
    /// Member address.
    pub address: Address,
    /// Its incarnation.
    pub incarnation: u64,
}

/// The SWIM state of one member.
pub struct SwimState {
    self_addr: Address,
    incarnation: u64,
    members: HashMap<Address, MemberRecord>,
    updates: VecDeque<(Update, u32)>,
    piggyback_limit: u32,
    suspicion_periods: u32,
    epoch: u64,
    period: u64,
    events: Vec<MembershipEvent>,
    /// Shuffled ping order (SWIM's round-robin randomization).
    ping_order: Vec<Address>,
    ping_cursor: usize,
}

impl SwimState {
    /// Creates the state for `self_addr` with the given initial members
    /// (which may or may not include `self_addr`).
    pub fn new(
        self_addr: Address,
        initial: &[MemberSnapshot],
        piggyback_limit: u32,
        suspicion_periods: u32,
    ) -> Self {
        let mut members = HashMap::new();
        for snapshot in initial {
            if snapshot.address != self_addr {
                members.insert(
                    snapshot.address.clone(),
                    MemberRecord {
                        state: MemberState::Alive,
                        incarnation: snapshot.incarnation,
                        suspect_since: 0,
                    },
                );
            }
        }
        Self {
            self_addr,
            incarnation: 0,
            members,
            updates: VecDeque::new(),
            piggyback_limit,
            suspicion_periods,
            epoch: 0,
            period: 0,
            events: Vec::new(),
            ping_order: Vec::new(),
            ping_cursor: 0,
        }
    }

    /// This member's address.
    pub fn self_addr(&self) -> &Address {
        &self.self_addr
    }

    /// This member's incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Sets the incarnation (used on rejoin to exceed a stale Dead record).
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = incarnation;
    }

    fn enqueue(&mut self, update: Update) {
        // Replace any older update about the same subject.
        self.updates.retain(|(u, _)| u.subject != update.subject);
        self.updates.push_back((update, self.piggyback_limit));
    }

    /// Forces an update into the dissemination buffer without applying it
    /// (used to announce our own aliveness at bootstrap/join, since
    /// updates about self are otherwise only queued as refutations).
    pub fn force_enqueue(&mut self, update: Update) {
        self.enqueue(update);
    }

    /// Pops up to `max` updates for piggybacking on an outgoing message.
    pub fn take_piggyback(&mut self, max: usize) -> Vec<Update> {
        let mut out = Vec::new();
        let mut keep = VecDeque::new();
        while let Some((update, mut remaining)) = self.updates.pop_front() {
            if out.len() < max {
                out.push(update.clone());
                remaining = remaining.saturating_sub(1);
            }
            if remaining > 0 {
                keep.push_back((update, remaining));
            }
        }
        self.updates = keep;
        out
    }

    /// Applies a received (or locally generated) update, enforcing SWIM's
    /// override rules, and re-disseminates it if it changed anything.
    pub fn apply_update(&mut self, update: &Update) {
        if update.subject == self.self_addr {
            // Suspicion or death about ourselves: refute with a higher
            // incarnation.
            if update.state != MemberState::Alive && update.incarnation >= self.incarnation {
                self.incarnation = update.incarnation + 1;
                let refutation = Update {
                    subject: self.self_addr.clone(),
                    state: MemberState::Alive,
                    incarnation: self.incarnation,
                };
                self.enqueue(refutation);
            }
            return;
        }
        let record = self.members.get(&update.subject);
        let accept = match record {
            None => {
                // Unknown member: accept Alive claims (a join); ignore
                // suspicion/death gossip about members we never met.
                update.state == MemberState::Alive
            }
            Some(existing) => match (existing.state, update.state) {
                // Alive overrides Suspect/Alive with greater incarnation;
                // resurrects Dead with strictly greater incarnation (a
                // restarted process rejoining under the same address).
                (MemberState::Alive, MemberState::Alive) => {
                    update.incarnation > existing.incarnation
                }
                (MemberState::Suspect, MemberState::Alive) => {
                    update.incarnation > existing.incarnation
                }
                (MemberState::Dead, MemberState::Alive) => {
                    update.incarnation > existing.incarnation
                }
                // Suspect overrides Alive with >= incarnation.
                (MemberState::Alive, MemberState::Suspect) => {
                    update.incarnation >= existing.incarnation
                }
                (MemberState::Suspect, MemberState::Suspect) => {
                    update.incarnation > existing.incarnation
                }
                (MemberState::Dead, MemberState::Suspect) => false,
                // Dead overrides everything at >= incarnation; a fresher
                // death claim must also advance a Dead record's
                // incarnation, or a stale Alive could resurrect past it.
                (MemberState::Dead, MemberState::Dead) => {
                    update.incarnation > existing.incarnation
                }
                (_, MemberState::Dead) => update.incarnation >= existing.incarnation,
            },
        };
        if !accept {
            return;
        }
        let previous = record.map(|r| r.state);
        self.members.insert(
            update.subject.clone(),
            MemberRecord {
                state: update.state,
                incarnation: update.incarnation,
                suspect_since: self.period,
            },
        );
        self.epoch += 1;
        self.refresh_ping_order();
        match (previous, update.state) {
            (None, MemberState::Alive) | (Some(MemberState::Dead), MemberState::Alive) => {
                self.events.push(MembershipEvent::Joined(update.subject.clone()));
            }
            (Some(MemberState::Suspect), MemberState::Alive) => {
                self.events.push(MembershipEvent::Recovered(update.subject.clone()));
            }
            (_, MemberState::Suspect) => {
                self.events.push(MembershipEvent::Suspected(update.subject.clone()));
            }
            (previous, MemberState::Dead) if previous != Some(MemberState::Dead) => {
                self.events.push(MembershipEvent::Died(update.subject.clone()));
            }
            _ => {}
        }
        self.enqueue(update.clone());
    }

    /// Local observation: direct and indirect probes of `addr` failed.
    pub fn suspect_locally(&mut self, addr: &Address) {
        let incarnation = self.members.get(addr).map(|r| r.incarnation).unwrap_or(0);
        let update =
            Update { subject: addr.clone(), state: MemberState::Suspect, incarnation };
        self.apply_update(&update);
    }

    /// Local observation: `addr` answered a probe.
    pub fn confirm_alive(&mut self, addr: &Address) {
        if let Some(record) = self.members.get_mut(addr) {
            if record.state == MemberState::Suspect {
                let incarnation = record.incarnation;
                let update = Update {
                    subject: addr.clone(),
                    state: MemberState::Alive,
                    incarnation: incarnation + 1,
                };
                self.apply_update(&update);
            }
        }
    }

    /// Advances one protocol period; expires suspicions into deaths.
    pub fn tick(&mut self) {
        self.period += 1;
        let expired: Vec<(Address, u64)> = self
            .members
            .iter()
            .filter(|(_, r)| {
                r.state == MemberState::Suspect
                    && self.period.saturating_sub(r.suspect_since) >= self.suspicion_periods as u64
            })
            .map(|(a, r)| (a.clone(), r.incarnation))
            .collect();
        for (addr, incarnation) in expired {
            let update = Update { subject: addr, state: MemberState::Dead, incarnation };
            self.apply_update(&update);
        }
    }

    fn refresh_ping_order(&mut self) {
        self.ping_order.clear();
        self.ping_cursor = 0;
    }

    /// Picks the next probe target (round-robin over a random permutation
    /// of live members, as in the SWIM paper).
    pub fn next_ping_target(&mut self, rng: &mut SeededRng) -> Option<Address> {
        if self.ping_cursor >= self.ping_order.len() {
            self.ping_order = self
                .members
                .iter()
                .filter(|(_, r)| r.state != MemberState::Dead)
                .map(|(a, _)| a.clone())
                .collect();
            rng.shuffle(&mut self.ping_order);
            self.ping_cursor = 0;
        }
        let target = self.ping_order.get(self.ping_cursor).cloned();
        self.ping_cursor += 1;
        target
    }

    /// Picks up to `k` members for indirect probing, excluding `exclude`.
    pub fn select_indirect(
        &self,
        rng: &mut SeededRng,
        k: usize,
        exclude: &Address,
    ) -> Vec<Address> {
        let mut candidates: Vec<Address> = self
            .members
            .iter()
            .filter(|(a, r)| r.state == MemberState::Alive && *a != exclude)
            .map(|(a, _)| a.clone())
            .collect();
        rng.shuffle(&mut candidates);
        candidates.truncate(k);
        candidates
    }

    /// Current view: self plus alive and suspect members.
    pub fn view(&self) -> GroupView {
        let mut members: Vec<Address> = self
            .members
            .iter()
            .filter(|(_, r)| r.state != MemberState::Dead)
            .map(|(a, _)| a.clone())
            .collect();
        members.push(self.self_addr.clone());
        GroupView::new(self.epoch, members)
    }

    /// Snapshot for joiners: self plus all alive members.
    pub fn snapshot(&self) -> Vec<MemberSnapshot> {
        let mut snapshot: Vec<MemberSnapshot> = self
            .members
            .iter()
            .filter(|(_, r)| r.state != MemberState::Dead)
            .map(|(a, r)| MemberSnapshot { address: a.clone(), incarnation: r.incarnation })
            .collect();
        snapshot.push(MemberSnapshot {
            address: self.self_addr.clone(),
            incarnation: self.incarnation,
        });
        snapshot.sort_by(|a, b| a.address.cmp(&b.address));
        snapshot
    }

    /// Recorded incarnation of `addr`, if known.
    pub fn incarnation_of(&self, addr: &Address) -> Option<u64> {
        self.members.get(addr).map(|r| r.incarnation)
    }

    /// State of `addr`, if known.
    pub fn state_of(&self, addr: &Address) -> Option<MemberState> {
        self.members.get(addr).map(|r| r.state)
    }

    /// Drains pending membership events (fired to callbacks).
    pub fn drain_events(&mut self) -> Vec<MembershipEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u32) -> Address {
        Address::tcp(format!("node{n}"), 1)
    }

    fn snapshot(ids: &[u32]) -> Vec<MemberSnapshot> {
        ids.iter().map(|n| MemberSnapshot { address: addr(*n), incarnation: 0 }).collect()
    }

    fn state() -> SwimState {
        SwimState::new(addr(0), &snapshot(&[1, 2, 3]), 8, 3)
    }

    #[test]
    fn initial_view_contains_everyone() {
        let s = state();
        let view = s.view();
        assert_eq!(view.len(), 4);
        assert!(view.contains(&addr(0)));
    }

    #[test]
    fn suspicion_expires_to_death_after_configured_periods() {
        let mut s = state();
        s.suspect_locally(&addr(1));
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Suspect));
        s.tick();
        s.tick();
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Suspect));
        s.tick();
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Dead));
        assert!(!s.view().contains(&addr(1)));
        let events = s.drain_events();
        assert!(events.contains(&MembershipEvent::Suspected(addr(1))));
        assert!(events.contains(&MembershipEvent::Died(addr(1))));
    }

    #[test]
    fn alive_with_higher_incarnation_refutes_suspicion() {
        let mut s = state();
        s.suspect_locally(&addr(1));
        s.apply_update(&Update {
            subject: addr(1),
            state: MemberState::Alive,
            incarnation: 1,
        });
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Alive));
        assert!(s.drain_events().contains(&MembershipEvent::Recovered(addr(1))));
    }

    #[test]
    fn stale_alive_does_not_unsuspect() {
        let mut s = state();
        s.suspect_locally(&addr(1)); // suspect at incarnation 0
        s.apply_update(&Update {
            subject: addr(1),
            state: MemberState::Alive,
            incarnation: 0, // same incarnation: suspicion wins
        });
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Suspect));
    }

    #[test]
    fn self_suspicion_triggers_refutation() {
        let mut s = state();
        s.apply_update(&Update {
            subject: addr(0),
            state: MemberState::Suspect,
            incarnation: 0,
        });
        assert_eq!(s.incarnation(), 1);
        let updates = s.take_piggyback(10);
        assert!(updates.iter().any(|u| u.subject == addr(0)
            && u.state == MemberState::Alive
            && u.incarnation == 1));
    }

    #[test]
    fn join_via_alive_update() {
        let mut s = state();
        s.apply_update(&Update {
            subject: addr(9),
            state: MemberState::Alive,
            incarnation: 0,
        });
        assert!(s.view().contains(&addr(9)));
        assert!(s.drain_events().contains(&MembershipEvent::Joined(addr(9))));
    }

    #[test]
    fn dead_member_resurrects_only_with_higher_incarnation() {
        let mut s = state();
        s.apply_update(&Update { subject: addr(1), state: MemberState::Dead, incarnation: 0 });
        assert!(!s.view().contains(&addr(1)));
        // Same incarnation: stays dead.
        s.apply_update(&Update { subject: addr(1), state: MemberState::Alive, incarnation: 0 });
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Dead));
        // Higher incarnation: rejoins.
        s.apply_update(&Update { subject: addr(1), state: MemberState::Alive, incarnation: 1 });
        assert_eq!(s.state_of(&addr(1)), Some(MemberState::Alive));
    }

    #[test]
    fn piggyback_limit_retires_updates() {
        let mut s = SwimState::new(addr(0), &snapshot(&[1]), 2, 3);
        s.suspect_locally(&addr(1));
        assert_eq!(s.take_piggyback(10).len(), 1);
        assert_eq!(s.take_piggyback(10).len(), 1);
        assert_eq!(s.take_piggyback(10).len(), 0, "limit of 2 sends reached");
    }

    #[test]
    fn ping_targets_cycle_through_all_members() {
        let mut s = state();
        let mut rng = SeededRng::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            seen.insert(s.next_ping_target(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3, "one full round hits every member once");
    }

    #[test]
    fn indirect_selection_excludes_target_and_self() {
        let s = state();
        let mut rng = SeededRng::new(2);
        let picked = s.select_indirect(&mut rng, 5, &addr(1));
        assert!(!picked.contains(&addr(1)));
        assert!(!picked.contains(&addr(0)));
        assert_eq!(picked.len(), 2); // only 2 and 3 remain
    }

    #[test]
    fn gossip_about_unknown_dead_member_is_ignored() {
        let mut s = state();
        s.apply_update(&Update { subject: addr(42), state: MemberState::Dead, incarnation: 5 });
        assert_eq!(s.state_of(&addr(42)), None);
        assert!(s.drain_events().is_empty());
    }

    #[test]
    fn epoch_increases_on_changes() {
        let mut s = state();
        let e0 = s.view().epoch;
        s.suspect_locally(&addr(1));
        assert!(s.view().epoch > e0);
    }
}
