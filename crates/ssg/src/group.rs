//! The member- and client-side group objects, wiring the SWIM state
//! machine to Margo.
//!
//! "A group can be bootstrapped from PMIx, MPI, or simply a list of
//! initial addresses. Should the group change … the view will be updated
//! in all the service's processes" (§6). The cluster harness uses the
//! address-list bootstrap; joining and leaving are online operations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_util::SeededRng;

use crate::config::SwimConfig;
use crate::swim::{MemberSnapshot, MembershipEvent, SwimState, Update};
use crate::view::{GroupView, MemberState};

/// RPC names registered by a group member.
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// Ping arguments/reply: piggybacked updates in both directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingArgs {
    /// Sender.
    pub from: Address,
    /// Piggybacked updates.
    pub updates: Vec<Update>,
}

/// Ping reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingReply {
    /// Responder's piggybacked updates.
    pub updates: Vec<Update>,
}

/// Ping-req arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingReqArgs {
    /// Who is asking.
    pub from: Address,
    /// Who to probe on their behalf.
    pub target: Address,
    /// Piggybacked updates.
    pub updates: Vec<Update>,
}

/// Ping-req reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PingReqReply {
    /// Whether the target answered the relayed probe.
    pub ok: bool,
    /// Piggybacked updates.
    pub updates: Vec<Update>,
}

/// Join arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinArgs {
    /// The joining member.
    pub joiner: Address,
}

/// Join reply: the current membership snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinReply {
    /// Snapshot of alive members (including the responder).
    pub members: Vec<MemberSnapshot>,
}

/// Callback invoked on membership changes.
pub type MembershipCallback = Arc<dyn Fn(&MembershipEvent) + Send + Sync>;

struct GroupInner {
    margo: MargoRuntime,
    provider_id: u16,
    config: SwimConfig,
    state: Mutex<SwimState>,
    callbacks: Mutex<Vec<MembershipCallback>>,
    rng: Mutex<SeededRng>,
    stopped: AtomicBool,
}

impl GroupInner {
    fn fire_events(&self, events: Vec<MembershipEvent>) {
        if events.is_empty() {
            return;
        }
        let callbacks = self.callbacks.lock().clone();
        for event in &events {
            for callback in &callbacks {
                callback(event);
            }
        }
    }

    fn apply_updates(&self, updates: &[Update]) {
        let events = {
            let mut state = self.state.lock();
            for update in updates {
                state.apply_update(update);
            }
            state.drain_events()
        };
        self.fire_events(events);
    }

    /// One SWIM protocol period.
    fn protocol_round(self: &Arc<Self>) {
        // Tick suspicion timers.
        let (target, updates) = {
            let mut state = self.state.lock();
            state.tick();
            let mut rng = self.rng.lock();
            let target = state.next_ping_target(&mut rng);
            let updates = state.take_piggyback(6);
            (target, updates)
        };
        {
            let events = self.state.lock().drain_events();
            self.fire_events(events);
        }
        let Some(target) = target else { return };
        let self_addr = self.margo.address();

        // Direct probe.
        let args = PingArgs { from: self_addr.clone(), updates };
        let reply: Result<PingReply, MargoError> = self.margo.forward_timeout(
            &target,
            rpc::PING,
            self.provider_id,
            &args,
            self.config.ping_timeout(),
        );
        match reply {
            Ok(reply) => {
                self.apply_updates(&reply.updates);
                let events = {
                    let mut state = self.state.lock();
                    state.confirm_alive(&target);
                    state.drain_events()
                };
                self.fire_events(events);
            }
            Err(_) => {
                // Indirect probing through k relays.
                let relays = {
                    let state = self.state.lock();
                    let mut rng = self.rng.lock();
                    state.select_indirect(&mut rng, self.config.indirect_count, &target)
                };
                for relay in relays {
                    let args = PingReqArgs {
                        from: self_addr.clone(),
                        target: target.clone(),
                        updates: Vec::new(),
                    };
                    let reply: Result<PingReqReply, MargoError> = self.margo.forward_timeout(
                        &relay,
                        rpc::PING_REQ,
                        self.provider_id,
                        &args,
                        self.config.ping_timeout() * 2,
                    );
                    if let Ok(reply) = reply {
                        self.apply_updates(&reply.updates);
                        if reply.ok {
                            let events = {
                                let mut state = self.state.lock();
                                state.confirm_alive(&target);
                                state.drain_events()
                            };
                            self.fire_events(events);
                            return;
                        }
                    }
                }
                // Direct and indirect probes failed: suspect.
                let events = {
                    let mut state = self.state.lock();
                    state.suspect_locally(&target);
                    state.drain_events()
                };
                self.fire_events(events);
            }
        }
    }
}

/// A member of an SSG group.
pub struct SsgGroup {
    inner: Arc<GroupInner>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SsgGroup {
    /// Bootstraps a member from a list of initial addresses (every
    /// process of the initial group calls this with the same list).
    pub fn create(
        margo: &MargoRuntime,
        provider_id: u16,
        config: SwimConfig,
        initial: &[Address],
    ) -> Result<Arc<Self>, MargoError> {
        let snapshot: Vec<MemberSnapshot> = initial
            .iter()
            .map(|a| MemberSnapshot { address: a.clone(), incarnation: 0 })
            .collect();
        Self::with_snapshot(margo, provider_id, config, &snapshot, 0)
    }

    /// Joins an existing group through any current member.
    pub fn join(
        margo: &MargoRuntime,
        provider_id: u16,
        config: SwimConfig,
        seed: &Address,
    ) -> Result<Arc<Self>, MargoError> {
        let reply: JoinReply = margo.forward(
            seed,
            rpc::JOIN,
            provider_id,
            &JoinArgs { joiner: margo.address() },
        )?;
        // If the group saw an earlier incarnation of us die, outbid it.
        let own = reply
            .members
            .iter()
            .find(|m| m.address == margo.address())
            .map(|m| m.incarnation + 1)
            .unwrap_or(0);
        Self::with_snapshot(margo, provider_id, config, &reply.members, own)
    }

    fn with_snapshot(
        margo: &MargoRuntime,
        provider_id: u16,
        config: SwimConfig,
        snapshot: &[MemberSnapshot],
        incarnation: u64,
    ) -> Result<Arc<Self>, MargoError> {
        let mut state = SwimState::new(
            margo.address(),
            snapshot,
            config.piggyback_limit,
            config.suspicion_periods,
        );
        state.set_incarnation(incarnation);
        // Announce ourselves.
        let self_update = Update {
            subject: margo.address(),
            state: MemberState::Alive,
            incarnation,
        };
        state.apply_update(&self_update); // no-op locally, but queues nothing
        let inner = Arc::new(GroupInner {
            margo: margo.clone(),
            provider_id,
            config,
            state: Mutex::new(state),
            callbacks: Mutex::new(Vec::new()),
            rng: Mutex::new(SeededRng::new(config.seed).child(&margo.address().to_string())),
            stopped: AtomicBool::new(false),
        });
        // Seed the dissemination buffer with our own aliveness so pings
        // propagate the join.
        {
            let mut state = inner.state.lock();
            let update = Update {
                subject: margo.address(),
                state: MemberState::Alive,
                incarnation,
            };
            // enqueue via the public path: applying an update about self
            // does not enqueue, so push through take/apply trick:
            state.force_enqueue(update);
        }
        Self::register_rpcs(&inner)?;
        let group = Arc::new(Self { inner: Arc::clone(&inner), thread: Mutex::new(None) });
        // Protocol thread.
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name(format!("ssg-{}", margo.address()))
            .spawn(move || {
                while !thread_inner.stopped.load(Ordering::SeqCst) {
                    std::thread::sleep(thread_inner.config.period());
                    if thread_inner.stopped.load(Ordering::SeqCst) {
                        break;
                    }
                    thread_inner.protocol_round();
                }
            })
            .expect("spawn ssg thread");
        *group.thread.lock() = Some(handle);
        Ok(group)
    }

    fn register_rpcs(inner: &Arc<GroupInner>) -> Result<(), MargoError> {
        let margo = inner.margo.clone();
        let provider_id = inner.provider_id;

        let ping_inner = Arc::clone(inner);
        margo.register_typed(rpc::PING, provider_id, None, move |args: PingArgs, _| {
            ping_inner.apply_updates(&args.updates);
            // Seeing a ping from someone proves they are alive.
            let (updates, events) = {
                let mut state = ping_inner.state.lock();
                state.confirm_alive(&args.from);
                let updates = state.take_piggyback(6);
                let events = state.drain_events();
                (updates, events)
            };
            ping_inner.fire_events(events);
            Ok(PingReply { updates })
        })?;

        let req_inner = Arc::clone(inner);
        margo.register_typed(rpc::PING_REQ, provider_id, None, move |args: PingReqArgs, ctx| {
            req_inner.apply_updates(&args.updates);
            // Relay the probe with the short ping timeout — the relay's
            // handler must not block its ES behind a dead target.
            let probe = PingArgs { from: req_inner.margo.address(), updates: Vec::new() };
            let ok = req_inner
                .margo
                .forward_full::<_, PingReply>(
                    &args.target,
                    rpc::PING,
                    req_inner.provider_id,
                    &probe,
                    ctx.nested_context(),
                    req_inner.config.ping_timeout(),
                )
                .is_ok();
            let updates = req_inner.state.lock().take_piggyback(6);
            Ok(PingReqReply { ok, updates })
        })?;

        let view_inner = Arc::clone(inner);
        margo.register_typed(rpc::GET_VIEW, provider_id, None, move |_: (), _| {
            Ok(view_inner.state.lock().view())
        })?;

        let join_inner = Arc::clone(inner);
        margo.register_typed(rpc::JOIN, provider_id, None, move |args: JoinArgs, _| {
            let reply = {
                let state = join_inner.state.lock();
                JoinReply { members: state.snapshot() }
            };
            // Disseminate the joiner.
            let incarnation = reply
                .members
                .iter()
                .find(|m| m.address == args.joiner)
                .map(|m| m.incarnation + 1)
                .unwrap_or(0);
            join_inner.apply_updates(&[Update {
                subject: args.joiner,
                state: MemberState::Alive,
                incarnation,
            }]);
            Ok(reply)
        })?;
        Ok(())
    }

    /// The current view (self's perspective).
    pub fn view(&self) -> GroupView {
        self.inner.state.lock().view()
    }

    /// The view's membership hash (the Colza staleness check).
    pub fn view_hash(&self) -> u64 {
        self.view().hash()
    }

    /// Registers a membership-change callback.
    pub fn on_change(&self, callback: MembershipCallback) {
        self.inner.callbacks.lock().push(callback);
    }

    /// Gracefully leaves: announces our death to a few members and stops.
    pub fn leave(&self) {
        let (peers, incarnation) = {
            let state = self.inner.state.lock();
            (state.view().members, state.incarnation())
        };
        let update = Update {
            subject: self.inner.margo.address(),
            state: MemberState::Dead,
            incarnation,
        };
        let mut notified = 0;
        for peer in peers {
            if peer == self.inner.margo.address() {
                continue;
            }
            let args = PingArgs { from: self.inner.margo.address(), updates: vec![update.clone()] };
            let result: Result<PingReply, _> = self.inner.margo.forward_timeout(
                &peer,
                rpc::PING,
                self.inner.provider_id,
                &args,
                self.inner.config.ping_timeout(),
            );
            if result.is_ok() {
                notified += 1;
                if notified >= 3 {
                    break;
                }
            }
        }
        self.stop();
    }

    /// Stops the protocol thread and deregisters RPCs (without the
    /// farewell of [`SsgGroup::leave`] — peers will detect us via SWIM).
    pub fn stop(&self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
        for name in rpc::ALL {
            let _ = self.inner.margo.deregister(name, self.inner.provider_id);
        }
    }
}

impl Drop for SsgGroup {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Client-application view access: "an explicit function that the
/// application needs to call to query the current view of the group".
pub struct ViewObserver {
    margo: MargoRuntime,
    provider_id: u16,
}

impl ViewObserver {
    /// Creates an observer using `margo` as the client runtime.
    pub fn new(margo: &MargoRuntime, provider_id: u16) -> Self {
        Self { margo: margo.clone(), provider_id }
    }

    /// Fetches the current view from `member`.
    pub fn get_view(&self, member: &Address) -> Result<GroupView, MargoError> {
        self.margo.forward_timeout(
            member,
            rpc::GET_VIEW,
            self.provider_id,
            &(),
            Duration::from_secs(2),
        )
    }

    /// Fetches the view from the first responsive member of `candidates`.
    pub fn get_view_any(&self, candidates: &[Address]) -> Result<GroupView, MargoError> {
        let mut last_error = MargoError::Handler("no candidates".into());
        for member in candidates {
            match self.get_view(member) {
                Ok(view) => return Ok(view),
                Err(e) => last_error = e,
            }
        }
        Err(last_error)
    }
}
