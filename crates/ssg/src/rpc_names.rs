//! The SSG RPC surface: every wire-visible RPC name, in one place.
//!
//! The SWIM group (`group.rs`) both registers and calls these, so this
//! module is the single definition the registration and call sites share
//! — and `mochi-lint`'s contract checker (MOCHI006/007/008) resolves
//! these constants when it cross-checks register/forward pairs.

/// Direct probe carrying piggybacked updates.
pub const PING: &str = "ssg_ping";
/// Indirect probe request (SWIM's ping-req).
pub const PING_REQ: &str = "ssg_ping_req";
/// View fetch (for client applications).
pub const GET_VIEW: &str = "ssg_get_view";
/// Join: returns a membership snapshot.
pub const JOIN: &str = "ssg_join";

/// All names (deregistration).
pub const ALL: [&str; 4] = [PING, PING_REQ, GET_VIEW, JOIN];
