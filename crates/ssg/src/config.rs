//! SWIM protocol tuning.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Tuning parameters of the SWIM failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwimConfig {
    /// Protocol period: one direct ping per period (ms).
    pub period_ms: u64,
    /// Timeout for a direct ping before indirect probing (ms).
    pub ping_timeout_ms: u64,
    /// Number of members asked to ping indirectly (SWIM's `k`).
    pub indirect_count: usize,
    /// Periods a member stays suspected before being declared dead.
    pub suspicion_periods: u32,
    /// Maximum number of times one update is piggybacked before being
    /// dropped from the dissemination buffer.
    pub piggyback_limit: u32,
    /// RNG seed for peer selection (deterministic tests).
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        Self {
            period_ms: 100,
            ping_timeout_ms: 30,
            indirect_count: 2,
            suspicion_periods: 3,
            piggyback_limit: 8,
            seed: 0x55176,
        }
    }
}

impl SwimConfig {
    /// A fast configuration for tests (10 ms periods).
    pub fn fast() -> Self {
        Self { period_ms: 10, ping_timeout_ms: 5, suspicion_periods: 3, ..Default::default() }
    }

    /// Protocol period as a [`Duration`].
    pub fn period(&self) -> Duration {
        Duration::from_millis(self.period_ms)
    }

    /// Ping timeout as a [`Duration`].
    pub fn ping_timeout(&self) -> Duration {
        Duration::from_millis(self.ping_timeout_ms)
    }

    /// Worst-case detection latency bound implied by the parameters:
    /// one period to probe + suspicion window.
    pub fn detection_bound(&self) -> Duration {
        Duration::from_millis(self.period_ms * (2 + self.suspicion_periods as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = SwimConfig::default();
        assert!(config.ping_timeout_ms < config.period_ms);
        assert!(config.indirect_count >= 1);
        assert!(config.detection_bound() > config.period());
    }

    #[test]
    fn serde_round_trip() {
        let config = SwimConfig::fast();
        let json = serde_json::to_string(&config).unwrap();
        let back: SwimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
