//! Group views: epoch-numbered membership snapshots with a stable hash.

use serde::{Deserialize, Serialize};

use mochi_mercury::Address;
use mochi_util::crc64;

/// Liveness state of a member, as locally believed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberState {
    /// Answering pings (or vouched for by gossip).
    Alive,
    /// Missed direct and indirect probes; grace period running.
    Suspect,
    /// Declared failed (or left voluntarily).
    Dead,
}

/// A snapshot of the group as seen by one member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupView {
    /// Monotonically increasing local version; bumps on every membership
    /// change this member observes.
    pub epoch: u64,
    /// Live members (alive or suspect), sorted by address.
    pub members: Vec<Address>,
}

impl GroupView {
    /// Builds a view from unsorted members.
    pub fn new(epoch: u64, mut members: Vec<Address>) -> Self {
        members.sort();
        members.dedup();
        Self { epoch, members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `addr` is in the view.
    pub fn contains(&self, addr: &Address) -> bool {
        self.members.binary_search(addr).is_ok()
    }

    /// Stable content hash of the membership (independent of epoch).
    ///
    /// This is the hash Colza-style clients attach to their RPCs: "a
    /// mismatch between the hash sent by the client and the hash
    /// maintained by a provider informs the latter that the client's view
    /// of the group is outdated" (§6).
    pub fn hash(&self) -> u64 {
        let mut buffer = Vec::new();
        for member in &self.members {
            buffer.extend_from_slice(member.to_string().as_bytes());
            buffer.push(0);
        }
        crc64(&buffer)
    }

    /// Addresses present here but not in `other`.
    pub fn added_since(&self, other: &GroupView) -> Vec<Address> {
        self.members.iter().filter(|m| !other.contains(m)).cloned().collect()
    }

    /// Addresses present in `other` but not here.
    pub fn removed_since(&self, other: &GroupView) -> Vec<Address> {
        other.members.iter().filter(|m| !self.contains(m)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u32) -> Address {
        Address::tcp(format!("node{n}"), 1)
    }

    #[test]
    fn view_sorts_and_dedups() {
        let view = GroupView::new(1, vec![addr(3), addr(1), addr(3), addr(2)]);
        assert_eq!(view.len(), 3);
        assert!(view.members.windows(2).all(|w| w[0] < w[1]));
        assert!(view.contains(&addr(2)));
        assert!(!view.contains(&addr(9)));
    }

    #[test]
    fn hash_depends_on_membership_not_epoch_or_order() {
        let a = GroupView::new(1, vec![addr(1), addr(2)]);
        let b = GroupView::new(99, vec![addr(2), addr(1)]);
        let c = GroupView::new(1, vec![addr(1), addr(3)]);
        assert_eq!(a.hash(), b.hash());
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn diffs() {
        let old = GroupView::new(1, vec![addr(1), addr(2)]);
        let new = GroupView::new(2, vec![addr(2), addr(3)]);
        assert_eq!(new.added_since(&old), vec![addr(3)]);
        assert_eq!(new.removed_since(&old), vec![addr(1)]);
    }

    #[test]
    fn serde_round_trip() {
        let view = GroupView::new(7, vec![addr(1)]);
        let json = serde_json::to_string(&view).unwrap();
        let back: GroupView = serde_json::from_str(&json).unwrap();
        assert_eq!(back, view);
    }
}
