//! `mochi-ssg` — scalable service groups: dynamic membership and failure
//! detection (paper §6 Observation 7 and §7 Observation 12).
//!
//! SSG "maintains a dynamic view of a group of processes and allows this
//! view to be retrieved by client applications", with fault detection
//! "based on the SWIM gossip protocol" (Das et al., DSN'02; Snyder et
//! al., PMBS'14). This crate implements:
//!
//! * [`view::GroupView`] — an epoch-numbered, hashable membership view
//!   (the hash is the Colza trick: clients attach it to RPCs so providers
//!   can detect stale views),
//! * [`swim`] — the SWIM state machine: periodic random-member pings,
//!   k indirect ping-reqs on timeout, suspicion with incarnation-numbered
//!   refutation, and piggybacked dissemination of membership updates,
//! * [`group::SsgGroup`] — the member-side object: bootstrap from a list
//!   of addresses (one of the paper's three bootstrap methods), join,
//!   leave, observe, callbacks on membership changes,
//! * [`group::ViewObserver`] — the client-application side: fetch the
//!   current view from any member.
//!
//! SSG provides *eventual* consistency of the view, as the paper states;
//! the consistent-view alternative is `mochi-raft`.

pub mod config;
pub mod group;
pub mod rpc_names;
pub mod swim;
pub mod view;

pub use config::SwimConfig;
pub use group::{SsgGroup, ViewObserver};
pub use view::{GroupView, MemberState};
