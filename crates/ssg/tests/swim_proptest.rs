//! Property tests on the SWIM state machine: under arbitrary update and
//! tick sequences, the core invariants hold:
//!
//! * the view always contains self;
//! * a member reported Dead at incarnation i never reappears without a
//!   strictly higher Alive incarnation;
//! * ticks never resurrect anyone;
//! * the epoch is monotone;
//! * the piggyback buffer never replays an update more than its limit.

use proptest::prelude::*;

use mochi_mercury::Address;
use mochi_ssg::swim::{MemberSnapshot, SwimState, Update};
use mochi_ssg::MemberState;

fn addr(n: u8) -> Address {
    Address::tcp(format!("m{n}"), 1)
}

#[derive(Debug, Clone)]
enum Action {
    Update(u8, MemberState, u64),
    SuspectLocally(u8),
    ConfirmAlive(u8),
    Tick,
    TakePiggyback,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u8..6, prop_oneof![
                Just(MemberState::Alive),
                Just(MemberState::Suspect),
                Just(MemberState::Dead),
            ], 0u64..4)
            .prop_map(|(m, s, i)| Action::Update(m, s, i)),
        2 => (1u8..6).prop_map(Action::SuspectLocally),
        2 => (1u8..6).prop_map(Action::ConfirmAlive),
        2 => Just(Action::Tick),
        1 => Just(Action::TakePiggyback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn swim_invariants_hold(actions in proptest::collection::vec(action_strategy(), 0..80)) {
        let initial: Vec<MemberSnapshot> = (1..4)
            .map(|n| MemberSnapshot { address: addr(n), incarnation: 0 })
            .collect();
        let mut state = SwimState::new(addr(0), &initial, 4, 3);
        let mut last_epoch = state.view().epoch;
        // member -> highest incarnation at which we saw it dead
        let mut died_at: std::collections::HashMap<Address, u64> = Default::default();

        for action in actions {
            match action {
                Action::Update(m, s, i) => {
                    let subject = addr(m);
                    state.apply_update(&Update { subject: subject.clone(), state: s, incarnation: i });
                    if s == MemberState::Dead && state.state_of(&subject) == Some(MemberState::Dead) {
                        let entry = died_at.entry(subject).or_insert(0);
                        *entry = (*entry).max(i);
                    }
                }
                Action::SuspectLocally(m) => state.suspect_locally(&addr(m)),
                Action::ConfirmAlive(m) => state.confirm_alive(&addr(m)),
                Action::Tick => {
                    let before: Vec<Address> = state.view().members;
                    state.tick();
                    let after = state.view();
                    // Ticks only remove (expire suspects), never add.
                    for member in &after.members {
                        prop_assert!(before.contains(member), "tick resurrected {member}");
                    }
                    // Track deaths caused by expiry.
                    for member in &before {
                        if !after.contains(member) {
                            if let Some(i) = state.incarnation_of(member) {
                                let entry = died_at.entry(member.clone()).or_insert(0);
                                *entry = (*entry).max(i);
                            }
                        }
                    }
                }
                Action::TakePiggyback => {
                    let updates = state.take_piggyback(16);
                    prop_assert!(updates.len() <= 16);
                }
            }

            let view = state.view();
            // Self is always in the view.
            prop_assert!(view.contains(&addr(0)), "view lost self");
            // Epoch is monotone.
            prop_assert!(view.epoch >= last_epoch, "epoch went backwards");
            last_epoch = view.epoch;
            // No one dead at incarnation i is in the view unless they were
            // resurrected at a strictly higher alive incarnation.
            for (member, dead_inc) in &died_at {
                if view.contains(member) {
                    let current = state.incarnation_of(member).unwrap_or(0);
                    prop_assert!(
                        current > *dead_inc,
                        "{member} in view at incarnation {current} but died at {dead_inc}"
                    );
                }
            }
            // Events drain cleanly (no panics, bounded).
            let _ = state.drain_events();
        }
    }

    #[test]
    fn piggyback_send_budget_respected(limit in 1u32..6) {
        let mut state = SwimState::new(addr(0), &[], limit, 3);
        state.apply_update(&Update {
            subject: addr(1),
            state: MemberState::Alive,
            incarnation: 0,
        });
        let mut sends = 0;
        // One update queued; it may be handed out at most `limit` times.
        for _ in 0..limit + 3 {
            if !state.take_piggyback(8).is_empty() {
                sends += 1;
            }
        }
        prop_assert_eq!(sends, limit);
    }
}
