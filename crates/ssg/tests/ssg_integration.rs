//! Integration tests for SSG over the fabric: bootstrap, view
//! propagation, SWIM failure detection, join/leave, false-suspicion
//! refutation under lossy links, and client-side view observation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_ssg::swim::MembershipEvent;
use mochi_ssg::{SsgGroup, SwimConfig, ViewObserver};
use mochi_util::time::wait_until;

const SSG_PROVIDER: u16 = 42;

struct Member {
    margo: MargoRuntime,
    group: Arc<SsgGroup>,
}

fn bootstrap_group(fabric: &Fabric, n: usize) -> Vec<Member> {
    let addresses: Vec<Address> = (0..n).map(|i| Address::tcp(format!("m{i}"), 1)).collect();
    let runtimes: Vec<MargoRuntime> = addresses
        .iter()
        .map(|a| MargoRuntime::init_default(fabric, a.clone()).unwrap())
        .collect();
    runtimes
        .into_iter()
        .map(|margo| {
            let group =
                SsgGroup::create(&margo, SSG_PROVIDER, SwimConfig::fast(), &addresses).unwrap();
            Member { margo, group }
        })
        .collect()
}

fn everyone_sees(members: &[Member], expected: usize) -> bool {
    members.iter().all(|m| m.group.view().len() == expected)
}

#[test]
fn bootstrap_views_agree() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 5);
    assert!(everyone_sees(&members, 5));
    let hash = members[0].group.view_hash();
    assert!(members.iter().all(|m| m.group.view_hash() == hash));
    for m in &members {
        m.group.stop();
        m.margo.finalize();
    }
}

#[test]
fn crash_is_detected_and_views_converge() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 5);
    // Crash member 4 abruptly (no farewell).
    members[4].group.stop();
    members[4].margo.finalize();

    let survivors = &members[..4];
    assert!(
        wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
            survivors.iter().all(|m| m.group.view().len() == 4)
        }),
        "views: {:?}",
        survivors.iter().map(|m| m.group.view().len()).collect::<Vec<_>>()
    );
    let dead = Address::tcp("m4", 1);
    for m in survivors {
        assert!(!m.group.view().contains(&dead));
    }
    for m in survivors {
        m.group.stop();
        m.margo.finalize();
    }
}

#[test]
fn membership_callbacks_fire_on_death() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 4);
    let deaths = Arc::new(AtomicUsize::new(0));
    let deaths2 = Arc::clone(&deaths);
    members[0].group.on_change(Arc::new(move |event| {
        if matches!(event, MembershipEvent::Died(_)) {
            deaths2.fetch_add(1, Ordering::SeqCst);
        }
    }));
    members[3].group.stop();
    members[3].margo.finalize();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        deaths.load(Ordering::SeqCst) >= 1
    }));
    for m in &members[..3] {
        m.group.stop();
        m.margo.finalize();
    }
}

#[test]
fn join_propagates_to_existing_members() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 3);
    // A new process joins through member 0.
    let new_margo =
        MargoRuntime::init_default(&fabric, Address::tcp("newcomer", 1)).unwrap();
    let new_group =
        SsgGroup::join(&new_margo, SSG_PROVIDER, SwimConfig::fast(), &Address::tcp("m0", 1))
            .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
            members.iter().all(|m| m.group.view().len() == 4) && new_group.view().len() == 4
        }),
        "views: existing={:?} new={}",
        members.iter().map(|m| m.group.view().len()).collect::<Vec<_>>(),
        new_group.view().len()
    );
    new_group.stop();
    new_margo.finalize();
    for m in &members {
        m.group.stop();
        m.margo.finalize();
    }
}

#[test]
fn graceful_leave_disseminates_quickly() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 4);
    members[3].group.leave();
    members[3].margo.finalize();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        members[..3].iter().all(|m| m.group.view().len() == 3)
    }));
    for m in &members[..3] {
        m.group.stop();
        m.margo.finalize();
    }
}

#[test]
fn view_observer_serves_client_applications() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 3);
    let client = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let observer = ViewObserver::new(&client, SSG_PROVIDER);
    let view = observer.get_view(&Address::tcp("m1", 1)).unwrap();
    assert_eq!(view.len(), 3);
    assert_eq!(view.hash(), members[0].group.view_hash());
    // get_view_any skips dead members.
    members[0].group.stop();
    members[0].margo.finalize();
    let view = observer
        .get_view_any(&[Address::tcp("m0", 1), Address::tcp("m1", 1)])
        .unwrap();
    assert!(view.len() >= 2);
    for m in &members[1..] {
        m.group.stop();
        m.margo.finalize();
    }
    client.finalize();
}

#[test]
fn partition_and_heal_refutes_suspicion() {
    let fabric = Fabric::new();
    let members = bootstrap_group(&fabric, 3);
    // Partition m2 away briefly — short enough that suspicion should not
    // have expired everywhere, long enough to trigger suspicion.
    fabric.faults().set_partition(&[
        vec!["m0".into(), "m1".into()],
        vec!["m2".into()],
    ]);
    std::thread::sleep(Duration::from_millis(40)); // ~4 fast periods
    fabric.faults().heal_partition();
    // After healing, all views must converge back to 3 members (either
    // the suspicion was refuted, or the member died and rejoins are not
    // automatic — with suspicion_periods=3 at 10ms periods and a 40ms
    // partition, refutation must win at least sometimes; assert
    // convergence to full membership within the detection bound).
    let converged = wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        everyone_sees(&members, 3)
    });
    // If the partition lasted past the suspicion window the member may
    // have been declared dead; accept either full recovery or a
    // consistent 2-member surviving view plus m2 seeing itself.
    if !converged {
        let survivor_views: Vec<usize> =
            members[..2].iter().map(|m| m.group.view().len()).collect();
        assert!(
            survivor_views.iter().all(|&l| l == 2),
            "inconsistent views after heal: {survivor_views:?}"
        );
    }
    for m in &members {
        m.group.stop();
        m.margo.finalize();
    }
}
