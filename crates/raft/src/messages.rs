//! Raft RPC names and argument types.

use serde::{Deserialize, Serialize};

use mochi_mercury::Address;

use crate::types::{LogEntry, LogIndex, Term};

/// RPC names registered by a Raft node.
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// `RequestVote` arguments (§5.2 of the Raft paper, plus the PreVote
/// extension of Ongaro's thesis §9.6 — without it, a restarted node with
/// a stale log can livelock the cluster by endlessly bumping terms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestVoteArgs {
    /// Candidate's (proposed) term.
    pub term: Term,
    /// Candidate's address.
    pub candidate: Address,
    /// Index of the candidate's last log entry.
    pub last_log_index: LogIndex,
    /// Term of the candidate's last log entry.
    pub last_log_term: Term,
    /// PreVote probe: a grant promises nothing and changes no state.
    pub pre_vote: bool,
}

/// `RequestVote` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestVoteReply {
    /// Responder's current term.
    pub term: Term,
    /// Whether the vote was granted.
    pub vote_granted: bool,
}

/// `AppendEntries` arguments (§5.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppendEntriesArgs {
    /// Leader's term.
    pub term: Term,
    /// Leader's address (for client redirection).
    pub leader: Address,
    /// Index of the entry preceding the new ones.
    pub prev_log_index: LogIndex,
    /// Term of that entry.
    pub prev_log_term: Term,
    /// New entries (empty for heartbeats).
    pub entries: Vec<LogEntry>,
    /// Leader's commit index.
    pub leader_commit: LogIndex,
}

/// `AppendEntries` reply, with the conflict hint optimization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppendEntriesReply {
    /// Responder's current term.
    pub term: Term,
    /// Whether the entries were appended.
    pub success: bool,
    /// On failure, an index the leader should retry from (first index of
    /// the conflicting term, or just past the follower's log end).
    pub conflict_index: LogIndex,
    /// On success, the index of the last entry the follower now holds
    /// matching the leader (for match-index advancement).
    pub match_index: LogIndex,
}

/// `InstallSnapshot` arguments (§7), sent whole — our snapshots are small.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstallSnapshotArgs {
    /// Leader's term.
    pub term: Term,
    /// Leader's address.
    pub leader: Address,
    /// Last index covered by the snapshot.
    pub last_included_index: LogIndex,
    /// Term of that entry.
    pub last_included_term: Term,
    /// Membership at the snapshot point.
    pub membership: Vec<Address>,
    /// Serialized state machine.
    pub data: Vec<u8>,
}

/// `InstallSnapshot` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstallSnapshotReply {
    /// Responder's current term.
    pub term: Term,
}

/// Client submission arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitArgs {
    /// Opaque application command.
    pub command: Vec<u8>,
}

/// Client submission reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SubmitReply {
    /// Committed and applied; the state machine's response.
    Applied(Vec<u8>),
    /// This node is not the leader; try the hinted address.
    Redirect(Option<Address>),
    /// Leadership was lost (or timed out) before commitment.
    Failed(String),
}

/// Node status (introspection / tests / benches).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusReply {
    /// Current term.
    pub term: Term,
    /// Role name (`"Leader"`, `"Follower"`, `"Candidate"`).
    pub role: String,
    /// Known leader, if any.
    pub leader: Option<Address>,
    /// Last log index.
    pub last_log_index: LogIndex,
    /// Commit index.
    pub commit_index: LogIndex,
    /// Applied index.
    pub last_applied: LogIndex,
    /// Current membership.
    pub membership: Vec<Address>,
}

/// Membership-change arguments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MembershipArgs {
    /// The server being added or removed.
    pub server: Address,
}
