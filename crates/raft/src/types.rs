//! Core Raft types.

use serde::{Deserialize, Serialize};

use mochi_mercury::Address;

/// A Raft term.
pub type Term = u64;
/// A position in the replicated log (1-based; 0 = "nothing").
pub type LogIndex = u64;

/// Role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Accepting entries from a leader.
    Follower,
    /// Campaigning for leadership.
    Candidate,
    /// Replicating entries to followers.
    Leader,
}

/// What a log entry carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaftCommand {
    /// Barrier appended by a fresh leader to commit entries from earlier
    /// terms (§8 of the Raft paper: a leader may only count replicas for
    /// entries of its own term).
    Noop,
    /// Application command, applied to the state machine.
    App(Vec<u8>),
    /// Cluster membership change: the full new member list.
    Config(Vec<Address>),
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Term the entry was created in.
    pub term: Term,
    /// Its index.
    pub index: LogIndex,
    /// Payload.
    pub command: RaftCommand,
}

/// The replicated state machine. Commands are opaque bytes — Raft does
/// not know what they mean (the paper's composability requirement).
pub trait StateMachine: Send {
    /// Applies a committed command, returning the response for the client
    /// that submitted it.
    fn apply(&mut self, command: &[u8]) -> Vec<u8>;

    /// Serializes the full state for snapshotting.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state from a snapshot.
    fn restore(&mut self, snapshot: &[u8]);
}

/// A trivial state machine that appends commands to a vector — used by
/// tests to check linearized order.
#[derive(Debug, Default)]
pub struct LogMachine {
    /// Applied commands, in order.
    pub applied: Vec<Vec<u8>>,
}

impl StateMachine for LogMachine {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        self.applied.push(command.to_vec());
        (self.applied.len() as u64).to_le_bytes().to_vec()
    }

    fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(&self.applied).expect("serializes")
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.applied = serde_json::from_slice(snapshot).unwrap_or_default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_machine_applies_and_snapshots() {
        let mut sm = LogMachine::default();
        sm.apply(b"a");
        sm.apply(b"b");
        let snap = sm.snapshot();
        let mut sm2 = LogMachine::default();
        sm2.restore(&snap);
        assert_eq!(sm2.applied, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn entries_serialize() {
        let entry = LogEntry {
            term: 3,
            index: 7,
            command: RaftCommand::Config(vec![Address::tcp("n1", 1)]),
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: LogEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }
}
