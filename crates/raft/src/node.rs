//! The Raft node: election, replication, commitment, snapshots,
//! membership changes.
//!
//! Threading model: one *ticker* thread drives election timeouts and
//! snapshot policy; as leader, one *replicator* thread per peer pushes
//! `AppendEntries` (or `InstallSnapshot` for laggards). All shared state
//! sits behind a single mutex (the private `Core` struct); RPCs are sent
//! outside it.
//! Client submissions block in their handler ULT until the entry commits,
//! so the node registers its RPCs in a dedicated `__raft__` pool with
//! several execution streams to keep a few submissions in flight.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use serde::{Deserialize, Serialize};

use mochi_argobots::pool::Notifier;
use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;
use mochi_util::ordered_lock::{rank, OrderedMutex};
use mochi_util::SeededRng;

use crate::messages::{rpc, *};
use crate::storage::{Meta, RaftStorage, SnapshotRecord};
use crate::types::{LogEntry, LogIndex, RaftCommand, Role, StateMachine, Term};

/// Tuning of a Raft node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaftConfig {
    /// Election timeout lower bound (ms).
    pub election_timeout_min_ms: u64,
    /// Election timeout upper bound (ms).
    pub election_timeout_max_ms: u64,
    /// Heartbeat interval (ms).
    pub heartbeat_ms: u64,
    /// Timeout of individual Raft RPCs (ms).
    pub rpc_timeout_ms: u64,
    /// Take a snapshot when the log exceeds this many entries.
    pub snapshot_threshold: u64,
    /// How long a client submission may wait for commitment (ms).
    pub submit_timeout_ms: u64,
    /// RNG seed (timeout randomization).
    pub seed: u64,
}

impl Default for RaftConfig {
    fn default() -> Self {
        Self {
            election_timeout_min_ms: 150,
            election_timeout_max_ms: 300,
            heartbeat_ms: 30,
            rpc_timeout_ms: 50,
            snapshot_threshold: 1024,
            submit_timeout_ms: 2000,
            seed: 0x4a57,
        }
    }
}

impl RaftConfig {
    /// Faster timeouts for tests on the instant fabric.
    pub fn fast() -> Self {
        Self {
            election_timeout_min_ms: 50,
            election_timeout_max_ms: 100,
            heartbeat_ms: 10,
            rpc_timeout_ms: 20,
            submit_timeout_ms: 2000,
            ..Default::default()
        }
    }
}

type Waiter = Sender<Result<Vec<u8>, String>>;

struct Core {
    role: Role,
    meta: Meta,
    /// Entries after the snapshot; entry `log[i]` has index
    /// `snap_index + 1 + i`.
    log: Vec<LogEntry>,
    snap_index: LogIndex,
    snap_term: Term,
    snap_membership: Vec<Address>,
    commit_index: LogIndex,
    last_applied: LogIndex,
    membership: Vec<Address>,
    leader_hint: Option<Address>,
    last_heartbeat: Instant,
    election_timeout: Duration,
    next_index: HashMap<Address, LogIndex>,
    match_index: HashMap<Address, LogIndex>,
    waiters: HashMap<LogIndex, Waiter>,
    sm: Box<dyn StateMachine>,
}

impl Core {
    fn last_log_index(&self) -> LogIndex {
        self.snap_index + self.log.len() as u64
    }

    fn last_log_term(&self) -> Term {
        self.log.last().map(|e| e.term).unwrap_or(self.snap_term)
    }

    /// Term of the entry at `index`; `None` if compacted away or absent.
    fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == 0 {
            return Some(0);
        }
        if index == self.snap_index {
            return Some(self.snap_term);
        }
        if index < self.snap_index {
            return None;
        }
        self.log.get((index - self.snap_index - 1) as usize).map(|e| e.term)
    }

    fn entry_at(&self, index: LogIndex) -> Option<&LogEntry> {
        if index <= self.snap_index {
            return None;
        }
        self.log.get((index - self.snap_index - 1) as usize)
    }

    /// Entries from `from` (inclusive) up to a batch limit.
    fn entries_from(&self, from: LogIndex, max: usize) -> Vec<LogEntry> {
        if from <= self.snap_index {
            return Vec::new();
        }
        let start = (from - self.snap_index - 1) as usize;
        self.log.iter().skip(start).take(max).cloned().collect()
    }

    /// Effective membership: latest Config entry in the log, else the
    /// snapshot's.
    fn recompute_membership(&mut self) {
        let from_log = self
            .log
            .iter()
            .rev()
            .find_map(|e| match &e.command {
                RaftCommand::Config(list) => Some(list.clone()),
                _ => None,
            });
        self.membership = from_log.unwrap_or_else(|| self.snap_membership.clone());
    }

    fn quorum(&self) -> usize {
        self.membership.len() / 2 + 1
    }

    fn fail_all_waiters(&mut self, reason: &str) {
        for (_, waiter) in self.waiters.drain() {
            let _ = waiter.send(Err(reason.to_string()));
        }
    }
}

struct NodeInner {
    margo: MargoRuntime,
    provider_id: u16,
    config: RaftConfig,
    storage: RaftStorage,
    core: OrderedMutex<Core>,
    /// Wakes replicators when new entries arrive or leadership changes.
    signal: Notifier,
    stopped: AtomicBool,
    threads: OrderedMutex<Vec<std::thread::JoinHandle<()>>>,
    replicators: OrderedMutex<std::collections::HashSet<Address>>,
    rng: OrderedMutex<SeededRng>,
}

/// A running Raft node.
#[derive(Clone)]
pub struct RaftNode {
    inner: Arc<NodeInner>,
}

/// The pool Raft registers its handlers in (created on demand with a few
/// ESs so blocking submissions don't serialize the whole protocol).
const RAFT_POOL: &str = "__raft__";
const RAFT_POOL_ES: usize = 4;
/// Max entries per AppendEntries.
const BATCH: usize = 64;

impl RaftNode {
    /// Starts a Raft node. `peers` is the full initial membership
    /// (including this node); every node of a fresh cluster must start
    /// with the same list. If durable state exists in `data_dir`, it wins
    /// over `peers` (a restart).
    pub fn start(
        margo: &MargoRuntime,
        provider_id: u16,
        peers: &[Address],
        sm: Box<dyn StateMachine>,
        data_dir: impl Into<std::path::PathBuf>,
        config: RaftConfig,
    ) -> Result<Self, MargoError> {
        let storage = RaftStorage::open(data_dir)
            .map_err(|e| MargoError::Handler(format!("raft storage: {e}")))?;
        let meta = storage.load_meta();
        let snapshot = storage.load_snapshot();
        let log = storage.load_log();
        let mut core = Core {
            role: Role::Follower,
            meta,
            log,
            snap_index: 0,
            snap_term: 0,
            snap_membership: peers.to_vec(),
            commit_index: 0,
            last_applied: 0,
            membership: peers.to_vec(),
            leader_hint: None,
            last_heartbeat: Instant::now(),
            election_timeout: Duration::from_millis(config.election_timeout_max_ms),
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            waiters: HashMap::new(),
            sm,
        };
        if let Some(snapshot) = snapshot {
            core.sm.restore(&snapshot.data);
            core.snap_index = snapshot.last_included_index;
            core.snap_term = snapshot.last_included_term;
            core.snap_membership = snapshot.membership;
            core.commit_index = core.snap_index;
            core.last_applied = core.snap_index;
            // Drop log entries covered by the snapshot (the log file may
            // predate it).
            core.log.retain(|e| e.index > snapshot.last_included_index);
        }
        core.recompute_membership();

        // Dedicated pool for the (blocking) handlers.
        if margo.find_pool_by_name(RAFT_POOL).is_none() {
            margo.add_pool_from_json(&format!(r#"{{"name": "{RAFT_POOL}"}}"#))?;
            for i in 0..RAFT_POOL_ES {
                margo.add_xstream_from_json(&format!(
                    r#"{{"name": "{RAFT_POOL}-es{i}", "scheduler": {{"pools": ["{RAFT_POOL}"]}}}}"#
                ))?;
            }
        }

        let inner = Arc::new(NodeInner {
            margo: margo.clone(),
            provider_id,
            config,
            storage,
            core: OrderedMutex::new(rank::RAFT_CORE, "raft.core", core),
            signal: Notifier::new(),
            stopped: AtomicBool::new(false),
            threads: OrderedMutex::new(rank::RAFT_THREADS, "raft.threads", Vec::new()),
            replicators: OrderedMutex::new(
                rank::RAFT_REPLICATORS,
                "raft.replicators",
                std::collections::HashSet::new(),
            ),
            rng: OrderedMutex::new(
                rank::RAFT_RNG,
                "raft.rng",
                SeededRng::new(config.seed).child(&margo.address().to_string()),
            ),
        });
        let node = Self { inner };
        node.randomize_timeout();
        node.register_rpcs()?;
        node.spawn_ticker()?;
        Ok(node)
    }

    /// This node's address.
    pub fn address(&self) -> Address {
        self.inner.margo.address()
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.inner.core.lock().role
    }

    /// Whether this node currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role() == Role::Leader
    }

    /// Current status snapshot.
    pub fn status(&self) -> StatusReply {
        let core = self.inner.core.lock();
        StatusReply {
            term: core.meta.term,
            role: format!("{:?}", core.role),
            leader: core.leader_hint.clone(),
            last_log_index: core.last_log_index(),
            commit_index: core.commit_index,
            last_applied: core.last_applied,
            membership: core.membership.clone(),
        }
    }

    fn randomize_timeout(&self) {
        // Draw the value first and release `rng` before touching `core`:
        // `rng` is a leaf (rank above `core`), so holding it across the
        // core acquisition would invert the lock hierarchy.
        let ms = {
            let mut rng = self.inner.rng.lock();
            rng.range_u64(
                self.inner.config.election_timeout_min_ms,
                self.inner.config.election_timeout_max_ms + 1,
            )
        };
        self.inner.core.lock().election_timeout = Duration::from_millis(ms);
    }

    // ------------------------------------------------------------------
    // Role transitions (called with the core lock held)
    // ------------------------------------------------------------------

    fn become_follower(inner: &Arc<NodeInner>, core: &mut Core, term: Term) {
        let was_leader = core.role == Role::Leader;
        core.role = Role::Follower;
        if term > core.meta.term {
            core.meta.term = term;
            core.meta.voted_for = None;
            let _ = inner.storage.save_meta(&core.meta);
        }
        if was_leader {
            core.fail_all_waiters("lost leadership");
        }
        // Note: the election timer is NOT reset here — only genuine
        // leader contact (AppendEntries/InstallSnapshot) or granting a
        // vote restarts it, which is what keeps a deposed node from
        // being repeatedly silenced by stray higher terms.
    }

    fn become_leader(inner: &Arc<NodeInner>, core: &mut Core) {
        core.role = Role::Leader;
        core.leader_hint = Some(inner.margo.address());
        let next = core.last_log_index() + 1;
        core.next_index.clear();
        core.match_index.clear();
        for peer in core.membership.clone() {
            if peer != inner.margo.address() {
                core.next_index.insert(peer.clone(), next);
                core.match_index.insert(peer, 0);
            }
        }
        // Barrier entry so earlier-term entries can commit (§5.4.2).
        let entry = LogEntry {
            term: core.meta.term,
            index: core.last_log_index() + 1,
            command: RaftCommand::Noop,
        };
        let _ = inner.storage.append_entries(std::slice::from_ref(&entry));
        core.log.push(entry);
    }

    // ------------------------------------------------------------------
    // Commit + apply (called with the core lock held)
    // ------------------------------------------------------------------

    fn apply_committed(inner: &Arc<NodeInner>, core: &mut Core) {
        while core.last_applied < core.commit_index {
            let index = core.last_applied + 1;
            let Some(entry) = core.entry_at(index).cloned() else {
                break; // compacted: snapshot already covers it
            };
            let result = match &entry.command {
                RaftCommand::App(command) => core.sm.apply(command),
                RaftCommand::Noop => Vec::new(),
                RaftCommand::Config(list) => {
                    // Committed config: if we were removed, step down.
                    if !list.contains(&inner.margo.address()) && core.role == Role::Leader {
                        core.role = Role::Follower;
                        core.fail_all_waiters("removed from cluster");
                    }
                    Vec::new()
                }
            };
            core.last_applied = index;
            if let Some(waiter) = core.waiters.remove(&index) {
                let _ = waiter.send(Ok(result));
            }
        }
    }

    fn advance_commit(inner: &Arc<NodeInner>, core: &mut Core) {
        if core.role != Role::Leader {
            return;
        }
        let self_addr = inner.margo.address();
        let mut matches: Vec<LogIndex> = core
            .membership
            .iter()
            .filter(|p| **p != self_addr)
            .map(|p| core.match_index.get(p).copied().unwrap_or(0))
            .collect();
        if core.membership.contains(&self_addr) {
            matches.push(core.last_log_index());
        }
        matches.sort_unstable_by(|a, b| b.cmp(a));
        let quorum = core.quorum();
        if matches.len() < quorum {
            return;
        }
        let candidate = matches[quorum - 1];
        if candidate > core.commit_index && core.term_at(candidate) == Some(core.meta.term) {
            core.commit_index = candidate;
            Self::apply_committed(inner, core);
        }
    }

    // ------------------------------------------------------------------
    // Ticker: elections + snapshot policy + replicator management
    // ------------------------------------------------------------------

    fn spawn_ticker(&self) -> Result<(), MargoError> {
        let inner = Arc::clone(&self.inner);
        let node = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("raft-tick-{}", self.address()))
            .spawn(move || {
                while !inner.stopped.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                    node.tick();
                }
            })
            .map_err(|e| MargoError::Spawn(format!("raft ticker: {e}")))?;
        self.inner.threads.lock().push(handle);
        Ok(())
    }

    fn tick(&self) {
        let inner = &self.inner;
        let election = {
            let mut core = inner.core.lock();
            // Snapshot policy.
            if core.log.len() as u64 > inner.config.snapshot_threshold
                && core.last_applied > core.snap_index
            {
                Self::take_snapshot(inner, &mut core);
            }
            match core.role {
                Role::Leader => {
                    drop(core);
                    self.ensure_replicators();
                    None
                }
                Role::Follower | Role::Candidate => {
                    if core.last_heartbeat.elapsed() >= core.election_timeout
                        && core.membership.contains(&inner.margo.address())
                    {
                        Some(Self::prepare_election(inner, &mut core))
                    } else {
                        None
                    }
                }
            }
        };
        if let Some((term, args, peers)) = election {
            self.randomize_timeout();
            self.run_election(term, args, peers);
        }
    }

    fn take_snapshot(inner: &Arc<NodeInner>, core: &mut Core) {
        let at = core.last_applied;
        let Some(term) = core.term_at(at) else { return };
        let record = SnapshotRecord {
            last_included_index: at,
            last_included_term: term,
            membership: core.membership.clone(),
            data: core.sm.snapshot(),
        };
        if inner.storage.save_snapshot(&record).is_err() {
            return;
        }
        core.log.retain(|e| e.index > at);
        core.snap_index = at;
        core.snap_term = term;
        core.snap_membership = record.membership;
        let _ = inner.storage.rewrite_log(&core.log);
    }

    fn prepare_election(
        inner: &Arc<NodeInner>,
        core: &mut Core,
    ) -> (Term, RequestVoteArgs, Vec<Address>) {
        // Phase 1 (PreVote) changes no durable state: we propose term+1
        // and only bump the real term if a quorum would elect us.
        core.last_heartbeat = Instant::now(); // restart our own timer
        let proposed = core.meta.term + 1;
        let args = RequestVoteArgs {
            term: proposed,
            candidate: inner.margo.address(),
            last_log_index: core.last_log_index(),
            last_log_term: core.last_log_term(),
            pre_vote: true,
        };
        let peers: Vec<Address> = core
            .membership
            .iter()
            .filter(|p| **p != inner.margo.address())
            .cloned()
            .collect();
        (proposed, args, peers)
    }

    /// Sends `args` to all peers in parallel; returns whether a quorum
    /// (counting our own vote) granted. Steps down and returns false if
    /// any reply carries a higher term (real votes only).
    fn collect_votes(inner: &Arc<NodeInner>, args: &RequestVoteArgs, peers: &[Address]) -> bool {
        let quorum = inner.core.lock().quorum();
        let mut granted = 1usize; // self
        if granted >= quorum {
            return true;
        }
        let (tx, rx) = bounded::<RequestVoteReply>(peers.len().max(1));
        for peer in peers {
            let inner = Arc::clone(inner);
            let args = args.clone();
            let peer = peer.clone();
            let tx = tx.clone();
            std::thread::Builder::new()
                .name("raft-vote".into())
                .spawn(move || {
                    let reply: Result<RequestVoteReply, _> = inner.margo.forward_timeout(
                        &peer,
                        rpc::REQUEST_VOTE,
                        inner.provider_id,
                        &args,
                        Duration::from_millis(inner.config.rpc_timeout_ms),
                    );
                    if let Ok(reply) = reply {
                        if tx.send(reply).is_err() {
                            // The collector reached quorum (or timed
                            // out) and dropped the receiver; nothing is
                            // owed to a concluded election.
                            return;
                        }
                    }
                })
                .expect("spawn vote thread");
        }
        drop(tx);
        let deadline =
            Instant::now() + Duration::from_millis(inner.config.rpc_timeout_ms * 2);
        let mut received = 0usize;
        while granted < quorum && received < peers.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(reply) => {
                    received += 1;
                    if !args.pre_vote && reply.term > args.term {
                        let mut core = inner.core.lock();
                        if reply.term > core.meta.term {
                            Self::become_follower(inner, &mut core, reply.term);
                        }
                        return false;
                    }
                    if reply.vote_granted {
                        granted += 1;
                    }
                }
                Err(_) => break,
            }
        }
        granted >= quorum
    }

    fn run_election(&self, proposed: Term, prevote_args: RequestVoteArgs, peers: Vec<Address>) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name("raft-election".into())
            .spawn(move || {
                // Phase 1: PreVote — costs nothing if we cannot win.
                if !Self::collect_votes(&inner, &prevote_args, &peers) {
                    return;
                }
                // Phase 2: real election at the proposed term.
                let real_args = {
                    let mut core = inner.core.lock();
                    if core.meta.term >= proposed || core.role == Role::Leader {
                        return; // the world moved on during the prevote
                    }
                    core.role = Role::Candidate;
                    core.meta.term = proposed;
                    core.meta.voted_for = Some(inner.margo.address());
                    if inner.storage.save_meta(&core.meta).is_err() {
                        // A vote we cannot persist is a vote we must not
                        // cast: after a restart this node could vote
                        // again in the same term and elect two leaders.
                        // Stand down; the in-memory vote keeps us from
                        // granting anyone else this term meanwhile.
                        core.role = Role::Follower;
                        return;
                    }
                    core.last_heartbeat = Instant::now();
                    RequestVoteArgs {
                        term: proposed,
                        candidate: inner.margo.address(),
                        last_log_index: core.last_log_index(),
                        last_log_term: core.last_log_term(),
                        pre_vote: false,
                    }
                };
                if !Self::collect_votes(&inner, &real_args, &peers) {
                    return;
                }
                let mut core = inner.core.lock();
                if core.role == Role::Candidate && core.meta.term == proposed {
                    Self::become_leader(&inner, &mut core);
                    drop(core);
                    inner.signal.notify_all();
                }
            })
            .expect("spawn election thread");
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    fn ensure_replicators(&self) {
        let peers: Vec<Address> = {
            let core = self.inner.core.lock();
            core.membership
                .iter()
                .filter(|p| **p != self.inner.margo.address())
                .cloned()
                .collect()
        };
        let mut replicators = self.inner.replicators.lock();
        for peer in peers {
            if replicators.insert(peer.clone()) {
                let inner = Arc::clone(&self.inner);
                let handle = std::thread::Builder::new()
                    .name(format!("raft-repl-{peer}"))
                    .spawn(move || Self::replicator_loop(inner, peer))
                    .expect("spawn replicator");
                self.inner.threads.lock().push(handle);
            }
        }
    }

    fn replicator_loop(inner: Arc<NodeInner>, peer: Address) {
        let heartbeat = Duration::from_millis(inner.config.heartbeat_ms);
        let rpc_timeout = Duration::from_millis(inner.config.rpc_timeout_ms);
        let mut last_send = Instant::now() - heartbeat;
        while !inner.stopped.load(Ordering::SeqCst) {
            let generation = inner.signal.generation();
            enum Work {
                Idle,
                Append(AppendEntriesArgs),
                Snapshot(InstallSnapshotArgs),
            }
            let work = {
                let core = inner.core.lock();
                if core.role != Role::Leader || !core.membership.contains(&peer) {
                    Work::Idle
                } else {
                    let next = core.next_index.get(&peer).copied().unwrap_or(1);
                    if next <= core.snap_index {
                        // Ship the *persisted* snapshot: its data matches
                        // snap_index exactly. A live state-machine dump
                        // would include later entries, which the follower
                        // would then re-apply on top (double application).
                        let term = core.meta.term;
                        drop(core);
                        match inner.storage.load_snapshot() {
                            Some(record) => Work::Snapshot(InstallSnapshotArgs {
                                term,
                                leader: inner.margo.address(),
                                last_included_index: record.last_included_index,
                                last_included_term: record.last_included_term,
                                membership: record.membership,
                                data: record.data,
                            }),
                            None => Work::Idle, // racing with compaction; retry
                        }
                    } else {
                        let entries = core.entries_from(next, BATCH);
                        let need_heartbeat = last_send.elapsed() >= heartbeat;
                        if entries.is_empty() && !need_heartbeat {
                            Work::Idle
                        } else {
                            let prev = next - 1;
                            Work::Append(AppendEntriesArgs {
                                term: core.meta.term,
                                leader: inner.margo.address(),
                                prev_log_index: prev,
                                prev_log_term: core.term_at(prev).unwrap_or(0),
                                entries,
                                leader_commit: core.commit_index,
                            })
                        }
                    }
                }
            };
            match work {
                Work::Idle => {
                    inner.signal.wait_if_unchanged(generation, heartbeat);
                }
                Work::Append(args) => {
                    last_send = Instant::now();
                    let sent = args.prev_log_index + args.entries.len() as u64;
                    let had_entries = !args.entries.is_empty();
                    let reply: Result<AppendEntriesReply, _> = inner.margo.forward_timeout(
                        &peer,
                        rpc::APPEND_ENTRIES,
                        inner.provider_id,
                        &args,
                        rpc_timeout,
                    );
                    match reply {
                        Ok(reply) => {
                            let mut core = inner.core.lock();
                            if reply.term > core.meta.term {
                                Self::become_follower(&inner, &mut core, reply.term);
                                continue;
                            }
                            if core.role != Role::Leader || core.meta.term != args.term {
                                continue;
                            }
                            if reply.success {
                                core.match_index.insert(peer.clone(), reply.match_index);
                                core.next_index.insert(peer.clone(), reply.match_index + 1);
                                Self::advance_commit(&inner, &mut core);
                                // More to send? Loop immediately.
                                if core.last_log_index() > sent {
                                    continue;
                                }
                            } else {
                                let next = reply.conflict_index.max(1);
                                core.next_index.insert(peer.clone(), next);
                                continue; // retry immediately
                            }
                        }
                        Err(_) => {
                            // Peer unreachable: pace retries by heartbeat.
                            inner.signal.wait_if_unchanged(generation, heartbeat);
                        }
                    }
                    if !had_entries {
                        inner.signal.wait_if_unchanged(inner.signal.generation(), heartbeat);
                    }
                }
                Work::Snapshot(args) => {
                    last_send = Instant::now();
                    let last = args.last_included_index;
                    let reply: Result<InstallSnapshotReply, _> = inner.margo.forward_timeout(
                        &peer,
                        rpc::INSTALL_SNAPSHOT,
                        inner.provider_id,
                        &args,
                        rpc_timeout * 4,
                    );
                    if let Ok(reply) = reply {
                        let mut core = inner.core.lock();
                        if reply.term > core.meta.term {
                            Self::become_follower(&inner, &mut core, reply.term);
                        } else if core.role == Role::Leader {
                            core.match_index.insert(peer.clone(), last);
                            core.next_index.insert(peer.clone(), last + 1);
                        }
                    } else {
                        inner.signal.wait_if_unchanged(generation, heartbeat);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Local submission (also used by the SUBMIT RPC handler)
    // ------------------------------------------------------------------

    /// Appends a command if leader; blocks until committed and applied.
    pub fn submit_local(&self, command: Vec<u8>) -> SubmitReply {
        self.append_and_wait(RaftCommand::App(command))
    }

    fn append_and_wait(&self, command: RaftCommand) -> SubmitReply {
        let inner = &self.inner;
        let (tx, rx) = bounded(1);
        {
            let mut core = inner.core.lock();
            if core.role != Role::Leader {
                return SubmitReply::Redirect(core.leader_hint.clone());
            }
            let entry = LogEntry {
                term: core.meta.term,
                index: core.last_log_index() + 1,
                command: command.clone(),
            };
            if let RaftCommand::Config(list) = &command {
                // Configs take effect at append time (§6 of the Raft
                // paper's single-server change discipline).
                core.membership = list.clone();
            }
            let _ = inner.storage.append_entries(std::slice::from_ref(&entry));
            core.waiters.insert(entry.index, tx);
            core.log.push(entry);
            // Single-node cluster: commit immediately.
            Self::advance_commit(inner, &mut core);
        }
        self.ensure_replicators();
        inner.signal.notify_all();
        match rx.recv_timeout(Duration::from_millis(inner.config.submit_timeout_ms)) {
            Ok(Ok(result)) => SubmitReply::Applied(result),
            Ok(Err(reason)) => SubmitReply::Failed(reason),
            Err(_) => SubmitReply::Failed("commit timeout".into()),
        }
    }

    // ------------------------------------------------------------------
    // RPC handlers
    // ------------------------------------------------------------------

    fn register_rpcs(&self) -> Result<(), MargoError> {
        let margo = self.inner.margo.clone();
        let id = self.inner.provider_id;
        let pool = Some(RAFT_POOL);

        let node = self.clone();
        margo.register_typed(rpc::REQUEST_VOTE, id, pool, move |args: RequestVoteArgs, _| {
            Ok(node.handle_request_vote(args))
        })?;
        let node = self.clone();
        margo.register_typed(rpc::APPEND_ENTRIES, id, pool, move |args: AppendEntriesArgs, _| {
            Ok(node.handle_append_entries(args))
        })?;
        let node = self.clone();
        margo.register_typed(
            rpc::INSTALL_SNAPSHOT,
            id,
            pool,
            move |args: InstallSnapshotArgs, _| Ok(node.handle_install_snapshot(args)),
        )?;
        let node = self.clone();
        margo.register_typed(rpc::SUBMIT, id, pool, move |args: SubmitArgs, _| {
            Ok(node.submit_local(args.command))
        })?;
        let node = self.clone();
        margo.register_typed(rpc::STATUS, id, pool, move |_: (), _| Ok(node.status()))?;
        let node = self.clone();
        margo.register_typed(rpc::ADD_SERVER, id, pool, move |args: MembershipArgs, _| {
            Ok(node.change_membership(args.server, true))
        })?;
        let node = self.clone();
        margo.register_typed(rpc::REMOVE_SERVER, id, pool, move |args: MembershipArgs, _| {
            Ok(node.change_membership(args.server, false))
        })?;
        Ok(())
    }

    fn change_membership(&self, server: Address, add: bool) -> SubmitReply {
        let new_list = {
            let core = self.inner.core.lock();
            if core.role != Role::Leader {
                return SubmitReply::Redirect(core.leader_hint.clone());
            }
            let mut list = core.membership.clone();
            if add {
                if list.contains(&server) {
                    return SubmitReply::Applied(Vec::new());
                }
                list.push(server);
            } else {
                if !list.contains(&server) {
                    return SubmitReply::Applied(Vec::new());
                }
                list.retain(|a| *a != server);
            }
            list.sort();
            list
        };
        self.append_and_wait(RaftCommand::Config(new_list))
    }

    fn handle_request_vote(&self, args: RequestVoteArgs) -> RequestVoteReply {
        let inner = &self.inner;
        let mut core = inner.core.lock();
        let up_to_date = args.last_log_term > core.last_log_term()
            || (args.last_log_term == core.last_log_term()
                && args.last_log_index >= core.last_log_index());
        // Leader stickiness (thesis §4.2.3): ignore campaigns while we
        // believe a leader is alive, so stragglers cannot depose it.
        let heard_from_leader_recently = core.role == Role::Follower
            && core.leader_hint.is_some()
            && core.last_heartbeat.elapsed()
                < Duration::from_millis(inner.config.election_timeout_min_ms);
        if args.pre_vote {
            let granted =
                args.term > core.meta.term && up_to_date && !heard_from_leader_recently;
            return RequestVoteReply { term: core.meta.term, vote_granted: granted };
        }
        if heard_from_leader_recently && args.term > core.meta.term {
            return RequestVoteReply { term: core.meta.term, vote_granted: false };
        }
        if args.term > core.meta.term {
            Self::become_follower(inner, &mut core, args.term);
        }
        let mut granted = false;
        if args.term == core.meta.term {
            let can_vote = core.meta.voted_for.is_none()
                || core.meta.voted_for.as_ref() == Some(&args.candidate);
            if can_vote && up_to_date {
                granted = true;
                core.meta.voted_for = Some(args.candidate.clone());
                let _ = inner.storage.save_meta(&core.meta);
                core.last_heartbeat = Instant::now();
            }
        }
        RequestVoteReply { term: core.meta.term, vote_granted: granted }
    }

    fn handle_append_entries(&self, args: AppendEntriesArgs) -> AppendEntriesReply {
        let inner = &self.inner;
        let mut core = inner.core.lock();
        if args.term < core.meta.term {
            return AppendEntriesReply {
                term: core.meta.term,
                success: false,
                conflict_index: core.last_log_index() + 1,
                match_index: 0,
            };
        }
        Self::become_follower(inner, &mut core, args.term);
        core.leader_hint = Some(args.leader.clone());
        core.last_heartbeat = Instant::now();

        // Entries at or before the snapshot are committed and match by
        // definition; clamp prev to the snapshot boundary.
        let prev = args.prev_log_index;
        if prev > core.last_log_index() {
            return AppendEntriesReply {
                term: core.meta.term,
                success: false,
                conflict_index: core.last_log_index() + 1,
                match_index: 0,
            };
        }
        if prev > core.snap_index {
            let local_term = core.term_at(prev);
            if local_term != Some(args.prev_log_term) {
                // Conflict: hint the first index of the conflicting term.
                let bad_term = local_term.unwrap_or(0);
                let mut first = prev;
                while first > core.snap_index + 1 && core.term_at(first - 1) == Some(bad_term) {
                    first -= 1;
                }
                return AppendEntriesReply {
                    term: core.meta.term,
                    success: false,
                    conflict_index: first,
                    match_index: 0,
                };
            }
        }

        // Append, truncating on divergence.
        let mut truncated = false;
        let mut to_append: Vec<LogEntry> = Vec::new();
        for entry in &args.entries {
            if entry.index <= core.snap_index {
                continue; // already in the snapshot
            }
            match core.term_at(entry.index) {
                Some(term) if term == entry.term => {} // already have it
                Some(_) => {
                    // Divergence: drop this entry and everything after.
                    let keep = (entry.index - core.snap_index - 1) as usize;
                    core.log.truncate(keep);
                    truncated = true;
                    to_append.push(entry.clone());
                }
                None => to_append.push(entry.clone()),
            }
        }
        if truncated {
            core.recompute_membership();
        }
        if !to_append.is_empty() {
            core.log.extend(to_append.iter().cloned());
            if truncated {
                let _ = inner.storage.rewrite_log(&core.log);
            } else {
                let _ = inner.storage.append_entries(&to_append);
            }
            if to_append.iter().any(|e| matches!(e.command, RaftCommand::Config(_))) {
                core.recompute_membership();
            }
        }

        let match_index =
            (args.prev_log_index + args.entries.len() as u64).min(core.last_log_index());
        if args.leader_commit > core.commit_index {
            core.commit_index = args.leader_commit.min(match_index);
            Self::apply_committed(inner, &mut core);
        }
        AppendEntriesReply {
            term: core.meta.term,
            success: true,
            conflict_index: 0,
            match_index,
        }
    }

    fn handle_install_snapshot(&self, args: InstallSnapshotArgs) -> InstallSnapshotReply {
        let inner = &self.inner;
        let mut core = inner.core.lock();
        if args.term < core.meta.term {
            return InstallSnapshotReply { term: core.meta.term };
        }
        Self::become_follower(inner, &mut core, args.term);
        core.leader_hint = Some(args.leader.clone());
        core.last_heartbeat = Instant::now();
        if args.last_included_index <= core.commit_index {
            return InstallSnapshotReply { term: core.meta.term }; // stale
        }
        core.sm.restore(&args.data);
        core.log.retain(|e| e.index > args.last_included_index);
        core.snap_index = args.last_included_index;
        core.snap_term = args.last_included_term;
        core.snap_membership = args.membership.clone();
        core.commit_index = args.last_included_index;
        core.last_applied = args.last_included_index;
        core.recompute_membership();
        let _ = inner.storage.save_snapshot(&SnapshotRecord {
            last_included_index: args.last_included_index,
            last_included_term: args.last_included_term,
            membership: args.membership,
            data: args.data,
        });
        let _ = inner.storage.rewrite_log(&core.log);
        InstallSnapshotReply { term: core.meta.term }
    }

    /// Stops threads and deregisters RPCs. The durable state remains for
    /// a later restart.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.signal.notify_all();
        {
            let mut core = self.inner.core.lock();
            core.fail_all_waiters("node shutting down");
        }
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
        for name in rpc::ALL {
            let _ = self.inner.margo.deregister(name, self.inner.provider_id);
        }
    }
}

impl Drop for NodeInner {
    fn drop(&mut self) {
        self.stopped.store(true, Ordering::SeqCst);
        self.signal.notify_all();
    }
}
