//! `mochi-raft` — Raft consensus over Margo (paper §7, Observation 11).
//!
//! "To enable consensus across multiple Mochi components, we developed
//! Mochi-RAFT, a RAFT implementation based on C-RAFT and Margo." This
//! crate is a from-scratch Raft (Ongaro & Ousterhout, ATC'14) whose
//! messages ride Margo RPCs:
//!
//! * leader election with randomized timeouts,
//! * log replication with conflict back-off and commitment via the
//!   match-index median,
//! * durable state (term/vote metadata, log, snapshots) in the node's
//!   data directory, so a crashed node restarts where it left off,
//! * snapshotting with `InstallSnapshot` for laggards,
//! * single-server membership changes (add/remove),
//! * a client session with leader redirection and retry.
//!
//! The replicated state machine is abstract ([`StateMachine`]) so the
//! composability claim of §2.3 holds verbatim: "individual Yokan
//! instances are unaware of their database being RAFT-replicated across
//! nodes, while Mochi-RAFT itself does not need to know that the commands
//! it logs represent Yokan key-value pairs."

pub mod client;
pub mod messages;
pub mod node;
pub mod rpc_names;
pub mod storage;
pub mod types;

pub use client::RaftClient;
pub use node::{RaftConfig, RaftNode};
pub use storage::RaftStorage;
pub use types::{LogEntry, LogIndex, RaftCommand, Role, StateMachine, Term};
