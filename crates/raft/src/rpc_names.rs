//! The Raft RPC surface: every wire-visible RPC name, in one place.
//!
//! The node (`node.rs`) registers these and the client (`client.rs`)
//! calls them, so this module is the single definition both sides share
//! — and `mochi-lint`'s contract checker (MOCHI006/007/008) resolves
//! these constants when it cross-checks register/forward pairs.

/// Leader election.
pub const REQUEST_VOTE: &str = "raft_request_vote";
/// Replication + heartbeat.
pub const APPEND_ENTRIES: &str = "raft_append_entries";
/// Snapshot transfer to laggards.
pub const INSTALL_SNAPSHOT: &str = "raft_install_snapshot";
/// Client command submission.
pub const SUBMIT: &str = "raft_submit";
/// Cluster/status introspection.
pub const STATUS: &str = "raft_status";
/// Membership change: add a server.
pub const ADD_SERVER: &str = "raft_add_server";
/// Membership change: remove a server.
pub const REMOVE_SERVER: &str = "raft_remove_server";

/// All names (deregistration).
pub const ALL: [&str; 7] = [
    REQUEST_VOTE,
    APPEND_ENTRIES,
    INSTALL_SNAPSHOT,
    SUBMIT,
    STATUS,
    ADD_SERVER,
    REMOVE_SERVER,
];
