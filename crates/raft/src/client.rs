//! Raft client session: submit commands with leader discovery, redirect
//! following, and bounded retries.

use std::time::{Duration, Instant};

use parking_lot::RwLock;

use mochi_margo::{MargoError, MargoRuntime};
use mochi_mercury::Address;

use crate::messages::{rpc, MembershipArgs, StatusReply, SubmitArgs, SubmitReply};

/// A client handle onto a Raft cluster.
pub struct RaftClient {
    margo: MargoRuntime,
    provider_id: u16,
    members: RwLock<Vec<Address>>,
    leader_hint: RwLock<Option<Address>>,
    /// Overall deadline per operation.
    op_timeout: Duration,
    /// Timeout of each individual RPC attempt. Should exceed the cluster's
    /// `submit_timeout_ms` for strict exactly-once behavior; shorter values
    /// fail over faster after a leader death at the cost of retrying
    /// commands whose first attempt may still commit (at-least-once).
    rpc_timeout: Duration,
}

impl RaftClient {
    /// Creates a client knowing at least one member.
    pub fn new(margo: &MargoRuntime, provider_id: u16, members: Vec<Address>) -> Self {
        Self {
            margo: margo.clone(),
            provider_id,
            members: RwLock::new(members),
            leader_hint: RwLock::new(None),
            op_timeout: Duration::from_secs(10),
            rpc_timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the per-operation deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Overrides the per-attempt RPC timeout (see the field docs for the
    /// failover-speed vs exactly-once trade-off).
    pub fn with_rpc_timeout(mut self, timeout: Duration) -> Self {
        self.rpc_timeout = timeout;
        self
    }

    /// Updates the member list (e.g. from an SSG view).
    pub fn set_members(&self, members: Vec<Address>) {
        *self.members.write() = members;
    }

    fn candidates(&self) -> Vec<Address> {
        let mut list = Vec::new();
        if let Some(hint) = self.leader_hint.read().clone() {
            list.push(hint);
        }
        for member in self.members.read().iter() {
            if !list.contains(member) {
                list.push(member.clone());
            }
        }
        list
    }

    fn run<F>(&self, call: F) -> Result<Vec<u8>, MargoError>
    where
        F: Fn(&Address) -> Result<SubmitReply, MargoError>,
    {
        let deadline = Instant::now() + self.op_timeout;
        let mut last_error: MargoError = MargoError::Handler("no members".into());
        while Instant::now() < deadline {
            for target in self.candidates() {
                match call(&target) {
                    Ok(SubmitReply::Applied(result)) => {
                        *self.leader_hint.write() = Some(target);
                        return Ok(result);
                    }
                    Ok(SubmitReply::Redirect(hint)) => {
                        *self.leader_hint.write() = hint;
                        last_error = MargoError::Handler("redirected".into());
                    }
                    Ok(SubmitReply::Failed(reason)) => {
                        last_error = MargoError::Handler(reason);
                    }
                    Err(e) => last_error = e,
                }
                if Instant::now() >= deadline {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        Err(last_error)
    }

    /// Submits a command; returns the state machine's response once the
    /// command commits.
    pub fn submit(&self, command: &[u8]) -> Result<Vec<u8>, MargoError> {
        let args = SubmitArgs { command: command.to_vec() };
        self.run(|target| {
            self.margo.forward_timeout(
                target,
                rpc::SUBMIT,
                self.provider_id,
                &args,
                self.rpc_timeout,
            )
        })
    }

    /// Adds a server to the cluster.
    pub fn add_server(&self, server: &Address) -> Result<(), MargoError> {
        let args = MembershipArgs { server: server.clone() };
        self.run(|target| {
            self.margo.forward_timeout(
                target,
                rpc::ADD_SERVER,
                self.provider_id,
                &args,
                self.rpc_timeout,
            )
        })
        .map(|_| ())
    }

    /// Removes a server from the cluster.
    pub fn remove_server(&self, server: &Address) -> Result<(), MargoError> {
        let args = MembershipArgs { server: server.clone() };
        self.run(|target| {
            self.margo.forward_timeout(
                target,
                rpc::REMOVE_SERVER,
                self.provider_id,
                &args,
                self.rpc_timeout,
            )
        })
        .map(|_| ())
    }

    /// Fetches the status of one node.
    pub fn status_of(&self, member: &Address) -> Result<StatusReply, MargoError> {
        self.margo.forward_timeout(
            member,
            rpc::STATUS,
            self.provider_id,
            &(),
            Duration::from_secs(2),
        )
    }

    /// Finds the current leader by polling members.
    pub fn find_leader(&self) -> Option<Address> {
        for member in self.candidates() {
            if let Ok(status) = self.status_of(&member) {
                if status.role == "Leader" {
                    *self.leader_hint.write() = Some(member.clone());
                    return Some(member);
                }
                if let Some(leader) = status.leader {
                    if let Ok(s2) = self.status_of(&leader) {
                        if s2.role == "Leader" {
                            *self.leader_hint.write() = Some(leader.clone());
                            return Some(leader);
                        }
                    }
                }
            }
        }
        None
    }
}
