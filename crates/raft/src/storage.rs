//! Durable Raft state: term/vote metadata, the log, and snapshots.
//!
//! Layout in the node's data directory:
//!
//! * `meta.json` — `{term, voted_for}`, rewritten atomically on change;
//! * `log.bin` — length-prefixed JSON records, appended on new entries
//!   and rewritten on truncation (conflict resolution or compaction);
//! * `snapshot.bin` — latest snapshot: metadata + state machine bytes.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mochi_mercury::Address;
use mochi_util::crc32;

use crate::types::{LogEntry, LogIndex, Term};

/// Durable term/vote pair.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Meta {
    /// Latest term seen.
    pub term: Term,
    /// Who we voted for in `term`.
    pub voted_for: Option<Address>,
}

/// Snapshot record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Last log index the snapshot covers.
    pub last_included_index: LogIndex,
    /// Its term.
    pub last_included_term: Term,
    /// Membership at that point.
    pub membership: Vec<Address>,
    /// Serialized state machine.
    pub data: Vec<u8>,
}

/// File-backed Raft storage.
pub struct RaftStorage {
    dir: PathBuf,
}

fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

impl RaftStorage {
    /// Opens storage rooted at `dir` (created if missing).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("meta.json")
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("log.bin")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    /// Persists term/vote.
    pub fn save_meta(&self, meta: &Meta) -> std::io::Result<()> {
        atomic_write(&self.meta_path(), &serde_json::to_vec(meta).expect("meta serializes"))
    }

    /// Loads term/vote (default when absent).
    pub fn load_meta(&self) -> Meta {
        std::fs::read(self.meta_path())
            .ok()
            .and_then(|data| serde_json::from_slice(&data).ok())
            .unwrap_or_default()
    }

    fn encode_entry(entry: &LogEntry) -> Vec<u8> {
        let body = serde_json::to_vec(entry).expect("entry serializes");
        let mut record = Vec::with_capacity(8 + body.len());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&body);
        record.extend_from_slice(&crc32(&body).to_le_bytes());
        record
    }

    /// Appends entries to the log file.
    pub fn append_entries(&self, entries: &[LogEntry]) -> std::io::Result<()> {
        let mut buffer = Vec::new();
        for entry in entries {
            buffer.extend_from_slice(&Self::encode_entry(entry));
        }
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(self.log_path())?;
        file.write_all(&buffer)?;
        Ok(())
    }

    /// Rewrites the whole log (truncation, compaction).
    pub fn rewrite_log(&self, entries: &[LogEntry]) -> std::io::Result<()> {
        let mut buffer = Vec::new();
        for entry in entries {
            buffer.extend_from_slice(&Self::encode_entry(entry));
        }
        atomic_write(&self.log_path(), &buffer)
    }

    /// Loads the log, tolerating a torn tail.
    pub fn load_log(&self) -> Vec<LogEntry> {
        let Ok(data) = std::fs::read(self.log_path()) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while pos + 4 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            if pos + 4 + len + 4 > data.len() {
                break;
            }
            let body = &data[pos + 4..pos + 4 + len];
            let stored =
                u32::from_le_bytes(data[pos + 4 + len..pos + 8 + len].try_into().unwrap());
            if crc32(body) != stored {
                break;
            }
            match serde_json::from_slice(body) {
                Ok(entry) => entries.push(entry),
                Err(_) => break,
            }
            pos += 8 + len;
        }
        entries
    }

    /// Persists a snapshot.
    pub fn save_snapshot(&self, snapshot: &SnapshotRecord) -> std::io::Result<()> {
        atomic_write(
            &self.snapshot_path(),
            &serde_json::to_vec(snapshot).expect("snapshot serializes"),
        )
    }

    /// Loads the latest snapshot, if any.
    pub fn load_snapshot(&self) -> Option<SnapshotRecord> {
        let data = std::fs::read(self.snapshot_path()).ok()?;
        serde_json::from_slice(&data).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RaftCommand;
    use mochi_util::TempDir;

    fn entry(index: LogIndex, term: Term) -> LogEntry {
        LogEntry { term, index, command: RaftCommand::App(vec![index as u8]) }
    }

    #[test]
    fn meta_round_trip() {
        let dir = TempDir::new("raft-meta").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        assert_eq!(storage.load_meta(), Meta::default());
        let meta = Meta { term: 5, voted_for: Some(Address::tcp("n1", 1)) };
        storage.save_meta(&meta).unwrap();
        assert_eq!(storage.load_meta(), meta);
    }

    #[test]
    fn log_append_and_reload() {
        let dir = TempDir::new("raft-log").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        storage.append_entries(&[entry(1, 1), entry(2, 1)]).unwrap();
        storage.append_entries(&[entry(3, 2)]).unwrap();
        let log = storage.load_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[2].term, 2);
    }

    #[test]
    fn rewrite_truncates() {
        let dir = TempDir::new("raft-rewrite").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        storage.append_entries(&[entry(1, 1), entry(2, 1), entry(3, 1)]).unwrap();
        storage.rewrite_log(&[entry(1, 1)]).unwrap();
        assert_eq!(storage.load_log().len(), 1);
    }

    #[test]
    fn torn_tail_tolerated() {
        let dir = TempDir::new("raft-torn").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        storage.append_entries(&[entry(1, 1), entry(2, 1)]).unwrap();
        let path = dir.path().join("log.bin");
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        let log = storage.load_log();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = TempDir::new("raft-snap").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        assert!(storage.load_snapshot().is_none());
        let snapshot = SnapshotRecord {
            last_included_index: 10,
            last_included_term: 3,
            membership: vec![Address::tcp("n1", 1)],
            data: vec![1, 2, 3],
        };
        storage.save_snapshot(&snapshot).unwrap();
        assert_eq!(storage.load_snapshot().unwrap(), snapshot);
    }
}
