//! Integration tests for Mochi-RAFT: election, replication, failover,
//! partitions, log convergence, restarts, snapshots, and membership
//! changes — all on the simulated fabric with injected faults.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_raft::types::LogMachine;
use mochi_raft::{RaftClient, RaftConfig, RaftNode, StateMachine};
use mochi_util::time::wait_until;
use mochi_util::TempDir;

const RAFT_PROVIDER: u16 = 7;

/// State machine that shares its applied log with the test.
struct SharedMachine(Arc<Mutex<LogMachine>>);

impl StateMachine for SharedMachine {
    fn apply(&mut self, command: &[u8]) -> Vec<u8> {
        self.0.lock().apply(command)
    }
    fn snapshot(&self) -> Vec<u8> {
        self.0.lock().snapshot()
    }
    fn restore(&mut self, snapshot: &[u8]) {
        self.0.lock().restore(snapshot)
    }
}

struct Cluster {
    fabric: Fabric,
    dir: TempDir,
    addresses: Vec<Address>,
    nodes: Vec<(MargoRuntime, RaftNode, Arc<Mutex<LogMachine>>)>,
    config: RaftConfig,
}

impl Cluster {
    fn new(n: usize) -> Self {
        Self::with_config(n, RaftConfig::fast())
    }

    fn with_config(n: usize, config: RaftConfig) -> Self {
        let fabric = Fabric::new();
        let dir = TempDir::new("raft-cluster").unwrap();
        let addresses: Vec<Address> =
            (0..n).map(|i| Address::tcp(format!("r{i}"), 1)).collect();
        let mut nodes = Vec::new();
        for (i, addr) in addresses.iter().enumerate() {
            let margo = MargoRuntime::init_default(&fabric, addr.clone()).unwrap();
            let machine = Arc::new(Mutex::new(LogMachine::default()));
            let node = RaftNode::start(
                &margo,
                RAFT_PROVIDER,
                &addresses,
                Box::new(SharedMachine(Arc::clone(&machine))),
                dir.path().join(format!("r{i}")),
                config,
            )
            .unwrap();
            nodes.push((margo, node, machine));
        }
        Self { fabric, dir, addresses, nodes, config }
    }

    fn client(&self) -> RaftClient {
        let margo =
            MargoRuntime::init_default(&self.fabric, Address::tcp("raft-client", 1)).unwrap();
        RaftClient::new(&margo, RAFT_PROVIDER, self.addresses.clone())
    }

    fn leader_index(&self) -> Option<usize> {
        self.nodes.iter().position(|(_, node, _)| node.is_leader())
    }

    fn wait_for_leader(&self) -> usize {
        assert!(
            wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
                self.leader_index().is_some()
            }),
            "no leader elected"
        );
        self.leader_index().unwrap()
    }

    fn shutdown(self) {
        for (margo, node, _) in &self.nodes {
            node.shutdown();
            margo.finalize();
        }
    }
}

#[test]
fn elects_exactly_one_leader() {
    let cluster = Cluster::new(3);
    cluster.wait_for_leader();
    // Give elections a moment to settle, then count leaders.
    std::thread::sleep(Duration::from_millis(200));
    let leaders = cluster.nodes.iter().filter(|(_, n, _)| n.is_leader()).count();
    assert_eq!(leaders, 1);
    cluster.shutdown();
}

#[test]
fn replicates_commands_to_all_nodes() {
    let cluster = Cluster::new(3);
    cluster.wait_for_leader();
    let client = cluster.client();
    for i in 0..10u32 {
        let reply = client.submit(format!("cmd-{i}").as_bytes()).unwrap();
        assert!(!reply.is_empty());
    }
    // All machines converge to the same 10 commands in order.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        cluster.nodes.iter().all(|(_, _, m)| m.lock().applied.len() == 10)
    }));
    let reference = cluster.nodes[0].2.lock().applied.clone();
    for (_, _, machine) in &cluster.nodes[1..] {
        assert_eq!(machine.lock().applied, reference);
    }
    assert_eq!(reference[3], b"cmd-3".to_vec());
    cluster.shutdown();
}

#[test]
fn leader_crash_triggers_failover_and_no_data_loss() {
    let cluster = Cluster::new(3);
    let leader = cluster.wait_for_leader();
    let client = cluster.client();
    client.submit(b"before-crash").unwrap();

    // Crash the leader abruptly.
    cluster.nodes[leader].1.shutdown();
    cluster.nodes[leader].0.finalize();

    // A new leader emerges among the survivors.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        cluster
            .nodes
            .iter()
            .enumerate()
            .any(|(i, (_, n, _))| i != leader && n.is_leader())
    }));
    client.submit(b"after-crash").unwrap();
    // Survivors hold both commands in order.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        cluster
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != leader)
            .all(|(_, (_, _, m))| m.lock().applied.len() == 2)
    }));
    for (i, (_, _, machine)) in cluster.nodes.iter().enumerate() {
        if i != leader {
            let applied = machine.lock().applied.clone();
            assert_eq!(applied, vec![b"before-crash".to_vec(), b"after-crash".to_vec()]);
        }
    }
    for (i, (margo, node, _)) in cluster.nodes.iter().enumerate() {
        if i != leader {
            node.shutdown();
            margo.finalize();
        }
    }
}

#[test]
fn minority_partition_cannot_commit() {
    let cluster = Cluster::new(3);
    let leader = cluster.wait_for_leader();
    let client = cluster.client();
    client.submit(b"committed").unwrap();

    // Isolate the leader (minority of 1).
    let leader_host = cluster.addresses[leader].host().to_string();
    let others: Vec<String> = cluster
        .addresses
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != leader)
        .map(|(_, a)| a.host().to_string())
        .collect();
    let mut majority_side = others.clone();
    majority_side.push("raft-client".into());
    cluster.fabric.faults().set_partition(&[vec![leader_host], majority_side]);

    // The majority elects a new leader and keeps committing.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        cluster
            .nodes
            .iter()
            .enumerate()
            .any(|(i, (_, n, _))| i != leader && n.is_leader())
    }));
    client.submit(b"majority-commit").unwrap();

    // Heal: the old leader rejoins as follower and converges.
    cluster.fabric.faults().heal_partition();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        cluster.nodes[leader].2.lock().applied.len() == 2
    }));
    assert_eq!(
        cluster.nodes[leader].2.lock().applied,
        vec![b"committed".to_vec(), b"majority-commit".to_vec()]
    );
    cluster.shutdown();
}

#[test]
fn node_restart_recovers_from_disk() {
    let fabric = Fabric::new();
    let dir = TempDir::new("raft-restart").unwrap();
    let addresses: Vec<Address> = (0..3).map(|i| Address::tcp(format!("r{i}"), 1)).collect();
    type Node = (MargoRuntime, RaftNode, Arc<Mutex<LogMachine>>);
    let mk_node = |i: usize, fabric: &Fabric, addresses: &[Address]| -> Node {
        let margo = MargoRuntime::init_default(fabric, addresses[i].clone()).unwrap();
        let machine = Arc::new(Mutex::new(LogMachine::default()));
        let node = RaftNode::start(
            &margo,
            RAFT_PROVIDER,
            addresses,
            Box::new(SharedMachine(Arc::clone(&machine))),
            dir.path().join(format!("r{i}")),
            RaftConfig::fast(),
        )
        .unwrap();
        (margo, node, machine)
    };
    let mut nodes: Vec<_> = (0..3).map(|i| mk_node(i, &fabric, &addresses)).collect();
    let client_margo = MargoRuntime::init_default(&fabric, Address::tcp("c", 1)).unwrap();
    let client = RaftClient::new(&client_margo, RAFT_PROVIDER, addresses.clone());
    for i in 0..5u32 {
        client.submit(format!("persist-{i}").as_bytes()).unwrap();
    }

    // Crash node 2 and restart it from its data dir.
    nodes[2].1.shutdown();
    nodes[2].0.finalize();
    std::thread::sleep(Duration::from_millis(100));
    nodes[2] = mk_node(2, &fabric, &addresses);

    // It catches up with all five commands (replayed or re-replicated).
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        nodes[2].2.lock().applied.len() == 5
    }));
    assert_eq!(nodes[2].2.lock().applied[4], b"persist-4".to_vec());
    for (margo, node, _) in &nodes {
        node.shutdown();
        margo.finalize();
    }
    client_margo.finalize();
}

#[test]
fn snapshots_compact_the_log_and_bootstrap_laggards() {
    let mut config = RaftConfig::fast();
    config.snapshot_threshold = 20;
    let cluster = Cluster::with_config(3, config);
    let leader = cluster.wait_for_leader();
    let client = cluster.client();

    // Cut off node (leader+1)%3, write enough to force a snapshot.
    let laggard = (leader + 1) % 3;
    let laggard_host = cluster.addresses[laggard].host().to_string();
    cluster.fabric.faults().blackhole(&cluster.addresses[laggard]);
    for i in 0..60u32 {
        client.submit(format!("bulk-{i}").as_bytes()).unwrap();
    }
    // Leader must have compacted (snapshot threshold 20 < 60 entries).
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(50), || {
        cluster.nodes[leader].1.status().last_log_index > 20
    }));

    // Reconnect the laggard: it should be caught up via InstallSnapshot
    // + AppendEntries.
    cluster.fabric.faults().unblackhole(&cluster.addresses[laggard]);
    let _ = laggard_host;
    assert!(
        wait_until(Duration::from_secs(15), Duration::from_millis(20), || {
            cluster.nodes[laggard].2.lock().applied.len() == 60
        }),
        "laggard applied {} of 60",
        cluster.nodes[laggard].2.lock().applied.len()
    );
    cluster.shutdown();
}

#[test]
fn membership_change_add_and_remove() {
    let cluster = Cluster::new(3);
    cluster.wait_for_leader();
    let client = cluster.client();
    client.submit(b"pre").unwrap();

    // Add a fourth node.
    let addr = Address::tcp("r3", 1);
    let margo = MargoRuntime::init_default(&cluster.fabric, addr.clone()).unwrap();
    let machine = Arc::new(Mutex::new(LogMachine::default()));
    let node = RaftNode::start(
        &margo,
        RAFT_PROVIDER,
        std::slice::from_ref(&addr), // it learns real membership from the leader
        Box::new(SharedMachine(Arc::clone(&machine))),
        cluster.dir.path().join("r3"),
        cluster.config,
    )
    .unwrap();
    client.add_server(&addr).unwrap();

    // The new node replicates history.
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        machine.lock().applied.len() == 1
    }));
    client.submit(b"post-add").unwrap();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        machine.lock().applied.len() == 2
    }));

    // Remove it again; further commits don't reach it.
    client.remove_server(&addr).unwrap();
    client.submit(b"post-remove").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(machine.lock().applied.len(), 2);

    node.shutdown();
    margo.finalize();
    cluster.shutdown();
}

#[test]
fn status_reports_consistent_cluster_shape() {
    let cluster = Cluster::new(3);
    cluster.wait_for_leader();
    let client = cluster.client();
    client.submit(b"x").unwrap();
    let leader = client.find_leader().expect("leader findable");
    let status = client.status_of(&leader).unwrap();
    assert_eq!(status.role, "Leader");
    assert_eq!(status.membership.len(), 3);
    assert!(status.commit_index >= 1);
    cluster.shutdown();
}
