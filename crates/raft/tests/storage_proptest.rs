//! Property tests on Raft's durable storage: arbitrary append/rewrite
//! schedules and torn tails never corrupt the prefix; snapshots and meta
//! round-trip exactly.

use proptest::prelude::*;

use mochi_mercury::Address;
use mochi_raft::storage::{Meta, RaftStorage, SnapshotRecord};
use mochi_raft::types::{LogEntry, RaftCommand};
use mochi_util::TempDir;

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    (1u64..100, 1u64..10, proptest::collection::vec(any::<u8>(), 0..32)).prop_map(
        |(index, term, payload)| LogEntry {
            index,
            term,
            command: RaftCommand::App(payload),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn append_rewrite_schedules_round_trip(
        batches in proptest::collection::vec(
            proptest::collection::vec(entry_strategy(), 0..8), 1..6),
        rewrite_at in proptest::option::of(0usize..5),
    ) {
        let dir = TempDir::new("raft-storage-prop").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        let mut expected: Vec<LogEntry> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            if rewrite_at == Some(i) {
                // Rewrite with the first half of what we have so far.
                expected.truncate(expected.len() / 2);
                storage.rewrite_log(&expected).unwrap();
            }
            storage.append_entries(batch).unwrap();
            expected.extend(batch.iter().cloned());
        }
        prop_assert_eq!(storage.load_log(), expected);
    }

    #[test]
    fn torn_tail_preserves_prefix(
        entries in proptest::collection::vec(entry_strategy(), 1..10),
        cut in 1usize..64,
    ) {
        let dir = TempDir::new("raft-torn-prop").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        storage.append_entries(&entries).unwrap();
        let path = dir.path().join("log.bin");
        let data = std::fs::read(&path).unwrap();
        let keep = data.len().saturating_sub(cut % data.len().max(1));
        std::fs::write(&path, &data[..keep]).unwrap();
        let loaded = storage.load_log();
        // The loaded log is a strict prefix of what was written.
        prop_assert!(loaded.len() <= entries.len());
        prop_assert_eq!(&entries[..loaded.len()], &loaded[..]);
    }

    #[test]
    fn meta_and_snapshot_round_trip(
        term in any::<u64>(),
        vote in proptest::option::of(0u32..8),
        snap_index in any::<u64>(),
        snap_term in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let dir = TempDir::new("raft-meta-prop").unwrap();
        let storage = RaftStorage::open(dir.path()).unwrap();
        let meta = Meta {
            term,
            voted_for: vote.map(|n| Address::tcp(format!("n{n}"), 1)),
        };
        storage.save_meta(&meta).unwrap();
        prop_assert_eq!(storage.load_meta(), meta);

        let snapshot = SnapshotRecord {
            last_included_index: snap_index,
            last_included_term: snap_term,
            membership: vec![Address::tcp("a", 1)],
            data,
        };
        storage.save_snapshot(&snapshot).unwrap();
        prop_assert_eq!(storage.load_snapshot().unwrap(), snapshot);
    }
}
