//! Error type for Bedrock operations.

use std::fmt;

use mochi_margo::MargoError;

/// Errors surfaced by Bedrock's local and remote APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum BedrockError {
    /// Underlying Margo/transport failure.
    Margo(MargoError),
    /// A configuration document was invalid.
    BadConfig(String),
    /// Library (module) not found in the catalog — the analogue of a
    /// failed `dlopen`.
    LibraryNotFound(String),
    /// No module loaded for this provider type.
    ModuleNotLoaded(String),
    /// A provider with this name already exists.
    ProviderExists(String),
    /// No provider with this name.
    ProviderNotFound(String),
    /// A dependency could not be resolved.
    DependencyError { provider: String, dependency: String, reason: String },
    /// The provider is depended upon by others and cannot be removed.
    ProviderInUse { provider: String, dependents: Vec<String> },
    /// The module factory or a provider hook failed.
    Provider(String),
    /// A transaction could not be prepared (conflict or precondition).
    TxnConflict(String),
    /// Unknown transaction id in commit/abort.
    TxnUnknown(String),
}

impl fmt::Display for BedrockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BedrockError::Margo(e) => write!(f, "margo: {e}"),
            BedrockError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            BedrockError::LibraryNotFound(l) => write!(f, "library '{l}' not found"),
            BedrockError::ModuleNotLoaded(t) => write!(f, "no module loaded for type '{t}'"),
            BedrockError::ProviderExists(n) => write!(f, "provider '{n}' already exists"),
            BedrockError::ProviderNotFound(n) => write!(f, "provider '{n}' not found"),
            BedrockError::DependencyError { provider, dependency, reason } => {
                write!(f, "provider '{provider}' dependency '{dependency}': {reason}")
            }
            BedrockError::ProviderInUse { provider, dependents } => {
                write!(f, "provider '{provider}' is used by {dependents:?}")
            }
            BedrockError::Provider(m) => write!(f, "provider error: {m}"),
            BedrockError::TxnConflict(m) => write!(f, "transaction conflict: {m}"),
            BedrockError::TxnUnknown(id) => write!(f, "unknown transaction '{id}'"),
        }
    }
}

impl std::error::Error for BedrockError {}

impl From<MargoError> for BedrockError {
    fn from(e: MargoError) -> Self {
        BedrockError::Margo(e)
    }
}

impl BedrockError {
    /// Flattens to the string carried across the RPC boundary (Bedrock
    /// RPC handlers answer errors as strings).
    pub fn to_rpc_string(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BedrockError::DependencyError {
            provider: "p".into(),
            dependency: "kv".into(),
            reason: "missing".into(),
        };
        let s = e.to_string();
        assert!(s.contains('p') && s.contains("kv") && s.contains("missing"));
    }
}
