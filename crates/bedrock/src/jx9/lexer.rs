//! Tokenizer for the Jx9 subset.

use super::Jx9Error;

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `$name`
    Variable(String),
    /// Bare identifier (keywords are classified by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// Punctuation / operator, e.g. `==`, `=>`, `(`, `{`.
    Punct(&'static str),
}

const TWO_CHAR: [&str; 8] = ["==", "!=", "<=", ">=", "&&", "||", "=>", "->"];
const ONE_CHAR: [&str; 16] =
    ["(", ")", "{", "}", "[", "]", ",", ";", ".", "=", "<", ">", "+", "-", "*", "/"];
const ONE_CHAR_EXTRA: [&str; 2] = ["%", "!"];

/// Tokenizes a script. `#`-to-end-of-line and `//` comments are skipped.
pub fn tokenize(source: &str) -> Result<Vec<Token>, Jx9Error> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Variables.
        if c == '$' {
            let start = i + 1;
            let mut end = start;
            while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            if end == start {
                return Err(Jx9Error("'$' not followed by a name".into()));
            }
            tokens.push(Token::Variable(chars[start..end].iter().collect()));
            i = end;
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut end = i;
            while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            tokens.push(Token::Ident(chars[start..end].iter().collect()));
            i = end;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut end = i;
            let mut is_float = false;
            while end < chars.len()
                && (chars[end].is_ascii_digit()
                    || (chars[end] == '.'
                        && chars.get(end + 1).is_some_and(|c| c.is_ascii_digit())
                        && !is_float))
            {
                if chars[end] == '.' {
                    is_float = true;
                }
                end += 1;
            }
            let text: String = chars[start..end].iter().collect();
            if is_float {
                tokens.push(Token::Float(
                    text.parse().map_err(|_| Jx9Error(format!("bad float '{text}'")))?,
                ));
            } else {
                tokens.push(Token::Int(
                    text.parse().map_err(|_| Jx9Error(format!("bad integer '{text}'")))?,
                ));
            }
            i = end;
            continue;
        }
        // Strings.
        if c == '"' || c == '\'' {
            let quote = c;
            let mut value = String::new();
            let mut j = i + 1;
            loop {
                match chars.get(j) {
                    None => return Err(Jx9Error("unterminated string".into())),
                    Some(&ch) if ch == quote => break,
                    Some('\\') => {
                        match chars.get(j + 1) {
                            Some('n') => value.push('\n'),
                            Some('t') => value.push('\t'),
                            Some(&other) => value.push(other),
                            None => return Err(Jx9Error("dangling escape".into())),
                        }
                        j += 2;
                    }
                    Some(&ch) => {
                        value.push(ch);
                        j += 1;
                    }
                }
            }
            tokens.push(Token::Str(value));
            i = j + 1;
            continue;
        }
        // Operators, longest match first.
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if let Some(op) = TWO_CHAR.iter().find(|&&op| op == two) {
            tokens.push(Token::Punct(op));
            i += 2;
            continue;
        }
        let one = c.to_string();
        if let Some(op) =
            ONE_CHAR.iter().chain(ONE_CHAR_EXTRA.iter()).find(|&&op| op == one)
        {
            tokens.push(Token::Punct(op));
            i += 1;
            continue;
        }
        return Err(Jx9Error(format!("unexpected character '{c}'")));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_listing4() {
        let tokens = tokenize(
            r#"$result = [];
               foreach ($__config__.providers as $p) {
                   array_push($result, $p.name); }
               return $result;"#,
        )
        .unwrap();
        assert!(tokens.contains(&Token::Variable("result".into())));
        assert!(tokens.contains(&Token::Variable("__config__".into())));
        assert!(tokens.contains(&Token::Ident("foreach".into())));
        assert!(tokens.contains(&Token::Ident("array_push".into())));
        assert!(tokens.contains(&Token::Punct(".")));
    }

    #[test]
    fn numbers_and_strings() {
        let tokens = tokenize(r#"42 3.25 "hi\n" 'single'"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Int(42),
                Token::Float(3.25),
                Token::Str("hi\n".into()),
                Token::Str("single".into()),
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        let tokens = tokenize("a == b != c => d").unwrap();
        assert!(tokens.contains(&Token::Punct("==")));
        assert!(tokens.contains(&Token::Punct("!=")));
        assert!(tokens.contains(&Token::Punct("=>")));
    }

    #[test]
    fn comments_skipped() {
        let tokens = tokenize("# full line\n$a = 1; // trailing\n$b = 2;").unwrap();
        assert_eq!(tokens.iter().filter(|t| matches!(t, Token::Variable(_))).count(), 2);
    }

    #[test]
    fn member_access_vs_float() {
        // `$p.name` must lex as variable, '.', ident — not a float.
        let tokens = tokenize("$p.name").unwrap();
        assert_eq!(
            tokens,
            vec![Token::Variable("p".into()), Token::Punct("."), Token::Ident("name".into())]
        );
        // But `1.5` is a float.
        assert_eq!(tokenize("1.5").unwrap(), vec![Token::Float(1.5)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("$").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
    }
}
