//! Recursive-descent parser for the Jx9 subset.

use super::lexer::Token;
use super::Jx9Error;

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal JSON scalar.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `[a, b, …]`
    Array(Vec<Expr>),
    /// `{ "k": v, … }`
    Object(Vec<(String, Expr)>),
    /// `$name`
    Var(String),
    /// `expr.field` (also `expr->field`)
    Member(Box<Expr>, String),
    /// `expr[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `f(args…)`
    Call(String, Vec<Expr>),
    /// Binary operator.
    Binary(&'static str, Box<Expr>, Box<Expr>),
    /// Unary operator (`!`, `-`).
    Unary(&'static str, Box<Expr>),
}

/// Assignment target: a variable possibly followed by member/index steps.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Root variable name.
    pub var: String,
    /// Path of accesses applied to the root.
    pub path: Vec<PathStep>,
}

/// One step of an lvalue path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStep {
    /// `.field`
    Member(String),
    /// `[expr]`
    Index(Expr),
}

/// Statement AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `$x = expr;` (possibly with a path: `$x.y[0] = expr;`)
    Assign(LValue, Expr),
    /// Bare expression (e.g. a call) as a statement.
    Expr(Expr),
    /// `if (cond) {…} else {…}`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) {…}`
    While(Expr, Vec<Stmt>),
    /// `foreach (expr as $v)` / `foreach (expr as $k => $v)`
    Foreach { collection: Expr, key: Option<String>, value: String, body: Vec<Stmt> },
    /// `return expr;`
    Return(Expr),
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

/// Parses a token stream into a statement list.
pub fn parse(tokens: &[Token]) -> Result<Vec<Stmt>, Jx9Error> {
    let mut parser = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !parser.at_end() {
        stmts.push(parser.statement()?);
    }
    Ok(stmts)
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.pos);
        self.pos += 1;
        token
    }

    fn eat_punct(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(p)) if *p == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, op: &str) -> Result<(), Jx9Error> {
        if self.eat_punct(op) {
            Ok(())
        } else {
            Err(Jx9Error(format!("expected '{op}', found {:?}", self.peek())))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_variable(&mut self) -> Result<String, Jx9Error> {
        match self.advance() {
            Some(Token::Variable(name)) => Ok(name.clone()),
            other => Err(Jx9Error(format!("expected a variable, found {other:?}"))),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Jx9Error> {
        if self.eat_punct("{") {
            let mut stmts = Vec::new();
            while !self.eat_punct("}") {
                if self.at_end() {
                    return Err(Jx9Error("unterminated block".into()));
                }
                stmts.push(self.statement()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn statement(&mut self) -> Result<Stmt, Jx9Error> {
        if self.eat_ident("return") {
            let expr = if matches!(self.peek(), Some(Token::Punct(";"))) {
                Expr::Null
            } else {
                self.expression()?
            };
            self.eat_punct(";");
            return Ok(Stmt::Return(expr));
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let then_block = self.block()?;
            let else_block = if self.eat_ident("else") { self.block()? } else { Vec::new() };
            return Ok(Stmt::If(cond, then_block, else_block));
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expression()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_ident("foreach") {
            self.expect_punct("(")?;
            let collection = self.expression()?;
            if !self.eat_ident("as") {
                return Err(Jx9Error("expected 'as' in foreach".into()));
            }
            let first = self.expect_variable()?;
            let (key, value) = if self.eat_punct("=>") {
                (Some(first), self.expect_variable()?)
            } else {
                (None, first)
            };
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::Foreach { collection, key, value, body });
        }
        // Assignment or expression statement.
        if let Some(Token::Variable(_)) = self.peek() {
            let checkpoint = self.pos;
            if let Ok(lvalue) = self.lvalue() {
                if self.eat_punct("=") {
                    let expr = self.expression()?;
                    self.eat_punct(";");
                    return Ok(Stmt::Assign(lvalue, expr));
                }
            }
            self.pos = checkpoint;
        }
        let expr = self.expression()?;
        self.eat_punct(";");
        Ok(Stmt::Expr(expr))
    }

    fn lvalue(&mut self) -> Result<LValue, Jx9Error> {
        let var = self.expect_variable()?;
        let mut path = Vec::new();
        loop {
            if self.eat_punct(".") || self.eat_punct("->") {
                match self.advance() {
                    Some(Token::Ident(field)) => path.push(PathStep::Member(field.clone())),
                    other => return Err(Jx9Error(format!("expected field name, got {other:?}"))),
                }
            } else if self.eat_punct("[") {
                let index = self.expression()?;
                self.expect_punct("]")?;
                path.push(PathStep::Index(index));
            } else {
                break;
            }
        }
        Ok(LValue { var, path })
    }

    fn expression(&mut self) -> Result<Expr, Jx9Error> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, Jx9Error> {
        let mut left = self.and_expr()?;
        while self.eat_punct("||") {
            let right = self.and_expr()?;
            left = Expr::Binary("||", Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, Jx9Error> {
        let mut left = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let right = self.cmp_expr()?;
            left = Expr::Binary("&&", Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Jx9Error> {
        let left = self.add_expr()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.eat_punct(op) {
                let right = self.add_expr()?;
                return Ok(Expr::Binary(
                    match op {
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "<" => "<",
                        _ => ">",
                    },
                    Box::new(left),
                    Box::new(right),
                ));
            }
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr, Jx9Error> {
        let mut left = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                left = Expr::Binary("+", Box::new(left), Box::new(self.mul_expr()?));
            } else if self.eat_punct("-") {
                left = Expr::Binary("-", Box::new(left), Box::new(self.mul_expr()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, Jx9Error> {
        let mut left = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                left = Expr::Binary("*", Box::new(left), Box::new(self.unary_expr()?));
            } else if self.eat_punct("/") {
                left = Expr::Binary("/", Box::new(left), Box::new(self.unary_expr()?));
            } else if self.eat_punct("%") {
                left = Expr::Binary("%", Box::new(left), Box::new(self.unary_expr()?));
            } else {
                return Ok(left);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, Jx9Error> {
        if self.eat_punct("!") {
            return Ok(Expr::Unary("!", Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary("-", Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Jx9Error> {
        let mut expr = self.primary_expr()?;
        loop {
            if self.eat_punct(".") || self.eat_punct("->") {
                match self.advance() {
                    Some(Token::Ident(field)) => {
                        expr = Expr::Member(Box::new(expr), field.clone());
                    }
                    other => return Err(Jx9Error(format!("expected field name, got {other:?}"))),
                }
            } else if self.eat_punct("[") {
                let index = self.expression()?;
                self.expect_punct("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(index));
            } else {
                return Ok(expr);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Jx9Error> {
        match self.advance().cloned() {
            Some(Token::Int(n)) => Ok(Expr::Int(n)),
            Some(Token::Float(x)) => Ok(Expr::Float(x)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Variable(name)) => Ok(Expr::Var(name)),
            Some(Token::Ident(word)) => match word.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                "null" => Ok(Expr::Null),
                _ => {
                    // Function call.
                    self.expect_punct("(")?;
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expression()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(word, args))
                }
            },
            Some(Token::Punct("(")) => {
                let expr = self.expression()?;
                self.expect_punct(")")?;
                Ok(expr)
            }
            Some(Token::Punct("[")) => {
                let mut items = Vec::new();
                if !self.eat_punct("]") {
                    loop {
                        items.push(self.expression()?);
                        if self.eat_punct("]") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Array(items))
            }
            Some(Token::Punct("{")) => {
                let mut fields = Vec::new();
                if !self.eat_punct("}") {
                    loop {
                        let key = match self.advance() {
                            Some(Token::Str(s)) => s.clone(),
                            Some(Token::Ident(w)) => w.clone(),
                            other => {
                                return Err(Jx9Error(format!("bad object key: {other:?}")))
                            }
                        };
                        // Accept both `:` (JSON) — lexed as nothing we have —
                        // and `=>` (PHP). We only lex `=>`, so require it.
                        if !self.eat_punct("=>") {
                            return Err(Jx9Error("expected '=>' in object literal".into()));
                        }
                        fields.push((key, self.expression()?));
                        if self.eat_punct("}") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                Ok(Expr::Object(fields))
            }
            other => Err(Jx9Error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::lexer::tokenize;
    use super::*;

    fn parse_src(src: &str) -> Vec<Stmt> {
        parse(&tokenize(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_listing4() {
        let stmts = parse_src(
            r#"$result = [];
               foreach ($__config__.providers as $p) {
                   array_push($result, $p.name); }
               return $result;"#,
        );
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[0], Stmt::Assign(lv, Expr::Array(items))
            if lv.var == "result" && items.is_empty()));
        assert!(matches!(&stmts[1], Stmt::Foreach { key: None, value, .. } if value == "p"));
        assert!(matches!(&stmts[2], Stmt::Return(Expr::Var(v)) if v == "result"));
    }

    #[test]
    fn operator_precedence() {
        let stmts = parse_src("return 1 + 2 * 3 == 7 && true;");
        let Stmt::Return(expr) = &stmts[0] else { panic!() };
        // (((1 + (2*3)) == 7) && true)
        assert!(matches!(expr, Expr::Binary("&&", _, _)));
    }

    #[test]
    fn foreach_with_key() {
        let stmts = parse_src("foreach ($m as $k => $v) { return $k; }");
        assert!(matches!(&stmts[0], Stmt::Foreach { key: Some(k), value, .. }
            if k == "k" && value == "v"));
    }

    #[test]
    fn lvalue_paths() {
        let stmts = parse_src(r#"$a.b[0] = 5;"#);
        let Stmt::Assign(lv, _) = &stmts[0] else { panic!() };
        assert_eq!(lv.var, "a");
        assert_eq!(lv.path.len(), 2);
    }

    #[test]
    fn object_literal_with_arrow() {
        let stmts = parse_src(r#"return { "x" => 1, y => 2 };"#);
        let Stmt::Return(Expr::Object(fields)) = &stmts[0] else { panic!() };
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse(&tokenize("foreach ($a $b)").unwrap()).is_err());
        assert!(parse(&tokenize("return (1 + ;").unwrap()).is_err());
        assert!(parse(&tokenize("if (1 { }").unwrap()).is_err());
    }
}
