//! Evaluator for the Jx9 subset. Values are `serde_json::Value`.

use std::collections::HashMap;

use serde_json::{json, Value};

use super::lexer::tokenize;
use super::parser::{parse, Expr, LValue, PathStep, Stmt};
use super::Jx9Error;

/// Hard cap on loop iterations, so a buggy query cannot wedge a Bedrock
/// process (queries run inside provider ULTs).
const MAX_ITERATIONS: usize = 1_000_000;

/// Evaluates `script` with the given initial variable bindings.
pub fn eval_with_bindings(script: &str, bindings: &[(&str, Value)]) -> Result<Value, Jx9Error> {
    let tokens = tokenize(script)?;
    let stmts = parse(&tokens)?;
    let mut env = Env {
        vars: bindings.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        iterations: 0,
    };
    match env.run_block(&stmts)? {
        Flow::Return(value) => Ok(value),
        Flow::Normal => Ok(Value::Null),
    }
}

enum Flow {
    Normal,
    Return(Value),
}

struct Env {
    vars: HashMap<String, Value>,
    iterations: usize,
}

fn truthy(value: &Value) -> bool {
    match value {
        Value::Null => false,
        Value::Bool(b) => *b,
        Value::Number(n) => n.as_f64().is_some_and(|x| x != 0.0),
        Value::String(s) => !s.is_empty(),
        Value::Array(a) => !a.is_empty(),
        Value::Object(o) => !o.is_empty(),
    }
}

fn as_number(value: &Value) -> Option<f64> {
    value.as_f64()
}

fn number_value(x: f64) -> Value {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        json!(x as i64)
    } else {
        json!(x)
    }
}

impl Env {
    fn tick(&mut self) -> Result<(), Jx9Error> {
        self.iterations += 1;
        if self.iterations > MAX_ITERATIONS {
            Err(Jx9Error("iteration limit exceeded".into()))
        } else {
            Ok(())
        }
    }

    fn run_block(&mut self, stmts: &[Stmt]) -> Result<Flow, Jx9Error> {
        for stmt in stmts {
            if let Flow::Return(value) = self.run_stmt(stmt)? {
                return Ok(Flow::Return(value));
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(&mut self, stmt: &Stmt) -> Result<Flow, Jx9Error> {
        self.tick()?;
        match stmt {
            Stmt::Assign(lvalue, expr) => {
                let value = self.eval(expr)?;
                self.assign(lvalue, value)?;
                Ok(Flow::Normal)
            }
            Stmt::Expr(expr) => {
                self.eval(expr)?;
                Ok(Flow::Normal)
            }
            Stmt::Return(expr) => Ok(Flow::Return(self.eval(expr)?)),
            Stmt::If(cond, then_block, else_block) => {
                let branch = if truthy(&self.eval(cond)?) { then_block } else { else_block };
                self.run_block(branch)
            }
            Stmt::While(cond, body) => {
                while truthy(&self.eval(cond)?) {
                    self.tick()?;
                    if let Flow::Return(value) = self.run_block(body)? {
                        return Ok(Flow::Return(value));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Foreach { collection, key, value, body } => {
                let items = self.eval(collection)?;
                match items {
                    Value::Array(array) => {
                        for (index, item) in array.into_iter().enumerate() {
                            self.tick()?;
                            if let Some(key_name) = key {
                                self.vars.insert(key_name.clone(), json!(index));
                            }
                            self.vars.insert(value.clone(), item);
                            if let Flow::Return(v) = self.run_block(body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                    }
                    Value::Object(map) => {
                        for (k, item) in map {
                            self.tick()?;
                            if let Some(key_name) = key {
                                self.vars.insert(key_name.clone(), json!(k));
                            }
                            self.vars.insert(value.clone(), item);
                            if let Flow::Return(v) = self.run_block(body)? {
                                return Ok(Flow::Return(v));
                            }
                        }
                    }
                    Value::Null => {}
                    other => {
                        return Err(Jx9Error(format!("foreach over non-collection: {other}")))
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(&mut self, lvalue: &LValue, value: Value) -> Result<(), Jx9Error> {
        if lvalue.path.is_empty() {
            self.vars.insert(lvalue.var.clone(), value);
            return Ok(());
        }
        // Evaluate index expressions first (they may read variables).
        let mut steps = Vec::with_capacity(lvalue.path.len());
        for step in &lvalue.path {
            steps.push(match step {
                PathStep::Member(name) => ResolvedStep::Key(name.clone()),
                PathStep::Index(expr) => {
                    let idx = self.eval(expr)?;
                    match idx {
                        Value::String(s) => ResolvedStep::Key(s),
                        Value::Number(n) => ResolvedStep::Index(n.as_u64().ok_or_else(|| {
                            Jx9Error("negative/fractional array index".into())
                        })? as usize),
                        other => return Err(Jx9Error(format!("bad index {other}"))),
                    }
                }
            });
        }
        let root = self.vars.entry(lvalue.var.clone()).or_insert(Value::Null);
        let mut cursor = root;
        for step in steps {
            match step {
                ResolvedStep::Key(key) => {
                    if !cursor.is_object() {
                        *cursor = json!({});
                    }
                    cursor = cursor
                        .as_object_mut()
                        .expect("just coerced to object")
                        .entry(key)
                        .or_insert(Value::Null);
                }
                ResolvedStep::Index(index) => {
                    if !cursor.is_array() {
                        *cursor = json!([]);
                    }
                    let array = cursor.as_array_mut().expect("just coerced to array");
                    if array.len() <= index {
                        array.resize(index + 1, Value::Null);
                    }
                    cursor = &mut array[index];
                }
            }
        }
        *cursor = value;
        Ok(())
    }

    fn eval(&mut self, expr: &Expr) -> Result<Value, Jx9Error> {
        self.tick()?;
        match expr {
            Expr::Null => Ok(Value::Null),
            Expr::Bool(b) => Ok(json!(b)),
            Expr::Int(n) => Ok(json!(n)),
            Expr::Float(x) => Ok(json!(x)),
            Expr::Str(s) => Ok(json!(s)),
            Expr::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item)?);
                }
                Ok(Value::Array(out))
            }
            Expr::Object(fields) => {
                let mut map = serde_json::Map::new();
                for (key, value_expr) in fields {
                    map.insert(key.clone(), self.eval(value_expr)?);
                }
                Ok(Value::Object(map))
            }
            Expr::Var(name) => Ok(self.vars.get(name).cloned().unwrap_or(Value::Null)),
            Expr::Member(base, field) => {
                let base = self.eval(base)?;
                Ok(base.get(field).cloned().unwrap_or(Value::Null))
            }
            Expr::Index(base, index) => {
                let base = self.eval(base)?;
                let index = self.eval(index)?;
                match (&base, &index) {
                    (Value::Array(a), Value::Number(n)) => Ok(n
                        .as_u64()
                        .and_then(|i| a.get(i as usize))
                        .cloned()
                        .unwrap_or(Value::Null)),
                    (Value::Object(o), Value::String(s)) => {
                        Ok(o.get(s).cloned().unwrap_or(Value::Null))
                    }
                    _ => Ok(Value::Null),
                }
            }
            Expr::Unary("!", inner) => Ok(json!(!truthy(&self.eval(inner)?))),
            Expr::Unary("-", inner) => {
                let v = self.eval(inner)?;
                let n = as_number(&v).ok_or_else(|| Jx9Error(format!("cannot negate {v}")))?;
                Ok(number_value(-n))
            }
            Expr::Unary(op, _) => Err(Jx9Error(format!("unknown unary '{op}'"))),
            Expr::Binary(op, left, right) => self.binary(op, left, right),
            Expr::Call(name, args) => {
                let mut values = Vec::with_capacity(args.len());
                // array_push mutates its first argument (a variable).
                if name == "array_push" {
                    return self.builtin_array_push(args);
                }
                for arg in args {
                    values.push(self.eval(arg)?);
                }
                self.builtin(name, values)
            }
        }
    }

    fn binary(&mut self, op: &str, left: &Expr, right: &Expr) -> Result<Value, Jx9Error> {
        // Short-circuit logical operators.
        if op == "&&" {
            let l = self.eval(left)?;
            if !truthy(&l) {
                return Ok(json!(false));
            }
            return Ok(json!(truthy(&self.eval(right)?)));
        }
        if op == "||" {
            let l = self.eval(left)?;
            if truthy(&l) {
                return Ok(json!(true));
            }
            return Ok(json!(truthy(&self.eval(right)?)));
        }
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        match op {
            "==" => Ok(json!(l == r)),
            "!=" => Ok(json!(l != r)),
            "<" | "<=" | ">" | ">=" => {
                let result = match (&l, &r) {
                    (Value::String(a), Value::String(b)) => match op {
                        "<" => a < b,
                        "<=" => a <= b,
                        ">" => a > b,
                        _ => a >= b,
                    },
                    _ => {
                        let a = as_number(&l)
                            .ok_or_else(|| Jx9Error(format!("cannot compare {l}")))?;
                        let b = as_number(&r)
                            .ok_or_else(|| Jx9Error(format!("cannot compare {r}")))?;
                        match op {
                            "<" => a < b,
                            "<=" => a <= b,
                            ">" => a > b,
                            _ => a >= b,
                        }
                    }
                };
                Ok(json!(result))
            }
            "+" => match (&l, &r) {
                // `+` concatenates strings and arrays, like Jx9.
                (Value::String(a), Value::String(b)) => Ok(json!(format!("{a}{b}"))),
                (Value::Array(a), Value::Array(b)) => {
                    let mut out = a.clone();
                    out.extend(b.iter().cloned());
                    Ok(Value::Array(out))
                }
                _ => self.arith(op, &l, &r),
            },
            "-" | "*" | "/" | "%" => self.arith(op, &l, &r),
            _ => Err(Jx9Error(format!("unknown operator '{op}'"))),
        }
    }

    fn arith(&self, op: &str, l: &Value, r: &Value) -> Result<Value, Jx9Error> {
        let a = as_number(l).ok_or_else(|| Jx9Error(format!("non-numeric operand {l}")))?;
        let b = as_number(r).ok_or_else(|| Jx9Error(format!("non-numeric operand {r}")))?;
        let result = match op {
            "+" => a + b,
            "-" => a - b,
            "*" => a * b,
            "/" => {
                if b == 0.0 {
                    return Err(Jx9Error("division by zero".into()));
                }
                a / b
            }
            "%" => {
                if b == 0.0 {
                    return Err(Jx9Error("modulo by zero".into()));
                }
                a % b
            }
            _ => unreachable!(),
        };
        Ok(number_value(result))
    }

    fn builtin_array_push(&mut self, args: &[Expr]) -> Result<Value, Jx9Error> {
        let [target, rest @ ..] = args else {
            return Err(Jx9Error("array_push needs a target".into()));
        };
        let Expr::Var(name) = target else {
            return Err(Jx9Error("array_push target must be a variable".into()));
        };
        let mut values = Vec::with_capacity(rest.len());
        for arg in rest {
            values.push(self.eval(arg)?);
        }
        let slot = self.vars.entry(name.clone()).or_insert_with(|| json!([]));
        if !slot.is_array() {
            return Err(Jx9Error(format!("array_push on non-array ${name}")));
        }
        let array = slot.as_array_mut().expect("checked");
        let count = values.len();
        array.extend(values);
        let _ = count;
        Ok(json!(array.len()))
    }

    fn builtin(&mut self, name: &str, args: Vec<Value>) -> Result<Value, Jx9Error> {
        match (name, args.as_slice()) {
            ("count", [Value::Array(a)]) => Ok(json!(a.len())),
            ("count", [Value::Object(o)]) => Ok(json!(o.len())),
            ("count", [Value::String(s)]) => Ok(json!(s.len())),
            ("count", [Value::Null]) => Ok(json!(0)),
            ("keys", [Value::Object(o)]) => {
                Ok(Value::Array(o.keys().map(|k| json!(k)).collect()))
            }
            ("values", [Value::Object(o)]) => Ok(Value::Array(o.values().cloned().collect())),
            ("contains", [Value::Array(a), needle]) => Ok(json!(a.contains(needle))),
            ("contains", [Value::String(s), Value::String(sub)]) => {
                Ok(json!(s.contains(sub.as_str())))
            }
            ("contains", [Value::Object(o), Value::String(key)]) => {
                Ok(json!(o.contains_key(key)))
            }
            ("concat", values) => {
                let mut out = String::new();
                for v in values {
                    match v {
                        Value::String(s) => out.push_str(s),
                        other => out.push_str(&other.to_string()),
                    }
                }
                Ok(json!(out))
            }
            ("min", values) | ("max", values) if !values.is_empty() => {
                let mut best: Option<f64> = None;
                for v in values {
                    let n =
                        as_number(v).ok_or_else(|| Jx9Error(format!("{name} of non-number")))?;
                    best = Some(match best {
                        None => n,
                        Some(b) if name == "min" => b.min(n),
                        Some(b) => b.max(n),
                    });
                }
                Ok(number_value(best.expect("nonempty")))
            }
            _ => Err(Jx9Error(format!("unknown function '{name}' ({} args)", args.len()))),
        }
    }
}

enum ResolvedStep {
    Key(String),
    Index(usize),
}

#[cfg(test)]
mod tests {
    use super::super::eval;
    use super::*;

    #[test]
    fn listing4_exact_program() {
        let config = json!({
            "providers": [
                {"name": "myProviderA", "type": "A"},
                {"name": "myProviderB", "type": "B"},
                {"name": "remi", "type": "remi"},
            ]
        });
        let script = r#"
            $result = [];
            foreach ($__config__.providers as $p) {
                array_push($result, $p.name); }
            return $result;
        "#;
        assert_eq!(
            eval(script, &config).unwrap(),
            json!(["myProviderA", "myProviderB", "remi"])
        );
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("return 1 + 2 * 3;", &Value::Null).unwrap(), json!(7));
        assert_eq!(eval("return (1 + 2) * 3;", &Value::Null).unwrap(), json!(9));
        assert_eq!(eval("return 7 % 3;", &Value::Null).unwrap(), json!(1));
        assert_eq!(eval("return 1 / 2;", &Value::Null).unwrap(), json!(0.5));
        assert_eq!(eval("return -3 + 1;", &Value::Null).unwrap(), json!(-2));
    }

    #[test]
    fn string_and_array_plus() {
        assert_eq!(eval(r#"return "a" + "b";"#, &Value::Null).unwrap(), json!("ab"));
        assert_eq!(eval("return [1] + [2, 3];", &Value::Null).unwrap(), json!([1, 2, 3]));
    }

    #[test]
    fn conditionals_and_loops() {
        let script = r#"
            $n = 0; $sum = 0;
            while ($n < 5) { $sum = $sum + $n; $n = $n + 1; }
            if ($sum == 10) { return "ten"; } else { return $sum; }
        "#;
        assert_eq!(eval(script, &Value::Null).unwrap(), json!("ten"));
    }

    #[test]
    fn foreach_with_key_over_object() {
        let config = json!({"pools": {"p1": 1, "p2": 2}});
        let script = r#"
            $names = [];
            foreach ($__config__.pools as $name => $v) { array_push($names, $name); }
            return $names;
        "#;
        let result = eval(script, &config).unwrap();
        let names: Vec<String> =
            result.as_array().unwrap().iter().map(|v| v.as_str().unwrap().into()).collect();
        assert!(names.contains(&"p1".to_string()) && names.contains(&"p2".to_string()));
    }

    #[test]
    fn member_of_missing_field_is_null() {
        assert_eq!(eval("return $__config__.ghost.deep;", &json!({})).unwrap(), Value::Null);
    }

    #[test]
    fn filtering_query() {
        let config = json!({"providers": [
            {"name": "a", "type": "yokan"},
            {"name": "b", "type": "warabi"},
            {"name": "c", "type": "yokan"},
        ]});
        let script = r#"
            $out = [];
            foreach ($__config__.providers as $p) {
                if ($p.type == "yokan") { array_push($out, $p.name); } }
            return $out;
        "#;
        assert_eq!(eval(script, &config).unwrap(), json!(["a", "c"]));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("return count([1,2,3]);", &Value::Null).unwrap(), json!(3));
        assert_eq!(
            eval(r#"return contains([1,2], 2);"#, &Value::Null).unwrap(),
            json!(true)
        );
        assert_eq!(
            eval(r#"return concat("a", 1, "b");"#, &Value::Null).unwrap(),
            json!("a1b")
        );
        assert_eq!(eval("return min(3, 1, 2);", &Value::Null).unwrap(), json!(1));
        assert_eq!(eval("return max(3, 1, 2);", &Value::Null).unwrap(), json!(3));
        assert_eq!(
            eval(r#"return keys({"a" => 1});"#, &Value::Null).unwrap(),
            json!(["a"])
        );
    }

    #[test]
    fn nested_assignment_paths() {
        let script = r#"
            $x = {};
            $x.list = [];
            $x.list[2] = "third";
            $x.meta.count = 3;
            return $x;
        "#;
        assert_eq!(
            eval(script, &Value::Null).unwrap(),
            json!({"list": [null, null, "third"], "meta": {"count": 3}})
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(eval("return 1 / 0;", &Value::Null).is_err());
        assert!(eval("return 1 % 0;", &Value::Null).is_err());
    }

    #[test]
    fn infinite_loop_hits_iteration_cap() {
        let err = eval("while (true) { $x = 1; }", &Value::Null).unwrap_err();
        assert!(err.0.contains("iteration limit"));
    }

    #[test]
    fn script_without_return_yields_null() {
        assert_eq!(eval("$x = 5;", &Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(eval(r#"if ([]) { return 1; } return 0;"#, &Value::Null).unwrap(), json!(0));
        assert_eq!(eval(r#"if ("x") { return 1; } return 0;"#, &Value::Null).unwrap(), json!(1));
        assert_eq!(eval(r#"if (0) { return 1; } return 0;"#, &Value::Null).unwrap(), json!(0));
        assert_eq!(eval(r#"return !null;"#, &Value::Null).unwrap(), json!(true));
    }

    #[test]
    fn logical_short_circuit() {
        // The RHS would error (unknown function); && must not evaluate it.
        assert_eq!(
            eval("return false && boom();", &Value::Null).unwrap(),
            json!(false)
        );
        assert_eq!(eval("return true || boom();", &Value::Null).unwrap(), json!(true));
    }
}
