//! A Jx9 interpreter subset for configuration queries (paper §5,
//! Listing 4).
//!
//! Bedrock lets clients query a process's configuration with Jx9, "a
//! lightweight, embeddable scripting language designed to handle queries
//! on JSON documents". We implement the dialect the paper exercises plus
//! the obvious conveniences:
//!
//! * values are JSON values (null, bool, int, float, string, array, object),
//! * variables `$x`, the bound configuration is `$__config__`,
//! * member access `$obj.field`, indexing `$arr[expr]`,
//! * `foreach ($collection as $v)` and `foreach (… as $k => $v)`,
//! * `if`/`else`, `while`, `return`, compound statements,
//! * operators `== != < <= > >= + - * / % && || !` and unary minus,
//! * builtins: `array_push`, `count`, `keys`, `values`, `contains`,
//!   `concat`, `min`, `max`.
//!
//! The exact program of Listing 4 is a unit test below.
//!
//! ```
//! use mochi_bedrock::jx9;
//! let config = serde_json::json!({"providers": [{"name": "a"}, {"name": "b"}]});
//! let script = r#"
//!     $result = [];
//!     foreach ($__config__.providers as $p) {
//!         array_push($result, $p.name); }
//!     return $result;
//! "#;
//! assert_eq!(jx9::eval(script, &config).unwrap(), serde_json::json!(["a", "b"]));
//! ```

mod interp;
mod lexer;
mod parser;

pub use interp::eval_with_bindings;
pub use lexer::{tokenize, Token};
pub use parser::{parse, Expr, Stmt};

use serde_json::Value;

/// Error raised by any phase of evaluation, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Jx9Error(pub String);

impl std::fmt::Display for Jx9Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jx9: {}", self.0)
    }
}

impl std::error::Error for Jx9Error {}

/// Evaluates `script` with `$__config__` bound to `config`. Returns the
/// value of the `return` statement (or `null` if the script falls off the
/// end).
pub fn eval(script: &str, config: &Value) -> Result<Value, Jx9Error> {
    eval_with_bindings(script, &[("__config__", config.clone())])
}
