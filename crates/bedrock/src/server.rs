//! The Bedrock server: "a component meant to manage other providers
//! running in a Mochi process" (paper §5).
//!
//! It follows the standard component architecture (Figure 1): the server
//! side here manages the process configuration as its resource; the client
//! side ([`crate::client`]) provides remote access. A [`BedrockServer`]:
//!
//! * bootstraps a process from a Listing-3 configuration (Margo section,
//!   libraries, providers) with dependency resolution,
//! * supports online changes: pools, xstreams, module loading, provider
//!   start/stop (Listing 5),
//! * controls migration (Observation 5): quiesce → stop → REMI-transfer →
//!   restart on the destination, with dependency checks,
//! * exposes checkpoint/restore hooks (Observation 9),
//! * participates in two-phase-commit transactions for consistent
//!   cross-process changes ([`crate::txn`]).

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use serde_json::{json, Value};

use mochi_margo::{MargoRuntime, MargoError};
use mochi_mercury::{Address, CallContext, Fabric};
use mochi_remi::{MigrationOptions, RemiClient, RemiProvider, Strategy};

use crate::config::{parse_dependency, DependencyTarget, ProcessConfig, ProviderSpec};
use crate::error::BedrockError;
use crate::jx9;
use crate::module::{Module, ModuleCatalog, ProviderContext, ProviderInstance, ResolvedDependency};
use crate::txn::{TxnOp, TxnTable};

/// Provider id of the REMI provider every Bedrock process registers for
/// migration support (the components' "dependency on a REMI provider").
pub const REMI_PROVIDER_ID: u16 = 65_000;

/// RPC names and argument types of the Bedrock protocol.
pub mod proto {
    use serde::{Deserialize, Serialize};

    use crate::config::ProviderSpec;
    use crate::txn::TxnOp;

    // The RPC-name constants live in `crate::rpc_names` (shared by the
    // server registration sites and the client call sites); re-exported
    // here so `proto::GET_CONFIG`-style paths keep working.
    pub use crate::rpc_names::*;

    /// Arguments of `query`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct QueryArgs {
        /// Jx9 script; `$__config__` is bound to the process config.
        pub script: String,
    }

    /// Arguments of `load_module`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct LoadModuleArgs {
        /// Provider type name (the `libraries` key).
        pub type_name: String,
        /// Library path (the `libraries` value).
        pub library: String,
    }

    /// Arguments of `lookup_provider` and `stop_provider`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct NameArgs {
        /// Provider name.
        pub name: String,
    }

    /// Reply of `lookup_provider`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct ProviderInfo {
        /// Provider name.
        pub name: String,
        /// Provider type.
        pub type_name: String,
        /// Provider id.
        pub provider_id: u16,
    }

    /// Arguments of `migrate_provider`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct MigrateArgs {
        /// Provider to migrate away.
        pub name: String,
        /// Destination process address.
        pub dest: String,
        /// Transfer strategy.
        pub strategy: mochi_remi::Strategy,
    }

    /// Reply of `migrate_provider`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct MigrateReply {
        /// Files moved.
        pub files: u64,
        /// Bytes moved.
        pub bytes: u64,
        /// Seconds the transfer took.
        pub duration_s: f64,
    }

    /// Arguments of `checkpoint_provider` / `restore_provider`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct CheckpointArgs {
        /// Provider name.
        pub name: String,
        /// Directory on shared storage.
        pub path: String,
    }

    /// Arguments of `add_dependent` / `remove_dependent`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct DependentArgs {
        /// The local provider being depended upon.
        pub provider: String,
        /// The remote dependent, as `name@address`.
        pub dependent: String,
    }

    /// Arguments of `txn_prepare`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct TxnPrepareArgs {
        /// Transaction id chosen by the coordinator.
        pub txn_id: String,
        /// Operations addressed to this process.
        pub ops: Vec<TxnOp>,
    }

    /// Arguments of `txn_commit` / `txn_abort`.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    pub struct TxnIdArgs {
        /// Transaction id.
        pub txn_id: String,
    }

    /// Arguments of `start_provider`: just the spec.
    pub type StartArgs = ProviderSpec;
}

struct ProviderRecord {
    spec: ProviderSpec,
    pool: String,
    instance: Box<dyn ProviderInstance>,
}

/// Loaded modules: provider type → (library path, factory).
type LoadedModules = BTreeMap<String, (String, Arc<dyn Module>)>;

struct ServerInner {
    margo: MargoRuntime,
    catalog: ModuleCatalog,
    loaded: Mutex<LoadedModules>,
    providers: Mutex<BTreeMap<String, ProviderRecord>>,
    data_dir: PathBuf,
    provider_id: u16,
    pool: String,
    txns: Mutex<TxnTable>,
    remi: Mutex<Option<Arc<RemiProvider>>>,
    /// Cross-process reverse dependencies: local provider name →
    /// dependents registered from other processes (`name@address`). The
    /// paper: Bedrock "check[s] that the resulting configuration remains
    /// valid … includes carrying these checks across Bedrock processes".
    remote_dependents: Mutex<BTreeMap<String, std::collections::BTreeSet<String>>>,
}

/// A running Bedrock-managed process.
#[derive(Clone)]
pub struct BedrockServer {
    inner: Arc<ServerInner>,
}

impl BedrockServer {
    /// Boots a full process: Margo from `config.margo`, the Bedrock
    /// provider, the migration (REMI) provider, the configured libraries,
    /// and the configured providers in dependency order.
    ///
    /// `data_dir` plays the node-local storage device; each provider gets
    /// `data_dir/providers/<name>`.
    pub fn bootstrap(
        fabric: &Fabric,
        addr: Address,
        config: &ProcessConfig,
        catalog: ModuleCatalog,
        data_dir: impl Into<PathBuf>,
    ) -> Result<Self, BedrockError> {
        config.validate()?;
        let margo = MargoRuntime::init(fabric, addr, &config.margo)
            .map_err(BedrockError::Margo)?;
        Self::attach(margo, config, catalog, data_dir)
    }

    /// Attaches Bedrock to an existing Margo runtime and applies the
    /// `libraries`/`providers`/`bedrock` sections of `config`.
    pub fn attach(
        margo: MargoRuntime,
        config: &ProcessConfig,
        catalog: ModuleCatalog,
        data_dir: impl Into<PathBuf>,
    ) -> Result<Self, BedrockError> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| BedrockError::Provider(format!("creating data dir: {e}")))?;
        let pool = match &config.bedrock.pool {
            Some(pool) => pool.clone(),
            None => margo.default_rpc_pool(),
        };
        let inner = Arc::new(ServerInner {
            margo: margo.clone(),
            catalog,
            loaded: Mutex::new(BTreeMap::new()),
            providers: Mutex::new(BTreeMap::new()),
            data_dir: data_dir.clone(),
            provider_id: config.bedrock.provider_id,
            pool: pool.clone(),
            txns: Mutex::new(TxnTable::new()),
            remi: Mutex::new(None),
            remote_dependents: Mutex::new(BTreeMap::new()),
        });
        let server = Self { inner };
        // Migration support: a REMI provider rooted at the data dir.
        let remi = RemiProvider::register(&margo, REMI_PROVIDER_ID, &data_dir, Some(&pool))
            .map_err(BedrockError::Margo)?;
        *server.inner.remi.lock() = Some(remi);
        server.register_rpcs()?;
        for (type_name, library) in &config.libraries {
            server.load_module(type_name, library)?;
        }
        for spec in Self::dependency_order(&config.providers)? {
            server.start_provider(&spec)?;
        }
        Ok(server)
    }

    /// Orders provider specs so local dependencies start first.
    fn dependency_order(specs: &[ProviderSpec]) -> Result<Vec<ProviderSpec>, BedrockError> {
        let mut remaining: Vec<ProviderSpec> = specs.to_vec();
        let mut started: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut ordered = Vec::with_capacity(specs.len());
        while !remaining.is_empty() {
            let ready: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, spec)| {
                    spec.dependencies.values().all(|dep| match parse_dependency(dep) {
                        Ok(DependencyTarget::Local(name)) => started.contains(&name),
                        _ => true, // remote (or invalid — caught later)
                    })
                })
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                let names: Vec<&str> = remaining.iter().map(|s| s.name.as_str()).collect();
                return Err(BedrockError::BadConfig(format!(
                    "circular or unsatisfiable local dependencies among {names:?}"
                )));
            }
            for index in ready.into_iter().rev() {
                let spec = remaining.remove(index);
                started.insert(spec.name.clone());
                ordered.push(spec);
            }
        }
        Ok(ordered)
    }

    /// The process's Margo runtime.
    pub fn margo(&self) -> &MargoRuntime {
        &self.inner.margo
    }

    /// The process address.
    pub fn address(&self) -> Address {
        self.inner.margo.address()
    }

    /// Bedrock's provider id on this process.
    pub fn provider_id(&self) -> u16 {
        self.inner.provider_id
    }

    /// The node-local data directory.
    pub fn data_dir(&self) -> &std::path::Path {
        &self.inner.data_dir
    }

    // ------------------------------------------------------------------
    // Local API (everything the RPCs call into)
    // ------------------------------------------------------------------

    /// Loads a module ("dlopen" from the catalog) for `type_name`.
    pub fn load_module(&self, type_name: &str, library: &str) -> Result<(), BedrockError> {
        let module = self
            .inner
            .catalog
            .resolve(library)
            .ok_or_else(|| BedrockError::LibraryNotFound(library.to_string()))?;
        self.inner
            .loaded
            .lock()
            .insert(type_name.to_string(), (library.to_string(), module));
        Ok(())
    }

    fn resolve_dependencies(
        &self,
        spec: &ProviderSpec,
        cx: CallContext,
    ) -> Result<HashMap<String, ResolvedDependency>, BedrockError> {
        let mut resolved = HashMap::new();
        let self_addr = self.address();
        for (logical, dep) in &spec.dependencies {
            let target = parse_dependency(dep)?;
            let (name, address) = match target {
                DependencyTarget::Local(name) => (name, self_addr.clone()),
                DependencyTarget::Remote { name, address } => {
                    let address: Address = address.parse().map_err(|e| {
                        BedrockError::DependencyError {
                            provider: spec.name.clone(),
                            dependency: dep.clone(),
                            reason: format!("{e}"),
                        }
                    })?;
                    (name, address)
                }
            };
            let info = if address == self_addr {
                let providers = self.inner.providers.lock();
                let record = providers.get(&name).ok_or_else(|| BedrockError::DependencyError {
                    provider: spec.name.clone(),
                    dependency: dep.clone(),
                    reason: "no such local provider".into(),
                })?;
                proto::ProviderInfo {
                    name: name.clone(),
                    type_name: record.spec.type_name.clone(),
                    provider_id: record.spec.provider_id,
                }
            } else {
                self.inner
                    .margo
                    .forward_with_context::<_, proto::ProviderInfo>(
                        &address,
                        proto::LOOKUP_PROVIDER,
                        self.inner.provider_id,
                        &proto::NameArgs { name: name.clone() },
                        cx,
                    )
                    .map_err(|e| BedrockError::DependencyError {
                        provider: spec.name.clone(),
                        dependency: dep.clone(),
                        reason: e.to_string(),
                    })?
            };
            // Record the reverse edge on the dependency's process, so a
            // later stop of the dependency sees this dependent.
            let dependent_tag = format!("{}@{}", spec.name, self_addr);
            if address == self_addr {
                self.inner
                    .remote_dependents
                    .lock()
                    .entry(info.name.clone())
                    .or_default()
                    .insert(dependent_tag);
            } else {
                let _: Result<bool, _> = self.inner.margo.forward_with_context(
                    &address,
                    proto::ADD_DEPENDENT,
                    self.inner.provider_id,
                    &proto::DependentArgs {
                        provider: info.name.clone(),
                        dependent: dependent_tag,
                    },
                    cx,
                );
            }
            resolved.insert(
                logical.clone(),
                ResolvedDependency {
                    spec: dep.clone(),
                    name: info.name,
                    address,
                    provider_id: info.provider_id,
                    type_name: info.type_name,
                },
            );
        }
        Ok(resolved)
    }

    /// Drops the reverse edges this provider registered on its
    /// dependencies' processes (best-effort: the dependency process may
    /// already be gone).
    fn deregister_dependents(&self, spec: &ProviderSpec, cx: CallContext) {
        let self_addr = self.address();
        let dependent_tag = format!("{}@{}", spec.name, self_addr);
        for dep in spec.dependencies.values() {
            let Ok(target) = parse_dependency(dep) else { continue };
            let (name, address) = match target {
                DependencyTarget::Local(name) => (name, self_addr.clone()),
                DependencyTarget::Remote { name, address } => {
                    match address.parse() {
                        Ok(addr) => (name, addr),
                        Err(_) => continue,
                    }
                }
            };
            if address == self_addr {
                let mut map = self.inner.remote_dependents.lock();
                if let Some(set) = map.get_mut(&name) {
                    set.remove(&dependent_tag);
                    if set.is_empty() {
                        map.remove(&name);
                    }
                }
            } else {
                let _: Result<bool, _> = self.inner.margo.forward_with_context(
                    &address,
                    proto::REMOVE_DEPENDENT,
                    self.inner.provider_id,
                    &proto::DependentArgs { provider: name, dependent: dependent_tag.clone() },
                    cx,
                );
            }
        }
    }

    fn registered_dependents(&self, name: &str) -> Vec<String> {
        self.inner
            .remote_dependents
            .lock()
            .get(name)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Starts a provider from its spec (Listing 5's `startProvider`).
    pub fn start_provider(&self, spec: &ProviderSpec) -> Result<(), BedrockError> {
        self.start_provider_cx(spec, CallContext::TOP_LEVEL)
    }

    /// [`Self::start_provider`] with an explicit calling context: the RPC
    /// handler passes `ctx.nested_context()` so dependency lookups on
    /// other processes inherit the caller's remaining deadline budget.
    fn start_provider_cx(&self, spec: &ProviderSpec, cx: CallContext) -> Result<(), BedrockError> {
        // Preconditions that don't need the instance yet.
        {
            let providers = self.inner.providers.lock();
            if providers.contains_key(&spec.name) {
                return Err(BedrockError::ProviderExists(spec.name.clone()));
            }
            if providers.values().any(|r| r.spec.provider_id == spec.provider_id)
                || spec.provider_id == self.inner.provider_id
                || spec.provider_id == REMI_PROVIDER_ID
            {
                return Err(BedrockError::BadConfig(format!(
                    "provider id {} already in use",
                    spec.provider_id
                )));
            }
            if self.inner.txns.lock().blocks_start(&spec.name) {
                return Err(BedrockError::TxnConflict(format!(
                    "provider '{}' is locked by a prepared transaction",
                    spec.name
                )));
            }
        }
        let module = {
            let loaded = self.inner.loaded.lock();
            loaded
                .get(&spec.type_name)
                .map(|(_, m)| Arc::clone(m))
                .ok_or_else(|| BedrockError::ModuleNotLoaded(spec.type_name.clone()))?
        };
        let pool = match &spec.pool {
            Some(pool) => {
                if self.inner.margo.find_pool_by_name(pool).is_none() {
                    return Err(BedrockError::BadConfig(format!("pool '{pool}' not found")));
                }
                pool.clone()
            }
            None => self.inner.margo.default_rpc_pool(),
        };
        let dependencies = self.resolve_dependencies(spec, cx)?;
        let data_dir = self.inner.data_dir.join("providers").join(&spec.name);
        std::fs::create_dir_all(&data_dir)
            .map_err(|e| BedrockError::Provider(format!("creating provider dir: {e}")))?;
        let instance = module
            .create(ProviderContext {
                margo: self.inner.margo.clone(),
                name: spec.name.clone(),
                provider_id: spec.provider_id,
                pool: pool.clone(),
                config: spec.config.clone(),
                dependencies,
                data_dir,
            })
            .map_err(BedrockError::Provider)?;
        let mut providers = self.inner.providers.lock();
        if providers.contains_key(&spec.name) {
            // Lost a race; roll back the instance we just created.
            drop(providers);
            let _ = instance.stop();
            return Err(BedrockError::ProviderExists(spec.name.clone()));
        }
        providers.insert(spec.name.clone(), ProviderRecord { spec: spec.clone(), pool, instance });
        Ok(())
    }

    fn local_dependents(&self, name: &str) -> Vec<String> {
        let self_addr = self.address().to_string();
        self.inner
            .providers
            .lock()
            .values()
            .filter(|record| {
                record.spec.dependencies.values().any(|dep| match parse_dependency(dep) {
                    Ok(DependencyTarget::Local(n)) => n == name,
                    Ok(DependencyTarget::Remote { name: n, address }) => {
                        n == name && address == self_addr
                    }
                    Err(_) => false,
                })
            })
            .map(|record| record.spec.name.clone())
            .collect()
    }

    /// Stops and removes a provider (Listing 5's `stopProvider` mirror).
    pub fn stop_provider(&self, name: &str) -> Result<(), BedrockError> {
        self.stop_provider_cx(name, CallContext::TOP_LEVEL)
    }

    fn stop_provider_cx(&self, name: &str, cx: CallContext) -> Result<(), BedrockError> {
        if self.inner.txns.lock().blocks_stop(name) {
            return Err(BedrockError::TxnConflict(format!(
                "provider '{name}' is locked by a prepared transaction"
            )));
        }
        let mut dependents = self.local_dependents(name);
        dependents.extend(self.registered_dependents(name));
        dependents.sort();
        dependents.dedup();
        if !dependents.is_empty() {
            return Err(BedrockError::ProviderInUse { provider: name.to_string(), dependents });
        }
        let record = {
            let mut providers = self.inner.providers.lock();
            providers
                .remove(name)
                .ok_or_else(|| BedrockError::ProviderNotFound(name.to_string()))?
        };
        self.deregister_dependents(&record.spec, cx);
        record.instance.stop().map_err(BedrockError::Provider)
    }

    /// Looks up a provider's routing info.
    pub fn lookup_provider(&self, name: &str) -> Result<proto::ProviderInfo, BedrockError> {
        let providers = self.inner.providers.lock();
        let record = providers
            .get(name)
            .ok_or_else(|| BedrockError::ProviderNotFound(name.to_string()))?;
        Ok(proto::ProviderInfo {
            name: name.to_string(),
            type_name: record.spec.type_name.clone(),
            provider_id: record.spec.provider_id,
        })
    }

    /// Names of currently running providers.
    pub fn provider_names(&self) -> Vec<String> {
        self.inner.providers.lock().keys().cloned().collect()
    }

    /// Migrates provider `name` to the Bedrock process at `dest`
    /// (Observation 5): quiesce, stop locally, transfer the fileset with
    /// REMI, restart on the destination with the same spec.
    pub fn migrate_provider(
        &self,
        name: &str,
        dest: &Address,
        strategy: Strategy,
    ) -> Result<proto::MigrateReply, BedrockError> {
        self.migrate_provider_cx(name, dest, strategy, CallContext::TOP_LEVEL)
    }

    fn migrate_provider_cx(
        &self,
        name: &str,
        dest: &Address,
        strategy: Strategy,
        cx: CallContext,
    ) -> Result<proto::MigrateReply, BedrockError> {
        if *dest == self.address() {
            return Err(BedrockError::BadConfig("cannot migrate a provider to itself".into()));
        }
        if self.inner.txns.lock().blocks_stop(name) {
            return Err(BedrockError::TxnConflict(format!(
                "provider '{name}' is locked by a prepared transaction"
            )));
        }
        let mut dependents = self.local_dependents(name);
        dependents.extend(self.registered_dependents(name));
        if !dependents.is_empty() {
            return Err(BedrockError::ProviderInUse { provider: name.to_string(), dependents });
        }
        // Quiesce and detach.
        let record = {
            let mut providers = self.inner.providers.lock();
            providers
                .remove(name)
                .ok_or_else(|| BedrockError::ProviderNotFound(name.to_string()))?
        };
        record.instance.prepare_migration().map_err(BedrockError::Provider)?;
        let fileset = match record.instance.fileset() {
            Some(fileset) => fileset,
            None => {
                // Roll back: the provider stays where it was.
                self.inner.providers.lock().insert(name.to_string(), record);
                return Err(BedrockError::Provider(format!(
                    "provider '{name}' does not support migration"
                )));
            }
        };
        record.instance.stop().map_err(BedrockError::Provider)?;
        self.deregister_dependents(&record.spec, cx);
        // Transfer the files into the destination's provider directory.
        let remi = RemiClient::new(&self.inner.margo).with_context(cx);
        let options = MigrationOptions {
            dest_subdir: Some(format!("providers/{name}")),
            remove_source: true,
            timeout: self.inner.margo.rpc_timeout(),
        };
        let report = remi
            .migrate(dest, REMI_PROVIDER_ID, &fileset, strategy, &options)
            .map_err(BedrockError::Margo)?;
        // Restart remotely with the same spec. A spec pool that does not
        // exist on the destination falls back to its default pool.
        let mut spec = record.spec.clone();
        spec.pool = None;
        let _: bool = self
            .inner
            .margo
            .forward_with_context(dest, proto::START_PROVIDER, self.inner.provider_id, &spec, cx)
            .map_err(BedrockError::Margo)?;
        Ok(proto::MigrateReply {
            files: report.files,
            bytes: report.bytes,
            duration_s: report.duration_s,
        })
    }

    /// Checkpoints provider `name` into `dir` (Observation 9; `dir` plays
    /// the parallel file system).
    pub fn checkpoint_provider(&self, name: &str, dir: &str) -> Result<(), BedrockError> {
        let providers = self.inner.providers.lock();
        let record = providers
            .get(name)
            .ok_or_else(|| BedrockError::ProviderNotFound(name.to_string()))?;
        record.instance.checkpoint(std::path::Path::new(dir)).map_err(BedrockError::Provider)
    }

    /// Restores provider `name` from the checkpoint in `dir`.
    pub fn restore_provider(&self, name: &str, dir: &str) -> Result<(), BedrockError> {
        let providers = self.inner.providers.lock();
        let record = providers
            .get(name)
            .ok_or_else(|| BedrockError::ProviderNotFound(name.to_string()))?;
        record.instance.restore(std::path::Path::new(dir)).map_err(BedrockError::Provider)
    }

    /// The process configuration as JSON — the `$__config__` documents of
    /// Listing 4 and the payload of `getConfig`.
    pub fn get_config(&self) -> Value {
        let loaded = self.inner.loaded.lock();
        let libraries: serde_json::Map<String, Value> =
            loaded.iter().map(|(t, (lib, _))| (t.clone(), json!(lib))).collect();
        let providers: Vec<Value> = self
            .inner
            .providers
            .lock()
            .values()
            .map(|record| {
                let mut spec =
                    serde_json::to_value(&record.spec).expect("spec serializes");
                spec["pool"] = json!(record.pool);
                spec["state"] = record.instance.config();
                spec
            })
            .collect();
        json!({
            "margo": self.inner.margo.config_json(),
            "libraries": libraries,
            "providers": providers,
            "bedrock": {
                "provider_id": self.inner.provider_id,
                "pool": self.inner.pool,
            },
        })
    }

    /// Evaluates a Jx9 query against the live configuration (Listing 4).
    pub fn query(&self, script: &str) -> Result<Value, BedrockError> {
        jx9::eval(script, &self.get_config()).map_err(|e| BedrockError::BadConfig(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    fn txn_prepare(&self, txn_id: &str, ops: Vec<TxnOp>) -> Result<(), BedrockError> {
        // Validate preconditions before locking.
        for op in &ops {
            match op {
                TxnOp::StartProvider { spec } => {
                    if self.inner.providers.lock().contains_key(&spec.name) {
                        return Err(BedrockError::ProviderExists(spec.name.clone()));
                    }
                    if !self.inner.loaded.lock().contains_key(&spec.type_name) {
                        return Err(BedrockError::ModuleNotLoaded(spec.type_name.clone()));
                    }
                }
                TxnOp::StopProvider { name } => {
                    if !self.inner.providers.lock().contains_key(name) {
                        return Err(BedrockError::ProviderNotFound(name.clone()));
                    }
                    let mut dependents = self.local_dependents(name);
                    dependents.extend(self.registered_dependents(name));
                    if !dependents.is_empty() {
                        return Err(BedrockError::ProviderInUse {
                            provider: name.clone(),
                            dependents,
                        });
                    }
                }
                TxnOp::KeepProvider { name } => {
                    if !self.inner.providers.lock().contains_key(name) {
                        return Err(BedrockError::ProviderNotFound(name.clone()));
                    }
                }
            }
        }
        self.inner.txns.lock().prepare(txn_id, ops)
    }

    fn txn_commit(&self, txn_id: &str, cx: CallContext) -> Result<(), BedrockError> {
        let ops = self.inner.txns.lock().take_prepared(txn_id)?;
        for op in ops {
            match op {
                TxnOp::StartProvider { spec } => self.start_provider_cx(&spec, cx)?,
                TxnOp::StopProvider { name } => self.stop_provider_cx(&name, cx)?,
                TxnOp::KeepProvider { .. } => {}
            }
        }
        Ok(())
    }

    fn txn_abort(&self, txn_id: &str) -> Result<(), BedrockError> {
        self.inner.txns.lock().take_prepared(txn_id).map(|_| ())
    }

    // ------------------------------------------------------------------
    // RPC surface
    // ------------------------------------------------------------------

    fn register_rpcs(&self) -> Result<(), BedrockError> {
        let margo = self.inner.margo.clone();
        let id = self.inner.provider_id;
        let pool = self.inner.pool.clone();
        let reg = |name: &str,
                   handler: Box<dyn Fn(Value, CallContext) -> Result<Value, String> + Send + Sync>|
         -> Result<(), MargoError> {
            margo
                .register_typed(name, id, Some(&pool), move |args: Value, ctx| {
                    handler(args, ctx.nested_context())
                })
                .map(|_| ())
        };

        macro_rules! handler {
            ($rpc:expr, $args:ty, |$server:ident, $a:ident| $body:expr) => {
                handler!($rpc, $args, |$server, $a, _cx| $body)
            };
            ($rpc:expr, $args:ty, |$server:ident, $a:ident, $cx:ident| $body:expr) => {{
                let $server = self.clone();
                reg(
                    $rpc,
                    Box::new(move |value: Value, $cx: CallContext| {
                        let $a: $args = serde_json::from_value(value)
                            .map_err(|e| format!("bad arguments: {e}"))?;
                        $body
                    }),
                )
                .map_err(BedrockError::Margo)?;
            }};
        }

        handler!(proto::GET_CONFIG, (), |server, _a| Ok(server.get_config()));
        handler!(proto::QUERY, proto::QueryArgs, |server, a| {
            server.query(&a.script).map_err(|e| e.to_rpc_string())
        });
        handler!(proto::ADD_POOL, Value, |server, a| {
            let json = serde_json::to_string(&a).expect("value serializes");
            server
                .inner
                .margo
                .add_pool_from_json(&json)
                .map(|_| json!(true))
                .map_err(|e| e.to_string())
        });
        handler!(proto::REMOVE_POOL, proto::NameArgs, |server, a| {
            server.inner.margo.remove_pool(&a.name).map(|_| json!(true)).map_err(|e| e.to_string())
        });
        handler!(proto::ADD_XSTREAM, Value, |server, a| {
            let json = serde_json::to_string(&a).expect("value serializes");
            server
                .inner
                .margo
                .add_xstream_from_json(&json)
                .map(|_| json!(true))
                .map_err(|e| e.to_string())
        });
        handler!(proto::REMOVE_XSTREAM, proto::NameArgs, |server, a| {
            server
                .inner
                .margo
                .remove_xstream(&a.name)
                .map(|_| json!(true))
                .map_err(|e| e.to_string())
        });
        handler!(proto::LOAD_MODULE, proto::LoadModuleArgs, |server, a| {
            server
                .load_module(&a.type_name, &a.library)
                .map(|_| json!(true))
                .map_err(|e| e.to_rpc_string())
        });
        handler!(proto::START_PROVIDER, ProviderSpec, |server, a, cx| {
            server.start_provider_cx(&a, cx).map(|_| json!(true)).map_err(|e| e.to_rpc_string())
        });
        handler!(proto::STOP_PROVIDER, proto::NameArgs, |server, a, cx| {
            server.stop_provider_cx(&a.name, cx).map(|_| json!(true)).map_err(|e| e.to_rpc_string())
        });
        handler!(proto::LOOKUP_PROVIDER, proto::NameArgs, |server, a| {
            server
                .lookup_provider(&a.name)
                .map(|info| serde_json::to_value(info).expect("info serializes"))
                .map_err(|e| e.to_rpc_string())
        });
        handler!(proto::MIGRATE_PROVIDER, proto::MigrateArgs, |server, a, cx| {
            let dest: Address = a.dest.parse().map_err(|e| format!("{e}"))?;
            server
                .migrate_provider_cx(&a.name, &dest, a.strategy, cx)
                .map(|reply| serde_json::to_value(reply).expect("reply serializes"))
                .map_err(|e| e.to_rpc_string())
        });
        handler!(proto::CHECKPOINT_PROVIDER, proto::CheckpointArgs, |server, a| {
            server
                .checkpoint_provider(&a.name, &a.path)
                .map(|_| json!(true))
                .map_err(|e| e.to_rpc_string())
        });
        handler!(proto::RESTORE_PROVIDER, proto::CheckpointArgs, |server, a| {
            server
                .restore_provider(&a.name, &a.path)
                .map(|_| json!(true))
                .map_err(|e| e.to_rpc_string())
        });
        handler!(proto::ADD_DEPENDENT, proto::DependentArgs, |server, a| {
            if !server.inner.providers.lock().contains_key(&a.provider) {
                return Err(BedrockError::ProviderNotFound(a.provider).to_rpc_string());
            }
            server
                .inner
                .remote_dependents
                .lock()
                .entry(a.provider)
                .or_default()
                .insert(a.dependent);
            Ok(json!(true))
        });
        handler!(proto::REMOVE_DEPENDENT, proto::DependentArgs, |server, a| {
            let mut map = server.inner.remote_dependents.lock();
            if let Some(set) = map.get_mut(&a.provider) {
                set.remove(&a.dependent);
                if set.is_empty() {
                    map.remove(&a.provider);
                }
            }
            Ok(json!(true))
        });
        handler!(proto::TXN_PREPARE, proto::TxnPrepareArgs, |server, a| {
            server.txn_prepare(&a.txn_id, a.ops).map(|_| json!(true)).map_err(|e| e.to_rpc_string())
        });
        handler!(proto::TXN_COMMIT, proto::TxnIdArgs, |server, a, cx| {
            server.txn_commit(&a.txn_id, cx).map(|_| json!(true)).map_err(|e| e.to_rpc_string())
        });
        handler!(proto::TXN_ABORT, proto::TxnIdArgs, |server, a| {
            server.txn_abort(&a.txn_id).map(|_| json!(true)).map_err(|e| e.to_rpc_string())
        });
        Ok(())
    }

    /// Stops all providers and finalizes the Margo runtime.
    pub fn shutdown(&self) {
        let records: Vec<String> = self.provider_names();
        for name in records.iter().rev() {
            // Dependents were created after their dependencies; stopping
            // in reverse order is usually dependency-safe, but tolerate
            // failures (e.g. arbitrary graphs) by just dropping.
            let record = self.inner.providers.lock().remove(name);
            if let Some(record) = record {
                let _ = record.instance.stop();
            }
        }
        self.inner.margo.finalize();
    }
}

impl std::fmt::Debug for BedrockServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BedrockServer")
            .field("address", &self.inner.margo.address())
            .field("providers", &self.provider_names())
            .finish_non_exhaustive()
    }
}
