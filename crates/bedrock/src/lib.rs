//! `mochi-bedrock` — bootstrapping and online reconfiguration (paper §5).
//!
//! Bedrock is the "provider of providers": it boots a Mochi process from a
//! JSON description (Listing 3), tracks which providers run in which pools
//! (knowledge Margo itself lacks), and exposes a remote API (Listing 5) to
//! query and alter the configuration at run time — including starting,
//! stopping, migrating, checkpointing, and restoring providers, with
//! dependency resolution within and across processes and two-phase-commit
//! consistency for concurrent cross-process changes.
//!
//! Queries use the [`jx9`] scripting subset (Listing 4).

pub mod client;
pub mod config;
pub mod error;
pub mod jx9;
pub mod module;
pub mod rpc_names;
pub mod server;
pub mod txn;

pub use client::{apply_transaction, Client, ServiceHandle};
pub use config::{parse_dependency, BedrockSection, DependencyTarget, ProcessConfig, ProviderSpec};
pub use error::BedrockError;
pub use module::{Module, ModuleCatalog, ProviderContext, ProviderInstance, ResolvedDependency};
pub use server::{proto, BedrockServer, REMI_PROVIDER_ID};
pub use txn::TxnOp;
