//! Bedrock process configuration (paper §5, Listing 3).
//!
//! ```json
//! { "margo": { … },
//!   "libraries": { "A": "libcomponent_a.so" },
//!   "providers": [
//!     { "name": "myProviderA",
//!       "type": "A",
//!       "provider_id": 1,
//!       "pool": "MyPoolX",
//!       "config": { … },
//!       "dependencies": { … } } ] }
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use mochi_margo::MargoConfig;

use crate::error::BedrockError;

/// Specification of one provider to instantiate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderSpec {
    /// Unique provider name within the process.
    pub name: String,
    /// Provider type; must match a loaded module (the `libraries` key).
    #[serde(rename = "type")]
    pub type_name: String,
    /// Provider id used for RPC routing. Must be unique per process.
    pub provider_id: u16,
    /// Pool handler ULTs run in; defaults to Margo's default RPC pool.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pool: Option<String>,
    /// Component-specific configuration, passed through verbatim.
    #[serde(default)]
    pub config: Value,
    /// Dependencies: logical name → `"provider"` (same process) or
    /// `"provider@<address>"` (remote process).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub dependencies: BTreeMap<String, String>,
    /// Free-form tags.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub tags: Vec<String>,
}

impl ProviderSpec {
    /// Minimal spec with no pool/config/dependencies.
    pub fn new(name: impl Into<String>, type_name: impl Into<String>, provider_id: u16) -> Self {
        Self {
            name: name.into(),
            type_name: type_name.into(),
            provider_id,
            pool: None,
            config: Value::Null,
            dependencies: BTreeMap::new(),
            tags: Vec::new(),
        }
    }

    /// Builder-style: sets the component configuration.
    pub fn with_config(mut self, config: Value) -> Self {
        self.config = config;
        self
    }

    /// Builder-style: sets the pool.
    pub fn with_pool(mut self, pool: impl Into<String>) -> Self {
        self.pool = Some(pool.into());
        self
    }

    /// Builder-style: adds a dependency.
    pub fn with_dependency(mut self, name: impl Into<String>, target: impl Into<String>) -> Self {
        self.dependencies.insert(name.into(), target.into());
        self
    }

    /// Builder-style: adds a free-form tag. The convention
    /// `keyspace:<group>` marks a provider as one member of a routed
    /// keyspace (`mochi_core::RoutedKv` discovers members by this tag
    /// through each server's reported config).
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.push(tag.into());
        self
    }

    /// The keyspace group this provider belongs to, when tagged with
    /// `keyspace:<group>`.
    pub fn keyspace(&self) -> Option<&str> {
        self.tags.iter().find_map(|t| t.strip_prefix("keyspace:"))
    }
}

/// A parsed dependency target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DependencyTarget {
    /// Provider in the same process.
    Local(String),
    /// `name@address`: provider in another process.
    Remote { name: String, address: String },
}

/// Parses a dependency string (`"p"` or `"p@ofi+tcp://node:1"`).
pub fn parse_dependency(spec: &str) -> Result<DependencyTarget, BedrockError> {
    if spec.is_empty() {
        return Err(BedrockError::BadConfig("empty dependency".into()));
    }
    match spec.split_once('@') {
        None => Ok(DependencyTarget::Local(spec.to_string())),
        Some((name, address)) if !name.is_empty() && !address.is_empty() => {
            Ok(DependencyTarget::Remote { name: name.to_string(), address: address.to_string() })
        }
        Some(_) => Err(BedrockError::BadConfig(format!("malformed dependency '{spec}'"))),
    }
}

/// Bedrock's own section of the process configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BedrockSection {
    /// Pool Bedrock's own RPC handlers run in (default: Margo's default).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub pool: Option<String>,
    /// Bedrock's provider id.
    #[serde(default = "default_bedrock_provider_id")]
    pub provider_id: u16,
}

fn default_bedrock_provider_id() -> u16 {
    0
}

impl Default for BedrockSection {
    fn default() -> Self {
        Self { pool: None, provider_id: default_bedrock_provider_id() }
    }
}

/// Full process configuration (Listing 3 shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProcessConfig {
    /// Margo section (includes the Listing-2 `argobots` subsection).
    #[serde(default)]
    pub margo: MargoConfig,
    /// Library name → path: which "shared objects" to load.
    #[serde(default)]
    pub libraries: BTreeMap<String, String>,
    /// Providers to instantiate, in order (dependencies permitting).
    #[serde(default)]
    pub providers: Vec<ProviderSpec>,
    /// Bedrock's own settings.
    #[serde(default)]
    pub bedrock: BedrockSection,
}

impl ProcessConfig {
    /// Parses and validates a JSON document.
    pub fn from_json(json: &str) -> Result<Self, BedrockError> {
        let config: ProcessConfig =
            serde_json::from_str(json).map_err(|e| BedrockError::BadConfig(e.to_string()))?;
        config.validate()?;
        Ok(config)
    }

    /// Structural validation: margo section valid; provider names and
    /// (type, provider_id) pairs unique; provider types have libraries;
    /// dependency strings parse.
    pub fn validate(&self) -> Result<(), BedrockError> {
        self.margo.validate().map_err(|e| BedrockError::BadConfig(e.to_string()))?;
        let mut names = std::collections::HashSet::new();
        let mut ids = std::collections::HashSet::new();
        for spec in &self.providers {
            if !names.insert(spec.name.as_str()) {
                return Err(BedrockError::BadConfig(format!(
                    "duplicate provider name '{}'",
                    spec.name
                )));
            }
            if !ids.insert(spec.provider_id) {
                return Err(BedrockError::BadConfig(format!(
                    "duplicate provider id {}",
                    spec.provider_id
                )));
            }
            if !self.libraries.contains_key(&spec.type_name) {
                return Err(BedrockError::BadConfig(format!(
                    "provider '{}' has type '{}' with no matching library",
                    spec.name, spec.type_name
                )));
            }
            for dep in spec.dependencies.values() {
                parse_dependency(dep)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING_3: &str = r#"
    { "margo": { },
      "libraries": { "A": "libcomponent_a.so" },
      "providers": [
        { "name": "myProviderA",
          "type": "A",
          "provider_id": 1,
          "pool": "__primary__",
          "config": {"answer": 42},
          "dependencies": {} } ] }
    "#;

    #[test]
    fn parses_listing_3() {
        let config = ProcessConfig::from_json(LISTING_3).unwrap();
        assert_eq!(config.libraries["A"], "libcomponent_a.so");
        assert_eq!(config.providers.len(), 1);
        let p = &config.providers[0];
        assert_eq!(p.name, "myProviderA");
        assert_eq!(p.type_name, "A");
        assert_eq!(p.provider_id, 1);
        assert_eq!(p.pool.as_deref(), Some("__primary__"));
        assert_eq!(p.config["answer"], 42);
    }

    #[test]
    fn round_trips() {
        let config = ProcessConfig::from_json(LISTING_3).unwrap();
        let json = serde_json::to_string(&config).unwrap();
        let back = ProcessConfig::from_json(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut config = ProcessConfig::from_json(LISTING_3).unwrap();
        let mut dup = config.providers[0].clone();
        dup.provider_id = 2;
        config.providers.push(dup);
        assert!(matches!(config.validate(), Err(BedrockError::BadConfig(_))));
    }

    #[test]
    fn missing_library_rejected() {
        let mut config = ProcessConfig::from_json(LISTING_3).unwrap();
        config.libraries.clear();
        assert!(matches!(config.validate(), Err(BedrockError::BadConfig(_))));
    }

    #[test]
    fn dependency_parsing() {
        assert_eq!(parse_dependency("kv").unwrap(), DependencyTarget::Local("kv".into()));
        assert_eq!(
            parse_dependency("kv@ofi+tcp://n2:1").unwrap(),
            DependencyTarget::Remote { name: "kv".into(), address: "ofi+tcp://n2:1".into() }
        );
        assert!(parse_dependency("").is_err());
        assert!(parse_dependency("@addr").is_err());
        assert!(parse_dependency("kv@").is_err());
    }

    #[test]
    fn spec_builder() {
        let spec = ProviderSpec::new("db", "yokan", 3)
            .with_pool("fast")
            .with_config(serde_json::json!({"backend": "map"}))
            .with_dependency("remi", "remi@ofi+tcp://n1:1");
        assert_eq!(spec.pool.as_deref(), Some("fast"));
        assert_eq!(spec.dependencies["remi"], "remi@ofi+tcp://n1:1");
    }
}
