//! The module system: how Bedrock instantiates providers of types it
//! knows nothing about.
//!
//! The real Bedrock `dlopen`s the shared objects named in the `libraries`
//! section and looks up "a structure of function pointers … to instantiate
//! providers, clients, and resource handles, as well as to obtain their
//! configuration" (paper §5). We keep exactly that vtable shape as a pair
//! of traits and replace the dynamic loader with a [`ModuleCatalog`]: a map
//! from library path to factory. Component crates export a
//! `bedrock_module()` constructor and the application (or the cluster
//! harness) seeds the catalog with them — the moral equivalent of
//! installing `.so` files.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde_json::Value;

use mochi_margo::MargoRuntime;
use mochi_mercury::Address;
use mochi_remi::FileSet;

/// A resolved dependency handed to a module at provider-creation time.
#[derive(Debug, Clone)]
pub struct ResolvedDependency {
    /// Dependency string from the configuration.
    pub spec: String,
    /// Provider name.
    pub name: String,
    /// Address of the process holding the provider.
    pub address: Address,
    /// Provider id to address RPCs to.
    pub provider_id: u16,
    /// Provider type (e.g. `"yokan"`).
    pub type_name: String,
}

/// Everything a module needs to create a provider.
pub struct ProviderContext {
    /// The process's Margo runtime.
    pub margo: MargoRuntime,
    /// Provider name (unique in the process).
    pub name: String,
    /// Provider id for RPC routing.
    pub provider_id: u16,
    /// Pool the provider's handlers should run in.
    pub pool: String,
    /// Component-specific configuration (the `config` object of the spec).
    pub config: Value,
    /// Resolved dependencies, keyed by their logical name.
    pub dependencies: HashMap<String, ResolvedDependency>,
    /// Node-local directory reserved for this provider's data.
    pub data_dir: PathBuf,
}

/// A live provider, as seen by Bedrock. The default implementations make
/// every dynamic capability opt-in, so a static component runs unchanged —
/// the "least engineering impact" principle of §2.3.
pub trait ProviderInstance: Send + Sync {
    /// Provider type name.
    fn type_name(&self) -> &str;

    /// Current component configuration (merged into `get_config` output).
    fn config(&self) -> Value {
        Value::Object(serde_json::Map::new())
    }

    /// Deregisters the provider's RPCs and releases its resources.
    fn stop(&self) -> Result<(), String>;

    /// The files embodying this provider's state, for migration. `None`
    /// means the provider does not support migration.
    fn fileset(&self) -> Option<FileSet> {
        None
    }

    /// Quiesce and flush before the fileset is read for migration.
    fn prepare_migration(&self) -> Result<(), String> {
        Ok(())
    }

    /// Writes a consistent snapshot of the provider's state into `dir`
    /// (typically on the parallel file system). Observation 9.
    fn checkpoint(&self, _dir: &Path) -> Result<(), String> {
        Err(format!("provider type '{}' does not support checkpointing", self.type_name()))
    }

    /// Replaces the provider's state with the snapshot in `dir`.
    fn restore(&self, _dir: &Path) -> Result<(), String> {
        Err(format!("provider type '{}' does not support restore", self.type_name()))
    }
}

/// A module: the factory vtable Bedrock obtains from a loaded library.
pub trait Module: Send + Sync {
    /// Provider type this module instantiates (e.g. `"yokan"`).
    fn type_name(&self) -> &str;

    /// Creates a provider.
    fn create(&self, ctx: ProviderContext) -> Result<Box<dyn ProviderInstance>, String>;
}

/// The stand-in for the filesystem of installable `.so` files: library
/// path → module factory.
#[derive(Default, Clone)]
pub struct ModuleCatalog {
    by_library: BTreeMap<String, Arc<dyn Module>>,
}

impl ModuleCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Installs" a module under a library path (e.g.
    /// `"libyokan.so" → yokan::bedrock_module()`).
    pub fn install(&mut self, library: impl Into<String>, module: Arc<dyn Module>) -> &mut Self {
        self.by_library.insert(library.into(), module);
        self
    }

    /// Resolves a library path (the `dlopen` analogue).
    pub fn resolve(&self, library: &str) -> Option<Arc<dyn Module>> {
        self.by_library.get(library).cloned()
    }

    /// Installed library paths.
    pub fn libraries(&self) -> Vec<String> {
        self.by_library.keys().cloned().collect()
    }
}

pub mod testkit {
    //! A minimal in-memory component ("component A" of Listing 3) used
    //! by tests across the workspace.

    use super::*;
    use parking_lot::Mutex;

    /// Module whose providers answer `a_get`/`a_set` RPCs over one value.
    pub struct TestModule {
        /// Type name to report (lets tests register several types).
        pub type_name: String,
    }

    pub struct TestProvider {
        type_name: String,
        margo: MargoRuntime,
        provider_id: u16,
        config: Value,
        dir: PathBuf,
    }

    impl Module for TestModule {
        fn type_name(&self) -> &str {
            &self.type_name
        }

        fn create(&self, ctx: ProviderContext) -> Result<Box<dyn ProviderInstance>, String> {
            if ctx.config.get("fail_to_start").is_some() {
                return Err("configured to fail".into());
            }
            let value = Arc::new(Mutex::new(ctx.config.get("initial").cloned().unwrap_or(
                Value::Null,
            )));
            let get_value = Arc::clone(&value);
            ctx.margo
                .register_typed(
                    &format!("{}_get", self.type_name),
                    ctx.provider_id,
                    Some(&ctx.pool),
                    move |_: (), _| Ok(get_value.lock().clone()),
                )
                .map_err(|e| e.to_string())?;
            let set_value = Arc::clone(&value);
            ctx.margo
                .register_typed(
                    &format!("{}_set", self.type_name),
                    ctx.provider_id,
                    Some(&ctx.pool),
                    move |v: Value, _| {
                        *set_value.lock() = v;
                        Ok(true)
                    },
                )
                .map_err(|e| e.to_string())?;
            Ok(Box::new(TestProvider {
                type_name: self.type_name.clone(),
                margo: ctx.margo,
                provider_id: ctx.provider_id,
                config: ctx.config,
                dir: ctx.data_dir,
            }))
        }
    }

    impl ProviderInstance for TestProvider {
        fn type_name(&self) -> &str {
            &self.type_name
        }

        fn config(&self) -> Value {
            self.config.clone()
        }

        fn stop(&self) -> Result<(), String> {
            for suffix in ["get", "set"] {
                self.margo
                    .deregister(&format!("{}_{suffix}", self.type_name), self.provider_id)
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        }

        fn fileset(&self) -> Option<FileSet> {
            // State is one file under the data dir so migration works.
            std::fs::create_dir_all(&self.dir).ok()?;
            std::fs::write(self.dir.join("state.json"), self.config.to_string()).ok()?;
            FileSet::scan(&self.dir).ok()
        }

        fn checkpoint(&self, dir: &Path) -> Result<(), String> {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            std::fs::write(dir.join("ckpt.json"), self.config.to_string())
                .map_err(|e| e.to_string())
        }

        fn restore(&self, dir: &Path) -> Result<(), String> {
            std::fs::read(dir.join("ckpt.json")).map(|_| ()).map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl Module for Dummy {
        fn type_name(&self) -> &str {
            "dummy"
        }
        fn create(&self, _ctx: ProviderContext) -> Result<Box<dyn ProviderInstance>, String> {
            Err("dummy".into())
        }
    }

    #[test]
    fn catalog_install_and_resolve() {
        let mut catalog = ModuleCatalog::new();
        catalog.install("libdummy.so", Arc::new(Dummy));
        assert!(catalog.resolve("libdummy.so").is_some());
        assert!(catalog.resolve("libother.so").is_none());
        assert_eq!(catalog.libraries(), vec!["libdummy.so"]);
    }
}
