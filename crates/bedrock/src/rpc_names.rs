//! The Bedrock control-plane RPC surface: every wire-visible RPC name,
//! in one place.
//!
//! The server (`server.rs`) registers these and the client (`client.rs`)
//! calls them through [`crate::proto`], which re-exports this module, so
//! both sides share a single definition — and `mochi-lint`'s contract
//! checker (MOCHI006/007/008) resolves these constants when it
//! cross-checks register/forward pairs.

/// `get_config` RPC name.
pub const GET_CONFIG: &str = "bedrock_get_config";
/// `query` (Jx9) RPC name.
pub const QUERY: &str = "bedrock_query_config";
/// `add_pool` RPC name.
pub const ADD_POOL: &str = "bedrock_add_pool";
/// `remove_pool` RPC name.
pub const REMOVE_POOL: &str = "bedrock_remove_pool";
/// `add_xstream` RPC name.
pub const ADD_XSTREAM: &str = "bedrock_add_xstream";
/// `remove_xstream` RPC name.
pub const REMOVE_XSTREAM: &str = "bedrock_remove_xstream";
/// `load_module` RPC name.
pub const LOAD_MODULE: &str = "bedrock_load_module";
/// `start_provider` RPC name.
pub const START_PROVIDER: &str = "bedrock_start_provider";
/// `stop_provider` RPC name.
pub const STOP_PROVIDER: &str = "bedrock_stop_provider";
/// `lookup_provider` RPC name.
pub const LOOKUP_PROVIDER: &str = "bedrock_lookup_provider";
/// `migrate_provider` RPC name.
pub const MIGRATE_PROVIDER: &str = "bedrock_migrate_provider";
/// `checkpoint_provider` RPC name.
pub const CHECKPOINT_PROVIDER: &str = "bedrock_checkpoint_provider";
/// `restore_provider` RPC name.
pub const RESTORE_PROVIDER: &str = "bedrock_restore_provider";
/// Registers a cross-process dependent of a local provider.
pub const ADD_DEPENDENT: &str = "bedrock_add_dependent";
/// Removes a cross-process dependent registration.
pub const REMOVE_DEPENDENT: &str = "bedrock_remove_dependent";
/// Transaction prepare RPC name.
pub const TXN_PREPARE: &str = "bedrock_txn_prepare";
/// Transaction commit RPC name.
pub const TXN_COMMIT: &str = "bedrock_txn_commit";
/// Transaction abort RPC name.
pub const TXN_ABORT: &str = "bedrock_txn_abort";
