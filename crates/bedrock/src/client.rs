//! Bedrock's client library: remote access to a process's configuration
//! (paper §5, Listing 5) and the two-phase-commit coordinator for
//! consistent multi-process changes.
//!
//! Listing 5 in Rust:
//!
//! ```ignore
//! let client = bedrock::Client::new(&margo);
//! let handle = client.make_service_handle(address, 0);
//! handle.add_pool(json!({"name": "MyPoolX", "type": "fifo_wait"}))?;
//! handle.remove_pool("MyPoolX")?;
//! handle.load_module("B", "libcomponent_b.so")?;
//! handle.start_provider(&ProviderSpec::new("myProviderB", "B", 2))?;
//! ```

use serde_json::Value;

use mochi_margo::MargoRuntime;
use mochi_mercury::Address;
use mochi_remi::Strategy;
use mochi_util::id::unique_token;

use crate::config::ProviderSpec;
use crate::error::BedrockError;
use crate::server::proto;
use crate::txn::TxnOp;

/// Client factory, mirroring `bedrock::Client` in the C++ API.
#[derive(Clone)]
pub struct Client {
    margo: MargoRuntime,
}

impl Client {
    /// Creates a client on `margo`.
    pub fn new(margo: &MargoRuntime) -> Self {
        Self { margo: margo.clone() }
    }

    /// Creates a handle to the Bedrock process at `address` whose Bedrock
    /// provider uses `provider_id` (0 in every default configuration).
    pub fn make_service_handle(&self, address: Address, provider_id: u16) -> ServiceHandle {
        ServiceHandle { margo: self.margo.clone(), address, provider_id }
    }
}

/// Remote handle to one Bedrock process.
#[derive(Clone)]
pub struct ServiceHandle {
    margo: MargoRuntime,
    address: Address,
    provider_id: u16,
}

impl ServiceHandle {
    /// The process address this handle points at.
    pub fn address(&self) -> &Address {
        &self.address
    }

    fn call<I: serde::Serialize, O: serde::de::DeserializeOwned>(
        &self,
        rpc: &str,
        args: &I,
    ) -> Result<O, BedrockError> {
        self.margo
            .forward(&self.address, rpc, self.provider_id, args)
            .map_err(BedrockError::Margo)
    }

    /// Fetches the process configuration (Listing 3 shape, live).
    pub fn get_config(&self) -> Result<Value, BedrockError> {
        self.call(proto::GET_CONFIG, &())
    }

    /// Runs a Jx9 query against the process configuration (Listing 4).
    pub fn query(&self, script: &str) -> Result<Value, BedrockError> {
        self.call(proto::QUERY, &proto::QueryArgs { script: script.to_string() })
    }

    /// Adds a pool (`p.addPool(jsonPoolConfig)`).
    pub fn add_pool(&self, pool_config: Value) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::ADD_POOL, &pool_config).map(|_| ())
    }

    /// Removes a pool (`p.removePool("MyPoolX")`).
    pub fn remove_pool(&self, name: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::REMOVE_POOL, &proto::NameArgs { name: name.to_string() })
            .map(|_| ())
    }

    /// Adds an execution stream.
    pub fn add_xstream(&self, xstream_config: Value) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::ADD_XSTREAM, &xstream_config).map(|_| ())
    }

    /// Removes an execution stream.
    pub fn remove_xstream(&self, name: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::REMOVE_XSTREAM, &proto::NameArgs { name: name.to_string() })
            .map(|_| ())
    }

    /// Loads a module (`p.loadModule("B", "libcomponent_b.so")`).
    pub fn load_module(&self, type_name: &str, library: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(
            proto::LOAD_MODULE,
            &proto::LoadModuleArgs {
                type_name: type_name.to_string(),
                library: library.to_string(),
            },
        )
        .map(|_| ())
    }

    /// Starts a provider (`p.startProvider("myProviderB", "B", …)`).
    pub fn start_provider(&self, spec: &ProviderSpec) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::START_PROVIDER, spec).map(|_| ())
    }

    /// Stops a provider.
    pub fn stop_provider(&self, name: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(proto::STOP_PROVIDER, &proto::NameArgs { name: name.to_string() })
            .map(|_| ())
    }

    /// Looks up a provider's routing info.
    pub fn lookup_provider(&self, name: &str) -> Result<proto::ProviderInfo, BedrockError> {
        self.call(proto::LOOKUP_PROVIDER, &proto::NameArgs { name: name.to_string() })
    }

    /// Migrates a provider to another Bedrock process.
    pub fn migrate_provider(
        &self,
        name: &str,
        dest: &Address,
        strategy: Strategy,
    ) -> Result<proto::MigrateReply, BedrockError> {
        self.call(
            proto::MIGRATE_PROVIDER,
            &proto::MigrateArgs {
                name: name.to_string(),
                dest: dest.to_string(),
                strategy,
            },
        )
    }

    /// Checkpoints a provider to a directory on shared storage.
    pub fn checkpoint_provider(&self, name: &str, path: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(
            proto::CHECKPOINT_PROVIDER,
            &proto::CheckpointArgs { name: name.to_string(), path: path.to_string() },
        )
        .map(|_| ())
    }

    /// Restores a provider from a checkpoint directory.
    pub fn restore_provider(&self, name: &str, path: &str) -> Result<(), BedrockError> {
        self.call::<_, Value>(
            proto::RESTORE_PROVIDER,
            &proto::CheckpointArgs { name: name.to_string(), path: path.to_string() },
        )
        .map(|_| ())
    }
}

/// Applies a set of configuration operations across multiple Bedrock
/// processes atomically (all-or-nothing) via two-phase commit. This is
/// the machinery behind the paper's c1/c2 consistency guarantee: "either
/// c1's or c2's request will succeed, but not both".
///
/// The coordinator automatically adds [`TxnOp::KeepProvider`] pins for
/// the dependencies of every `StartProvider` op, so a concurrent
/// transaction stopping a dependency conflicts at prepare time.
pub fn apply_transaction(
    margo: &MargoRuntime,
    bedrock_provider_id: u16,
    ops: Vec<(Address, TxnOp)>,
) -> Result<(), BedrockError> {
    let txn_id = format!("txn-{}", unique_token());

    // Expand dependency pins.
    let mut expanded: Vec<(Address, TxnOp)> = Vec::with_capacity(ops.len());
    for (address, op) in ops {
        if let TxnOp::StartProvider { spec } = &op {
            for dep in spec.dependencies.values() {
                match crate::config::parse_dependency(dep)? {
                    crate::config::DependencyTarget::Local(name) => {
                        expanded.push((address.clone(), TxnOp::KeepProvider { name }));
                    }
                    crate::config::DependencyTarget::Remote { name, address: dep_addr } => {
                        let dep_addr: Address =
                            dep_addr.parse().map_err(|e| BedrockError::BadConfig(format!("{e}")))?;
                        expanded.push((dep_addr, TxnOp::KeepProvider { name }));
                    }
                }
            }
        }
        expanded.push((address, op));
    }

    // Group per process, preserving order.
    let mut order: Vec<Address> = Vec::new();
    let mut grouped: std::collections::HashMap<Address, Vec<TxnOp>> =
        std::collections::HashMap::new();
    for (address, op) in expanded {
        if !grouped.contains_key(&address) {
            order.push(address.clone());
        }
        grouped.entry(address).or_default().push(op);
    }

    // Phase 1: prepare everywhere; abort everything on first failure.
    let mut prepared: Vec<Address> = Vec::new();
    for address in &order {
        let args = proto::TxnPrepareArgs {
            txn_id: txn_id.clone(),
            ops: grouped[address].clone(),
        };
        let result: Result<Value, _> =
            margo.forward(address, proto::TXN_PREPARE, bedrock_provider_id, &args);
        match result {
            Ok(_) => prepared.push(address.clone()),
            Err(e) => {
                for p in &prepared {
                    let _: Result<Value, _> = margo.forward(
                        p,
                        proto::TXN_ABORT,
                        bedrock_provider_id,
                        &proto::TxnIdArgs { txn_id: txn_id.clone() },
                    );
                }
                return Err(BedrockError::TxnConflict(format!("prepare failed: {e}")));
            }
        }
    }

    // Phase 2: commit everywhere. A commit failure here is a partial
    // failure (the classic 2PC limitation); report it.
    let mut commit_errors = Vec::new();
    for address in &order {
        let result: Result<Value, _> = margo.forward(
            address,
            proto::TXN_COMMIT,
            bedrock_provider_id,
            &proto::TxnIdArgs { txn_id: txn_id.clone() },
        );
        if let Err(e) = result {
            commit_errors.push(format!("{address}: {e}"));
        }
    }
    if commit_errors.is_empty() {
        Ok(())
    } else {
        Err(BedrockError::TxnConflict(format!(
            "commit phase partially failed: {commit_errors:?}"
        )))
    }
}
