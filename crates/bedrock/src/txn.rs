//! Two-phase-commit machinery for consistent cross-process
//! reconfiguration (paper §5).
//!
//! The paper's motivating race: client `c1` creates provider `p1` on node
//! `n1` with a dependency on provider `p2` on node `n2`, while client `c2`
//! concurrently destroys `p2`. "Either c1's or c2's request will succeed,
//! but not both." We guarantee that with provider-granularity locks taken
//! at *prepare* time:
//!
//! * `StartProvider` locks the new name (`Create`) on its process, and the
//!   coordinator adds a `KeepProvider` op for every dependency — including
//!   on *other* processes;
//! * `StopProvider` needs an exclusive `Stop` lock, which conflicts with
//!   any `Keep` lock (and vice versa);
//! * two `Create`s of the same name conflict.
//!
//! Prepared operations execute at commit; aborts release locks untouched.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::config::ProviderSpec;
use crate::error::BedrockError;

/// One operation within a configuration transaction, addressed to a
/// specific Bedrock process by the coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TxnOp {
    /// Create a provider on the receiving process.
    StartProvider {
        /// The provider to create.
        spec: ProviderSpec,
    },
    /// Destroy a provider on the receiving process.
    StopProvider {
        /// Name of the provider to destroy.
        name: String,
    },
    /// Assert that a provider keeps existing for the duration of the
    /// transaction (dependency protection).
    KeepProvider {
        /// Name of the provider to pin.
        name: String,
    },
}

#[derive(Debug, Default)]
struct LockState {
    /// Transaction holding a Stop lock (exclusive).
    stopper: Option<String>,
    /// Transactions holding Keep locks (shared).
    keepers: Vec<String>,
    /// Transaction holding a Create lock on this (future) name.
    creator: Option<String>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.stopper.is_none() && self.keepers.is_empty() && self.creator.is_none()
    }
}

/// A prepared (not yet committed) transaction on one process.
#[derive(Debug)]
pub struct PreparedTxn {
    /// Operations to execute at commit, in order.
    pub ops: Vec<TxnOp>,
}

/// Per-process transaction state: prepared transactions and the provider
/// locks they hold.
#[derive(Debug, Default)]
pub struct TxnTable {
    prepared: HashMap<String, PreparedTxn>,
    locks: HashMap<String, LockState>,
}

impl TxnTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to prepare `ops` under `txn_id`, acquiring locks. The
    /// caller must have validated op preconditions (provider existence
    /// etc.) *before* calling, and must not call twice for one id.
    pub fn prepare(&mut self, txn_id: &str, ops: Vec<TxnOp>) -> Result<(), BedrockError> {
        if self.prepared.contains_key(txn_id) {
            return Err(BedrockError::TxnConflict(format!("'{txn_id}' already prepared")));
        }
        // First pass: check every lock is acquirable; only then mutate.
        for op in &ops {
            match op {
                TxnOp::StartProvider { spec } => {
                    let lock = self.locks.entry(spec.name.clone()).or_default();
                    if lock.creator.is_some() {
                        return Err(BedrockError::TxnConflict(format!(
                            "provider '{}' is being created by another transaction",
                            spec.name
                        )));
                    }
                    if lock.stopper.is_some() {
                        return Err(BedrockError::TxnConflict(format!(
                            "provider '{}' is being stopped by another transaction",
                            spec.name
                        )));
                    }
                }
                TxnOp::StopProvider { name } => {
                    let lock = self.locks.entry(name.clone()).or_default();
                    if lock.stopper.is_some() || !lock.keepers.is_empty() || lock.creator.is_some()
                    {
                        return Err(BedrockError::TxnConflict(format!(
                            "provider '{name}' is locked by another transaction"
                        )));
                    }
                }
                TxnOp::KeepProvider { name } => {
                    let lock = self.locks.entry(name.clone()).or_default();
                    if lock.stopper.is_some() {
                        return Err(BedrockError::TxnConflict(format!(
                            "provider '{name}' is being stopped by another transaction"
                        )));
                    }
                }
            }
        }
        // Second pass: acquire.
        for op in &ops {
            match op {
                TxnOp::StartProvider { spec } => {
                    self.locks.entry(spec.name.clone()).or_default().creator =
                        Some(txn_id.to_string());
                }
                TxnOp::StopProvider { name } => {
                    self.locks.entry(name.clone()).or_default().stopper =
                        Some(txn_id.to_string());
                }
                TxnOp::KeepProvider { name } => {
                    self.locks
                        .entry(name.clone())
                        .or_default()
                        .keepers
                        .push(txn_id.to_string());
                }
            }
        }
        self.prepared.insert(txn_id.to_string(), PreparedTxn { ops });
        Ok(())
    }

    /// Removes a prepared transaction, releasing its locks, and returns
    /// its ops for execution (commit) or discarding (abort).
    pub fn take_prepared(&mut self, txn_id: &str) -> Result<Vec<TxnOp>, BedrockError> {
        let txn = self
            .prepared
            .remove(txn_id)
            .ok_or_else(|| BedrockError::TxnUnknown(txn_id.to_string()))?;
        for op in &txn.ops {
            let name = match op {
                TxnOp::StartProvider { spec } => &spec.name,
                TxnOp::StopProvider { name } | TxnOp::KeepProvider { name } => name,
            };
            if let Some(lock) = self.locks.get_mut(name) {
                if lock.creator.as_deref() == Some(txn_id) {
                    lock.creator = None;
                }
                if lock.stopper.as_deref() == Some(txn_id) {
                    lock.stopper = None;
                }
                lock.keepers.retain(|t| t != txn_id);
                if lock.is_free() {
                    self.locks.remove(name);
                }
            }
        }
        Ok(txn.ops)
    }

    /// Whether any prepared transaction holds a lock that forbids
    /// stopping `name` right now (used to also block *non*-transactional
    /// stop requests racing with a prepared transaction).
    pub fn blocks_stop(&self, name: &str) -> bool {
        self.locks
            .get(name)
            .is_some_and(|l| !l.keepers.is_empty() || l.stopper.is_some() || l.creator.is_some())
    }

    /// Whether any prepared transaction pins the name against creation.
    pub fn blocks_start(&self, name: &str) -> bool {
        self.locks.get(name).is_some_and(|l| l.creator.is_some() || l.stopper.is_some())
    }

    /// Number of prepared transactions (diagnostics).
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> ProviderSpec {
        ProviderSpec::new(name, "A", 9)
    }

    #[test]
    fn paper_c1_c2_race_one_wins() {
        let mut table = TxnTable::new();
        // c1 (on n2's table): keep p2 alive while p1 is created elsewhere.
        table.prepare("c1", vec![TxnOp::KeepProvider { name: "p2".into() }]).unwrap();
        // c2: stop p2 — must conflict.
        let err = table
            .prepare("c2", vec![TxnOp::StopProvider { name: "p2".into() }])
            .unwrap_err();
        assert!(matches!(err, BedrockError::TxnConflict(_)));
        // After c1 commits/aborts, c2 can proceed.
        table.take_prepared("c1").unwrap();
        table.prepare("c2", vec![TxnOp::StopProvider { name: "p2".into() }]).unwrap();
    }

    #[test]
    fn stop_first_blocks_keep() {
        let mut table = TxnTable::new();
        table.prepare("c2", vec![TxnOp::StopProvider { name: "p2".into() }]).unwrap();
        let err = table
            .prepare("c1", vec![TxnOp::KeepProvider { name: "p2".into() }])
            .unwrap_err();
        assert!(matches!(err, BedrockError::TxnConflict(_)));
    }

    #[test]
    fn concurrent_keeps_are_compatible() {
        let mut table = TxnTable::new();
        table.prepare("a", vec![TxnOp::KeepProvider { name: "p".into() }]).unwrap();
        table.prepare("b", vec![TxnOp::KeepProvider { name: "p".into() }]).unwrap();
        assert!(table.blocks_stop("p"));
        table.take_prepared("a").unwrap();
        assert!(table.blocks_stop("p"));
        table.take_prepared("b").unwrap();
        assert!(!table.blocks_stop("p"));
    }

    #[test]
    fn duplicate_create_conflicts() {
        let mut table = TxnTable::new();
        table.prepare("a", vec![TxnOp::StartProvider { spec: spec("new") }]).unwrap();
        let err = table
            .prepare("b", vec![TxnOp::StartProvider { spec: spec("new") }])
            .unwrap_err();
        assert!(matches!(err, BedrockError::TxnConflict(_)));
        assert!(table.blocks_start("new"));
    }

    #[test]
    fn abort_releases_everything() {
        let mut table = TxnTable::new();
        table
            .prepare(
                "t",
                vec![
                    TxnOp::StartProvider { spec: spec("x") },
                    TxnOp::KeepProvider { name: "dep".into() },
                ],
            )
            .unwrap();
        let ops = table.take_prepared("t").unwrap();
        assert_eq!(ops.len(), 2);
        assert!(!table.blocks_start("x"));
        assert!(!table.blocks_stop("dep"));
        assert_eq!(table.prepared_count(), 0);
    }

    #[test]
    fn unknown_txn_reported() {
        let mut table = TxnTable::new();
        assert!(matches!(table.take_prepared("ghost"), Err(BedrockError::TxnUnknown(_))));
    }

    #[test]
    fn failed_prepare_leaves_no_partial_locks() {
        let mut table = TxnTable::new();
        table.prepare("a", vec![TxnOp::StopProvider { name: "q".into() }]).unwrap();
        // This prepare locks "p" only if the whole op set is acquirable;
        // the conflict on "q" must leave "p" unlocked.
        let err = table
            .prepare(
                "b",
                vec![
                    TxnOp::KeepProvider { name: "p".into() },
                    TxnOp::KeepProvider { name: "q".into() },
                ],
            )
            .unwrap_err();
        assert!(matches!(err, BedrockError::TxnConflict(_)));
        assert!(!table.blocks_stop("p"));
    }
}
