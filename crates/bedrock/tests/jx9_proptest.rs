//! Property tests on the Jx9 subset: evaluation is total (no panics) on
//! arbitrary token soup, and core semantic identities hold on generated
//! JSON documents.

use proptest::prelude::*;
use serde_json::json;

use mochi_bedrock::jx9;

fn json_value_strategy() -> impl Strategy<Value = serde_json::Value> {
    let leaf = prop_oneof![
        Just(serde_json::Value::Null),
        any::<bool>().prop_map(serde_json::Value::from),
        any::<i32>().prop_map(serde_json::Value::from),
        "[a-z]{0,8}".prop_map(serde_json::Value::from),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6)
                .prop_map(serde_json::Value::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(|m| {
                serde_json::Value::Object(m.into_iter().collect())
            }),
        ]
    })
}

proptest! {
    #[test]
    fn eval_never_panics_on_arbitrary_programs(program in ".{0,120}") {
        // Totality: garbage in, Err (or Ok) out — never a panic.
        let _ = jx9::eval(&program, &serde_json::Value::Null);
    }

    #[test]
    fn count_matches_length(values in proptest::collection::vec(any::<i32>(), 0..20)) {
        let config = json!({ "items": values });
        let result = jx9::eval("return count($__config__.items);", &config).unwrap();
        prop_assert_eq!(result, json!(values.len()));
    }

    #[test]
    fn foreach_collects_every_element(document in json_value_strategy()) {
        let config = json!({ "items": [document.clone(), document.clone()] });
        let result = jx9::eval(
            r#"$out = [];
               foreach ($__config__.items as $x) { array_push($out, $x); }
               return $out;"#,
            &config,
        ).unwrap();
        prop_assert_eq!(result, json!([document.clone(), document]));
    }

    #[test]
    fn arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000) {
        let sum = jx9::eval(&format!("return {a} + {b};"), &serde_json::Value::Null).unwrap();
        prop_assert_eq!(sum, json!(a + b));
        let product = jx9::eval(&format!("return {a} * {b};"), &serde_json::Value::Null).unwrap();
        prop_assert_eq!(product, json!(a * b));
        let comparison =
            jx9::eval(&format!("return {a} < {b};"), &serde_json::Value::Null).unwrap();
        prop_assert_eq!(comparison, json!(a < b));
    }

    #[test]
    fn member_access_equals_direct_lookup(document in json_value_strategy()) {
        let config = json!({ "payload": document });
        let via_script = jx9::eval("return $__config__.payload;", &config).unwrap();
        prop_assert_eq!(via_script, config["payload"].clone());
    }

    #[test]
    fn while_loop_sums_like_rust(n in 0u32..50) {
        let script = format!(
            "$i = 0; $sum = 0;
             while ($i < {n}) {{ $sum = $sum + $i; $i = $i + 1; }}
             return $sum;"
        );
        let result = jx9::eval(&script, &serde_json::Value::Null).unwrap();
        let expected: u32 = (0..n).sum();
        prop_assert_eq!(result, json!(expected));
    }
}
