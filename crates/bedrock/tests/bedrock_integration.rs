//! Integration tests for Bedrock: bootstrap (Listing 3), remote
//! reconfiguration (Listing 5), Jx9 queries (Listing 4), dependency
//! rules, provider migration, and 2PC consistency (the paper's c1/c2
//! example).

use std::sync::Arc;

use serde_json::{json, Value};

use mochi_bedrock::module::testkit::TestModule;
use mochi_bedrock::{
    apply_transaction, BedrockError, BedrockServer, Client, ModuleCatalog, ProcessConfig,
    ProviderSpec, TxnOp,
};
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_util::TempDir;

fn catalog() -> ModuleCatalog {
    let mut catalog = ModuleCatalog::new();
    catalog.install("libcomponent_a.so", Arc::new(TestModule { type_name: "A".into() }));
    catalog.install("libcomponent_b.so", Arc::new(TestModule { type_name: "B".into() }));
    catalog
}

fn listing3_config() -> ProcessConfig {
    ProcessConfig::from_json(
        r#"
        { "margo": { },
          "libraries": { "A": "libcomponent_a.so" },
          "providers": [
            { "name": "myProviderA",
              "type": "A",
              "provider_id": 1,
              "pool": "__primary__",
              "config": { "initial": "hello" } } ] }
        "#,
    )
    .unwrap()
}

struct TestEnv {
    fabric: Fabric,
    dir: TempDir,
}

impl TestEnv {
    fn new(label: &str) -> Self {
        Self { fabric: Fabric::new(), dir: TempDir::new(label).unwrap() }
    }

    fn server(&self, host: &str, config: &ProcessConfig) -> BedrockServer {
        BedrockServer::bootstrap(
            &self.fabric,
            Address::tcp(host, 1),
            config,
            catalog(),
            self.dir.path().join(host),
        )
        .unwrap()
    }

    fn client_margo(&self, host: &str) -> MargoRuntime {
        MargoRuntime::init_default(&self.fabric, Address::tcp(host, 1)).unwrap()
    }
}

#[test]
fn bootstrap_starts_configured_providers() {
    let env = TestEnv::new("bedrock-boot");
    let server = env.server("n1", &listing3_config());
    assert_eq!(server.provider_names(), vec!["myProviderA"]);
    // The provider's RPCs are live.
    let client = env.client_margo("client");
    let value: Value = client.forward(&server.address(), "A_get", 1, &()).unwrap();
    assert_eq!(value, json!("hello"));
    server.shutdown();
    client.finalize();
}

#[test]
fn get_config_and_listing4_query() {
    let env = TestEnv::new("bedrock-query");
    let server = env.server("n1", &listing3_config());
    let client_margo = env.client_margo("client");
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);

    let config = handle.get_config().unwrap();
    assert_eq!(config["libraries"]["A"], "libcomponent_a.so");
    assert_eq!(config["providers"][0]["name"], "myProviderA");
    assert!(config["margo"]["argobots"]["pools"].is_array());

    // Listing 4, verbatim.
    let result = handle
        .query(
            r#"$result = [];
               foreach ($__config__.providers as $p) {
                   array_push($result, $p.name); }
               return $result;"#,
        )
        .unwrap();
    assert_eq!(result, json!(["myProviderA"]));
    server.shutdown();
    client_margo.finalize();
}

#[test]
fn listing5_remote_reconfiguration_sequence() {
    let env = TestEnv::new("bedrock-listing5");
    let server = env.server("n1", &listing3_config());
    let client_margo = env.client_margo("client");
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);

    // p.addPool(jsonPoolConfig);
    handle.add_pool(json!({"name": "MyPoolX", "type": "fifo_wait"})).unwrap();
    // An xstream to serve it, then tear both down.
    handle
        .add_xstream(json!({"name": "MyESX", "scheduler": {"type": "basic_wait", "pools": ["MyPoolX"]}}))
        .unwrap();
    handle.remove_xstream("MyESX").unwrap();
    // p.removePool("MyPoolX");
    handle.remove_pool("MyPoolX").unwrap();
    // p.loadModule("B", "libcomponent_b.so");
    handle.load_module("B", "libcomponent_b.so").unwrap();
    // p.startProvider("myProviderB", "B", ...);
    handle.start_provider(&ProviderSpec::new("myProviderB", "B", 2)).unwrap();
    let info = handle.lookup_provider("myProviderB").unwrap();
    assert_eq!(info.provider_id, 2);
    assert_eq!(info.type_name, "B");
    // New provider serves RPCs.
    let value: Value = client_margo.forward(&server.address(), "B_get", 2, &()).unwrap();
    assert_eq!(value, Value::Null);
    // Stop it again.
    handle.stop_provider("myProviderB").unwrap();
    assert!(handle.lookup_provider("myProviderB").is_err());
    server.shutdown();
    client_margo.finalize();
}

#[test]
fn unknown_library_fails_like_dlopen() {
    let env = TestEnv::new("bedrock-dlopen");
    let server = env.server("n1", &listing3_config());
    let client_margo = env.client_margo("client");
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);
    let err = handle.load_module("X", "libmissing.so").unwrap_err();
    assert!(err.to_string().contains("libmissing.so"), "{err}");
    server.shutdown();
    client_margo.finalize();
}

#[test]
fn local_dependencies_resolve_and_protect() {
    let env = TestEnv::new("bedrock-deps");
    let mut config = listing3_config();
    config.libraries.insert("B".into(), "libcomponent_b.so".into());
    config.providers.push(
        ProviderSpec::new("userB", "B", 2).with_dependency("kv", "myProviderA"),
    );
    let server = env.server("n1", &config);
    assert_eq!(server.provider_names(), vec!["myProviderA", "userB"]);
    // Stopping the dependency is refused while userB exists.
    let err = server.stop_provider("myProviderA").unwrap_err();
    assert!(matches!(err, BedrockError::ProviderInUse { .. }));
    server.stop_provider("userB").unwrap();
    server.stop_provider("myProviderA").unwrap();
    server.shutdown();
}

#[test]
fn dependency_order_is_inferred() {
    let env = TestEnv::new("bedrock-order");
    // userB listed *before* its dependency; bootstrap must reorder.
    let mut config = listing3_config();
    config.libraries.insert("B".into(), "libcomponent_b.so".into());
    let dep = ProviderSpec::new("userB", "B", 2).with_dependency("kv", "myProviderA");
    config.providers.insert(0, dep);
    let server = env.server("n1", &config);
    assert_eq!(server.provider_names().len(), 2);
    server.shutdown();
}

#[test]
fn circular_dependencies_rejected() {
    let env = TestEnv::new("bedrock-cycle");
    let mut config = listing3_config();
    config.providers = vec![
        ProviderSpec::new("a", "A", 1).with_dependency("x", "b"),
        ProviderSpec::new("b", "A", 2).with_dependency("x", "a"),
    ];
    let result = BedrockServer::bootstrap(
        &env.fabric,
        Address::tcp("n1", 1),
        &config,
        catalog(),
        env.dir.path().join("n1"),
    );
    assert!(matches!(result, Err(BedrockError::BadConfig(_))));
}

#[test]
fn remote_dependency_resolution() {
    let env = TestEnv::new("bedrock-remote-dep");
    let server1 = env.server("n1", &listing3_config());
    // n2 starts a provider depending on myProviderA@n1.
    let mut config2 = ProcessConfig::default();
    config2.libraries.insert("B".into(), "libcomponent_b.so".into());
    config2.providers.push(
        ProviderSpec::new("userB", "B", 2)
            .with_dependency("kv", format!("myProviderA@{}", server1.address())),
    );
    let server2 = env.server("n2", &config2);
    assert_eq!(server2.provider_names(), vec!["userB"]);
    // A dangling remote dependency fails.
    let bad = ProviderSpec::new("bad", "B", 3)
        .with_dependency("kv", format!("ghost@{}", server1.address()));
    let err = server2.start_provider(&bad).unwrap_err();
    assert!(matches!(err, BedrockError::DependencyError { .. }));
    server1.shutdown();
    server2.shutdown();
}

#[test]
fn provider_migration_between_processes() {
    let env = TestEnv::new("bedrock-migrate");
    let server1 = env.server("n1", &listing3_config());
    let mut config2 = ProcessConfig::default();
    config2.libraries.insert("A".into(), "libcomponent_a.so".into());
    let server2 = env.server("n2", &config2);

    let client_margo = env.client_margo("client");
    let handle = Client::new(&client_margo).make_service_handle(server1.address(), 0);
    let reply = handle
        .migrate_provider("myProviderA", &server2.address(), mochi_remi::Strategy::Rdma)
        .unwrap();
    assert!(reply.files >= 1);
    // Gone from n1, running on n2.
    assert!(server1.provider_names().is_empty());
    assert_eq!(server2.provider_names(), vec!["myProviderA"]);
    let value: Value = client_margo.forward(&server2.address(), "A_get", 1, &()).unwrap();
    assert_eq!(value, json!("hello"));
    server1.shutdown();
    server2.shutdown();
    client_margo.finalize();
}

#[test]
fn checkpoint_and_restore_rpcs() {
    let env = TestEnv::new("bedrock-ckpt");
    let server = env.server("n1", &listing3_config());
    let client_margo = env.client_margo("client");
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);
    let pfs = env.dir.path().join("pfs/ckpt-1");
    handle.checkpoint_provider("myProviderA", pfs.to_str().unwrap()).unwrap();
    assert!(pfs.join("ckpt.json").is_file());
    handle.restore_provider("myProviderA", pfs.to_str().unwrap()).unwrap();
    let err = handle.checkpoint_provider("ghost", pfs.to_str().unwrap()).unwrap_err();
    assert!(err.to_string().contains("ghost"));
    server.shutdown();
    client_margo.finalize();
}

/// The paper's consistency example: c1 creates p1 on n1 depending on p2
/// on n2 while c2 destroys p2 on n2. Exactly one of the two transactions
/// must succeed.
#[test]
fn c1_c2_transactions_are_mutually_exclusive() {
    let env = TestEnv::new("bedrock-2pc");
    // n2 runs p2 (type A); n1 runs nothing yet but has module B loaded.
    let mut config_n2 = ProcessConfig::default();
    config_n2.libraries.insert("A".into(), "libcomponent_a.so".into());
    config_n2.providers.push(ProviderSpec::new("p2", "A", 1));
    let n2 = env.server("n2", &config_n2);
    let mut config_n1 = ProcessConfig::default();
    config_n1.libraries.insert("B".into(), "libcomponent_b.so".into());
    let n1 = env.server("n1", &config_n1);

    let c1 = env.client_margo("c1");
    let c2 = env.client_margo("c2");
    let n1_addr = n1.address();
    let n2_addr = n2.address();

    let spec_p1 = ProviderSpec::new("p1", "B", 5)
        .with_dependency("kv", format!("p2@{n2_addr}"));

    // Race the two transactions from two threads many times is flaky by
    // nature; instead run them concurrently once and assert the invariant
    // "exactly one succeeds OR c2 ran after c1 finished (both succeed is
    // impossible because stop(p2) would then fail on the dependents'
    // process — p1 is remote, so the only protection is the txn window)".
    let t1 = {
        let c1 = c1.clone();
        let n1_addr = n1_addr.clone();
        let spec = spec_p1.clone();
        std::thread::spawn(move || {
            apply_transaction(&c1, 0, vec![(n1_addr, TxnOp::StartProvider { spec })])
        })
    };
    let t2 = {
        let c2 = c2.clone();
        let n2_addr = n2_addr.clone();
        std::thread::spawn(move || {
            apply_transaction(
                &c2,
                0,
                vec![(n2_addr, TxnOp::StopProvider { name: "p2".into() })],
            )
        })
    };
    let r1 = t1.join().unwrap();
    let r2 = t2.join().unwrap();

    let p1_exists = n1.provider_names().contains(&"p1".to_string());
    let p2_exists = n2.provider_names().contains(&"p2".to_string());
    // The paper's invariant: either both p1 and p2 exist (c1 won), or p2
    // was destroyed and p1 was not created (c2 won). Never p1-without-p2.
    assert!(
        (p1_exists && p2_exists) || (!p1_exists && !p2_exists),
        "inconsistent state: p1={p1_exists} p2={p2_exists} (r1={r1:?} r2={r2:?})"
    );
    // And at least one of them went through.
    assert!(r1.is_ok() || r2.is_ok());

    n1.shutdown();
    n2.shutdown();
    c1.finalize();
    c2.finalize();
}

/// Deterministic version of the conflict: prepare c1 first, then c2 must
/// fail its prepare, then c1 commits.
#[test]
fn prepared_transaction_blocks_conflicting_stop() {
    let env = TestEnv::new("bedrock-2pc-det");
    let mut config_n2 = ProcessConfig::default();
    config_n2.libraries.insert("A".into(), "libcomponent_a.so".into());
    config_n2.providers.push(ProviderSpec::new("p2", "A", 1));
    let n2 = env.server("n2", &config_n2);
    let client_margo = env.client_margo("client");

    // Manually drive phase 1 of c1 (keep p2 pinned).
    let prepare_args = mochi_bedrock::proto::TxnPrepareArgs {
        txn_id: "c1".into(),
        ops: vec![TxnOp::KeepProvider { name: "p2".into() }],
    };
    let _: Value = client_margo
        .forward(&n2.address(), mochi_bedrock::proto::TXN_PREPARE, 0, &prepare_args)
        .unwrap();

    // c2's transactional stop must fail at prepare...
    let err = apply_transaction(
        &client_margo,
        0,
        vec![(n2.address(), TxnOp::StopProvider { name: "p2".into() })],
    )
    .unwrap_err();
    assert!(matches!(err, BedrockError::TxnConflict(_)));
    // ...and so must a plain (non-transactional) stop.
    let handle = Client::new(&client_margo).make_service_handle(n2.address(), 0);
    let err = handle.stop_provider("p2").unwrap_err();
    assert!(err.to_string().contains("transaction"), "{err}");

    // Commit c1; afterwards the stop succeeds.
    let _: Value = client_margo
        .forward(
            &n2.address(),
            mochi_bedrock::proto::TXN_COMMIT,
            0,
            &mochi_bedrock::proto::TxnIdArgs { txn_id: "c1".into() },
        )
        .unwrap();
    handle.stop_provider("p2").unwrap();
    n2.shutdown();
    client_margo.finalize();
}

#[test]
fn failed_module_creation_surfaces_error() {
    let env = TestEnv::new("bedrock-badstart");
    let server = env.server("n1", &listing3_config());
    let spec = ProviderSpec::new("broken", "A", 7).with_config(json!({"fail_to_start": true}));
    let err = server.start_provider(&spec).unwrap_err();
    assert!(matches!(err, BedrockError::Provider(_)));
    assert_eq!(server.provider_names(), vec!["myProviderA"]);
    server.shutdown();
}

#[test]
fn duplicate_provider_ids_rejected() {
    let env = TestEnv::new("bedrock-dupid");
    let server = env.server("n1", &listing3_config());
    let err = server.start_provider(&ProviderSpec::new("other", "A", 1)).unwrap_err();
    assert!(matches!(err, BedrockError::BadConfig(_)));
    server.shutdown();
}
