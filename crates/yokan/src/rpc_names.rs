//! The Yokan RPC surface: every wire-visible RPC name, in one place.
//!
//! Registration sites (`provider.rs`), client call sites (`client.rs`),
//! and the replication layer (`replication.rs`) all pull names from this
//! module, so a provider and its clients can never drift apart — and
//! `mochi-lint`'s contract checker (MOCHI006/007/008) resolves these
//! constants when it cross-checks register/forward pairs.

/// Put one pair (framed: header = key, body = value).
pub const PUT: &str = "yokan_put";
/// Put many pairs (framed).
pub const PUT_MULTI: &str = "yokan_put_multi";
/// Get one value (framed response).
pub const GET: &str = "yokan_get";
/// Get many values (framed response).
pub const GET_MULTI: &str = "yokan_get_multi";
/// Erase a key.
pub const ERASE: &str = "yokan_erase";
/// Existence check.
pub const EXISTS: &str = "yokan_exists";
/// Prefix listing with pagination.
pub const LIST_KEYS: &str = "yokan_list_keys";
/// Number of keys.
pub const LEN: &str = "yokan_len";
/// Persist to disk.
pub const FLUSH: &str = "yokan_flush";
/// Remove all keys.
pub const CLEAR: &str = "yokan_clear";
/// Erase many keys in one RPC (routing drain cleanup).
pub const ERASE_MULTI: &str = "yokan_erase_multi";
/// Export a key slice to a spill file and push it to a peer provider
/// through REMI (routing rebalance drain, source side).
pub const SLICE_EXPORT: &str = "yokan_slice_export";
/// Import a REMI-delivered spill file, keeping existing keys (routing
/// rebalance drain, destination side).
pub const SLICE_IMPORT: &str = "yokan_slice_import";

/// Every name above (used for deregistration).
pub const ALL: [&str; 13] = [
    PUT,
    PUT_MULTI,
    GET,
    GET_MULTI,
    ERASE,
    EXISTS,
    LIST_KEYS,
    LEN,
    FLUSH,
    CLEAR,
    ERASE_MULTI,
    SLICE_EXPORT,
    SLICE_IMPORT,
];
