//! The Yokan RPC surface: every wire-visible RPC name, in one place.
//!
//! Registration sites (`provider.rs`), client call sites (`client.rs`),
//! and the replication layer (`replication.rs`) all pull names from this
//! module, so a provider and its clients can never drift apart — and
//! `mochi-lint`'s contract checker (MOCHI006/007/008) resolves these
//! constants when it cross-checks register/forward pairs.

/// Put one pair (framed: header = key, body = value).
pub const PUT: &str = "yokan_put";
/// Put many pairs (framed).
pub const PUT_MULTI: &str = "yokan_put_multi";
/// Get one value (framed response).
pub const GET: &str = "yokan_get";
/// Get many values (framed response).
pub const GET_MULTI: &str = "yokan_get_multi";
/// Erase a key.
pub const ERASE: &str = "yokan_erase";
/// Existence check.
pub const EXISTS: &str = "yokan_exists";
/// Prefix listing with pagination.
pub const LIST_KEYS: &str = "yokan_list_keys";
/// Number of keys.
pub const LEN: &str = "yokan_len";
/// Persist to disk.
pub const FLUSH: &str = "yokan_flush";
/// Remove all keys.
pub const CLEAR: &str = "yokan_clear";
/// Erase many keys in one RPC (routing drain cleanup).
pub const ERASE_MULTI: &str = "yokan_erase_multi";
/// Export a key slice to a spill file and push it to a peer provider
/// through REMI (routing rebalance drain, source side).
pub const SLICE_EXPORT: &str = "yokan_slice_export";
/// Import a REMI-delivered spill file, keeping existing keys (routing
/// rebalance drain, destination side).
pub const SLICE_IMPORT: &str = "yokan_slice_import";
/// Put-if-newer of one versioned record (framed: header = key + version
/// + tombstone flag, body = raw value). The replicated keyspace's write
/// primitive: the server keeps whichever record is freshest.
pub const PUT_VERSIONED: &str = "yokan_put_versioned";
/// Put-if-newer of many versioned records in one RPC (replica fan-out,
/// hint replay, read repair, re-replication catch-up).
pub const PUT_VERSIONED_MULTI: &str = "yokan_put_versioned_multi";
/// Get many records *with* their version stamps and tombstone flags
/// (quorum reads need versions to run the freshest-wins merge).
pub const GET_VERSIONED_MULTI: &str = "yokan_get_versioned_multi";
/// Park a hinted-handoff record on this provider for a currently
/// unreachable owner (Dynamo-style sloppy quorum).
pub const HINT_PUT: &str = "yokan_hint_put";
/// List parked hints (the background drainer's work queue).
pub const HINT_LIST: &str = "yokan_hint_list";
/// Drop replayed hints (version-matched so a newer hint parked during
/// the replay survives).
pub const HINT_DROP: &str = "yokan_hint_drop";

/// Every name above (used for deregistration).
pub const ALL: [&str; 19] = [
    PUT,
    PUT_MULTI,
    GET,
    GET_MULTI,
    ERASE,
    EXISTS,
    LIST_KEYS,
    LEN,
    FLUSH,
    CLEAR,
    ERASE_MULTI,
    SLICE_EXPORT,
    SLICE_IMPORT,
    PUT_VERSIONED,
    PUT_VERSIONED_MULTI,
    GET_VERSIONED_MULTI,
    HINT_PUT,
    HINT_LIST,
    HINT_DROP,
];
