//! `mochi-yokan` — the key-value store component.
//!
//! Yokan is "Mochi's node-based key-value store" (paper §2.3): a provider
//! manages a database resource behind an abstract interface with multiple
//! backends (the original offers RocksDB/LevelDB/BerkeleyDB; we provide an
//! in-memory ordered map and a from-scratch log-structured-merge backend
//! whose on-disk files make REMI migration and checkpointing real), and a
//! client library exposes put/get-style resource handles — the exact
//! component anatomy of Figure 1.
//!
//! Dynamic-service hooks:
//!
//! * the [`bedrock`] module wires Yokan providers into Bedrock
//!   (start/stop/migrate/checkpoint/restore),
//! * [`replication::VirtualDatabaseProvider`] implements Observation 10's
//!   *virtual resources*: a provider that holds no data itself and
//!   transparently forwards to N replica databases — clients cannot tell
//!   the difference because it serves the ordinary Yokan RPCs.

pub mod backend;
pub mod bedrock;
pub mod client;
pub mod provider;
pub mod replication;
pub mod rpc_names;
pub mod version;

pub use backend::{create_backend, BackendConfig, Database, YokanError};
pub use client::{CoalescerConfig, CoalescingHandle, DatabaseHandle};
pub use provider::YokanProvider;
pub use replication::VirtualDatabaseProvider;
