//! Bedrock modules for Yokan: plain databases and virtual (replicated)
//! databases.
//!
//! This is the file that makes Yokan a *dynamic* component with the
//! "least engineering impact" the paper asks for: the provider itself is
//! unchanged; migration, checkpoint, and restore are implemented here in
//! the module glue, using the backend's flush/dump/load primitives.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use serde_json::{json, Value};

use mochi_argobots::{AbtError, PoolAccess, PoolConfig, PoolKind, Ult, XstreamConfig};
use mochi_bedrock::{Module, ProviderContext, ProviderInstance};
use mochi_margo::MargoRuntime;
use mochi_mercury::Address;
use mochi_remi::FileSet;

use crate::backend::{
    create_backend_with, lsm, read_dump, write_dump, BackendConfig, Database,
};
use crate::provider::YokanProvider;
use crate::replication::{VirtualConfig, VirtualDatabaseProvider};

/// Library path Yokan conventionally installs under.
pub const LIBRARY: &str = "libyokan.so";
/// Library path of the virtual-database module.
pub const VIRTUAL_LIBRARY: &str = "libyokan-virtual.so";

/// Returns the Yokan Bedrock module (install under [`LIBRARY`]).
pub fn bedrock_module() -> Arc<dyn Module> {
    Arc::new(YokanModule)
}

/// Returns the virtual-database Bedrock module (install under
/// [`VIRTUAL_LIBRARY`]).
pub fn virtual_bedrock_module() -> Arc<dyn Module> {
    Arc::new(VirtualModule)
}

struct YokanModule;

/// Ensures `pool` exists (priority queue, so maintenance sorts below any
/// request handlers sharing it) with a dedicated xstream, and returns an
/// executor that submits LSM flush/compaction work to it.
///
/// The xstream matters: maintenance ULTs do file I/O and briefly spin
/// waiting for a stripe's `maintaining` flag, so they must never compete
/// with RPC handlers for an execution stream. Idempotent on reuse — a
/// second Yokan provider naming the same pool shares it.
fn background_executor(
    margo: &MargoRuntime,
    pool: &str,
) -> Result<lsm::BackgroundExecutor, String> {
    let abt = margo.abt();
    match abt.add_pool(PoolConfig {
        name: pool.into(),
        kind: PoolKind::PrioWait,
        access: PoolAccess::Mpmc,
    }) {
        Ok(_) | Err(AbtError::PoolExists(_)) => {}
        Err(e) => return Err(e.to_string()),
    }
    match abt.add_xstream(XstreamConfig::named(format!("{pool}-es"), pool)) {
        Ok(()) | Err(AbtError::XstreamExists(_)) => {}
        Err(e) => return Err(e.to_string()),
    }
    let margo = margo.clone();
    let pool = pool.to_string();
    Ok(Arc::new(move |task: Box<dyn FnOnce() + Send + 'static>| {
        let abt = margo.abt();
        if abt.find_pool(&pool).is_some() {
            // Negative priority: request ULTs (priority 0) sharing the
            // pool drain first.
            let _ = abt.submit(&pool, Ult::with_priority("yokan-lsm-maint", -1, task));
        } else {
            // Pool torn down (shutdown): run inline rather than drop a
            // flush on the floor.
            task();
        }
    }))
}

struct YokanInstance {
    provider: Arc<YokanProvider>,
    db: Arc<dyn Database>,
    config: BackendConfig,
    data_dir: std::path::PathBuf,
}

impl Module for YokanModule {
    fn type_name(&self) -> &str {
        "yokan"
    }

    fn create(
        &self,
        ctx: ProviderContext,
    ) -> Result<Box<dyn ProviderInstance>, String> {
        let config: BackendConfig = if ctx.config.is_null() {
            BackendConfig::default()
        } else {
            serde_json::from_value(ctx.config.clone()).map_err(|e| e.to_string())?
        };
        let db_dir = ctx.data_dir.join("db");
        let executor = match config.background_pool.as_deref() {
            Some(pool) => Some(background_executor(&ctx.margo, pool)?),
            None => None,
        };
        let db: Arc<dyn Database> =
            Arc::from(create_backend_with(&config, &db_dir, executor).map_err(|e| e.to_string())?);
        // Data-dir-rooted registration: the slice-drain RPCs (routing
        // rebalance) spill and land under the provider's own directory,
        // which is what the server's REMI provider is rooted above.
        let provider = YokanProvider::register_with_data_dir(
            &ctx.margo,
            ctx.provider_id,
            Some(&ctx.pool),
            Arc::clone(&db),
            Some(ctx.data_dir.clone()),
        )
        .map_err(|e| e.to_string())?;
        Ok(Box::new(YokanInstance { provider, db, config, data_dir: ctx.data_dir }))
    }
}

impl ProviderInstance for YokanInstance {
    fn type_name(&self) -> &str {
        "yokan"
    }

    fn config(&self) -> Value {
        json!({
            "backend": self.config.backend,
            "keys": self.db.len().unwrap_or(0),
        })
    }

    fn stop(&self) -> Result<(), String> {
        self.provider.deregister().map_err(|e| e.to_string())
    }

    fn prepare_migration(&self) -> Result<(), String> {
        self.db.flush().map_err(|e| e.to_string())
    }

    fn fileset(&self) -> Option<FileSet> {
        // Only file-backed databases can migrate by moving files. Flush
        // first so the memtable reaches disk; for the `map` backend we
        // materialize a dump file so even it can move.
        self.db.flush().ok()?;
        let db_dir = self.data_dir.join("db");
        if self.db.backend_name() == "map" {
            std::fs::create_dir_all(&db_dir).ok()?;
            let pairs = self.db.dump().ok()?;
            write_dump(&db_dir.join("dump.ykn"), &pairs).ok()?;
        }
        FileSet::scan(&self.data_dir).ok()
    }

    fn checkpoint(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let pairs = self.db.dump().map_err(|e| e.to_string())?;
        write_dump(&dir.join("yokan.ckpt"), &pairs).map_err(|e| e.to_string())
    }

    fn restore(&self, dir: &Path) -> Result<(), String> {
        let pairs = read_dump(&dir.join("yokan.ckpt")).map_err(|e| e.to_string())?;
        self.db.clear().map_err(|e| e.to_string())?;
        self.db.load(&pairs).map_err(|e| e.to_string())
    }
}

struct VirtualModule;

struct VirtualInstance {
    provider: Arc<VirtualDatabaseProvider>,
    config: VirtualConfig,
}

impl Module for VirtualModule {
    fn type_name(&self) -> &str {
        "yokan-virtual"
    }

    fn create(
        &self,
        ctx: ProviderContext,
    ) -> Result<Box<dyn ProviderInstance>, String> {
        let config: VirtualConfig =
            serde_json::from_value(ctx.config.clone()).map_err(|e| e.to_string())?;
        let mut replicas = Vec::with_capacity(config.replicas.len());
        for replica in &config.replicas {
            let address: Address = replica.address.parse().map_err(|e| format!("{e}"))?;
            replicas.push((address, replica.provider_id));
        }
        let provider = VirtualDatabaseProvider::register(
            &ctx.margo,
            ctx.provider_id,
            Some(&ctx.pool),
            replicas,
            Duration::from_secs(2),
        )
        .map_err(|e| e.to_string())?;
        Ok(Box::new(VirtualInstance { provider, config }))
    }
}

impl ProviderInstance for VirtualInstance {
    fn type_name(&self) -> &str {
        "yokan-virtual"
    }

    fn config(&self) -> Value {
        json!({ "replicas": self.config.replicas })
    }

    fn stop(&self) -> Result<(), String> {
        self.provider.deregister().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modules_report_types() {
        assert_eq!(bedrock_module().type_name(), "yokan");
        assert_eq!(virtual_bedrock_module().type_name(), "yokan-virtual");
    }
}
