//! The Yokan provider: serves a [`Database`] over Margo RPCs.
//!
//! Control RPCs (erase, exists, list, len, flush, clear) use the argument
//! codec; data-plane RPCs (put/get, single and multi) use binary framing
//! so values travel as raw bytes and body slices stay zero-copy views of
//! the request buffer.

use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use mochi_margo::{decode_framed, encode_framed, MargoError, MargoRuntime, RpcContext};
use mochi_remi::{FileSet, MigrationOptions, RemiClient, Strategy};

use crate::backend::{read_dump, write_dump, Database, KvPairs};

/// RPC names registered by a Yokan provider (one set per provider id).
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// Framed-header of `PUT` and `GET` requests.
#[derive(Debug, Serialize, Deserialize)]
pub struct KeyHeader {
    /// The key.
    pub key: Vec<u8>,
}

/// Framed-header of `PUT_MULTI`: keys plus the length of each value in
/// the concatenated body.
#[derive(Debug, Serialize, Deserialize)]
pub struct PutMultiHeader {
    /// Keys.
    pub keys: Vec<Vec<u8>>,
    /// Length of each value in the body, in order.
    pub value_lens: Vec<u32>,
}

/// Framed-header of `GET_MULTI` requests.
#[derive(Debug, Serialize, Deserialize)]
pub struct GetMultiHeader {
    /// Keys to fetch.
    pub keys: Vec<Vec<u8>>,
}

/// Framed-header of `GET`/`GET_MULTI` responses: `-1` marks a missing
/// key, otherwise the value's length in the concatenated body.
#[derive(Debug, Serialize, Deserialize)]
pub struct ValuesHeader {
    /// Per-key value length or -1.
    pub lens: Vec<i64>,
}

/// Arguments of `LIST_KEYS`.
#[derive(Debug, Serialize, Deserialize)]
pub struct ListKeysArgs {
    /// Key prefix filter.
    pub prefix: Vec<u8>,
    /// Exclusive resume cursor.
    pub start_after: Option<Vec<u8>>,
    /// Maximum keys to return.
    pub max: usize,
}

/// Arguments of `SLICE_EXPORT`: dump the listed keys to a spill file and
/// push it to the destination's REMI provider (the rebalance drain's
/// source half — "drain through REMI", not through per-key RPCs).
#[derive(Debug, Serialize, Deserialize)]
pub struct SliceExportArgs {
    /// Keys to export (missing ones are skipped, not an error — the
    /// caller's listing may be stale by the time the export runs).
    pub keys: Vec<Vec<u8>>,
    /// Slice tag; names the spill directory on both sides, so a retried
    /// export overwrites its own leftovers instead of accumulating.
    pub tag: String,
    /// Destination server address (string form of [`mochi_mercury::Address`]).
    pub dest: String,
    /// REMI provider id on the destination server.
    pub dest_remi_id: u16,
    /// Destination directory, relative to the destination REMI
    /// provider's root (the importing provider's `slices/<tag>`).
    pub dest_subdir: String,
}

/// Reply of `SLICE_EXPORT`.
#[derive(Debug, Serialize, Deserialize)]
pub struct SliceExportReply {
    /// Pairs exported.
    pub pairs: u64,
    /// Bytes REMI transferred.
    pub bytes: u64,
}

/// Arguments of `SLICE_IMPORT`: load the REMI-delivered spill file named
/// by `tag`, keeping keys the destination already holds (they were
/// written during the move and are newer than the exported snapshot).
#[derive(Debug, Serialize, Deserialize)]
pub struct SliceImportArgs {
    /// Slice tag (matches the export's `tag`).
    pub tag: String,
    /// Replicated keyspaces store versioned records: import with a
    /// per-key freshest-wins compare (put-if-newer) instead of
    /// put-if-absent, so an in-flight dual write never loses to the
    /// exported snapshot.
    pub versioned: bool,
}

/// Reply of `SLICE_IMPORT`.
#[derive(Debug, Serialize, Deserialize)]
pub struct SliceImportReply {
    /// Pairs in the spill file.
    pub pairs: u64,
    /// Pairs actually stored (absent before the import).
    pub stored: u64,
}

/// Framed-header of `PUT_VERSIONED` (body = raw value, empty for
/// tombstones). See [`crate::version`] for the stored-record layout.
#[derive(Debug, Serialize, Deserialize)]
pub struct PutVersionedHeader {
    /// The key.
    pub key: Vec<u8>,
    /// Client-stamped HLC-style version.
    pub version: u64,
    /// Whether this write is a deletion marker.
    pub tombstone: bool,
}

/// Reply of `PUT_VERSIONED` (and per-key element of the multi variant).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PutVersionedReply {
    /// Whether the record won the freshest-wins compare and was stored.
    pub stored: bool,
    /// Whether a *live* (non-tombstone) record existed before this op —
    /// the replicated erase's "did the key exist" answer.
    pub existed: bool,
}

/// Framed-header of `PUT_VERSIONED_MULTI`: parallel per-key arrays, body
/// = concatenated raw values.
#[derive(Debug, Serialize, Deserialize)]
pub struct PutVersionedMultiHeader {
    /// Keys.
    pub keys: Vec<Vec<u8>>,
    /// Length of each raw value in the body (0 for tombstones).
    pub value_lens: Vec<u32>,
    /// Per-key version stamps.
    pub versions: Vec<u64>,
    /// Per-key tombstone flags.
    pub tombstones: Vec<bool>,
}

/// Reply of `PUT_VERSIONED_MULTI`.
#[derive(Debug, Serialize, Deserialize)]
pub struct PutVersionedMultiReply {
    /// How many records won their compare and were stored.
    pub stored: u64,
    /// Per-key: whether a live record existed before the op.
    pub existed: Vec<bool>,
}

/// Framed-header of `GET_VERSIONED_MULTI` responses: `lens[i] == -1`
/// marks a key with *no record at all*; a tombstone is a present record
/// with `tombstones[i]` set and a zero-length value.
#[derive(Debug, Serialize, Deserialize)]
pub struct VersionedValuesHeader {
    /// Per-key raw-value length or -1.
    pub lens: Vec<i64>,
    /// Per-key version (0 when missing or legacy-unversioned).
    pub versions: Vec<u64>,
    /// Per-key tombstone flag (false when missing).
    pub tombstones: Vec<bool>,
}

/// Arguments of `HINT_PUT`: park a record for an unreachable `target`
/// member on this provider (Dynamo-style hinted handoff).
#[derive(Debug, Serialize, Deserialize)]
pub struct HintPutArgs {
    /// Ring member the record is destined for.
    pub target: String,
    /// The key.
    pub key: Vec<u8>,
    /// Version stamp of the hinted write.
    pub version: u64,
    /// Whether the hinted write is a deletion.
    pub tombstone: bool,
    /// Raw value (empty for tombstones).
    pub value: Vec<u8>,
}

/// Arguments of `HINT_LIST`.
#[derive(Debug, Serialize, Deserialize)]
pub struct HintListArgs {
    /// Maximum hints to return (oldest-key order).
    pub max: usize,
}

/// One parked hint, as listed by `HINT_LIST`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HintEntry {
    /// Ring member the record is destined for.
    pub target: String,
    /// The key.
    pub key: Vec<u8>,
    /// Version stamp.
    pub version: u64,
    /// Whether the hinted write is a deletion.
    pub tombstone: bool,
    /// Raw value (empty for tombstones).
    pub value: Vec<u8>,
}

/// One entry of `HINT_DROP`: dropped only if the parked version is still
/// `<= version`, so a fresher hint parked mid-replay survives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HintDropEntry {
    /// Ring member the record was destined for.
    pub target: String,
    /// The key.
    pub key: Vec<u8>,
    /// Version the drainer replayed.
    pub version: u64,
}

/// Arguments of `HINT_DROP`.
#[derive(Debug, Serialize, Deserialize)]
pub struct HintDropArgs {
    /// Replayed hints to drop.
    pub entries: Vec<HintDropEntry>,
}

/// Stripes for the provider-side get-compare-put of `PUT_VERSIONED`:
/// the backend has no compare-and-swap, so the compare runs under a
/// striped mutex keyed like the memory backend's shards.
const VLOCK_STRIPES: usize = 16;

/// Bound on parked hints per provider. A full store rejects new hints
/// (the writer counts that as a failed ack), so an extended outage
/// degrades to quorum failures instead of unbounded memory growth.
const HINT_CAP: usize = 8192;

struct HintRecord {
    version: u64,
    tombstone: bool,
    value: Vec<u8>,
}

/// In-memory hint store: deliberately *not* part of the [`Database`]
/// (hints are transient routing state — they must not pollute
/// `list_keys`/`len` or ride along slice drains).
struct HintStore {
    map: parking_lot::Mutex<std::collections::BTreeMap<(String, Vec<u8>), HintRecord>>,
}

/// A registered Yokan provider.
pub struct YokanProvider {
    margo: MargoRuntime,
    provider_id: u16,
    db: Arc<dyn Database>,
    data_dir: Option<PathBuf>,
    hints: Arc<HintStore>,
}

fn framed_handler(
    db: &Arc<dyn Database>,
    handler: impl Fn(&Arc<dyn Database>, &Bytes) -> Result<Bytes, String> + Send + Sync + 'static,
) -> mochi_margo::RpcHandler {
    let db = Arc::clone(db);
    Arc::new(move |ctx: RpcContext| match handler(&db, ctx.payload_bytes()) {
        Ok(payload) => {
            let _ = ctx.respond_bytes(payload);
        }
        Err(message) => {
            let _ = ctx.respond_err(message);
        }
    })
}

impl YokanProvider {
    /// Registers a provider serving `db` under `provider_id` with no
    /// data directory: the slice-drain RPCs spill under a temp dir on
    /// export and reject imports (REMI needs a provider-rooted landing
    /// directory). Bedrock-managed providers use
    /// [`Self::register_with_data_dir`] and get the full drain surface.
    pub fn register(
        margo: &MargoRuntime,
        provider_id: u16,
        pool: Option<&str>,
        db: Arc<dyn Database>,
    ) -> Result<Arc<Self>, MargoError> {
        Self::register_with_data_dir(margo, provider_id, pool, db, None)
    }

    /// Registers a provider rooted at `data_dir` (the per-provider
    /// directory Bedrock assigns, `<server>/providers/<name>`): slice
    /// exports spill under `data_dir/slices-out/<tag>` and imports read
    /// REMI-delivered files from `data_dir/slices/<tag>`.
    pub fn register_with_data_dir(
        margo: &MargoRuntime,
        provider_id: u16,
        pool: Option<&str>,
        db: Arc<dyn Database>,
        data_dir: Option<PathBuf>,
    ) -> Result<Arc<Self>, MargoError> {
        // PUT: header = key, body = value.
        margo.register(
            rpc::PUT,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, body) =
                    decode_framed::<KeyHeader>(payload).map_err(|e| e.to_string())?;
                db.put(&header.key, &body).map_err(|e| e.to_string())?;
                encode_framed(&true, &[]).map_err(|e| e.to_string())
            }),
        )?;
        // PUT_MULTI.
        margo.register(
            rpc::PUT_MULTI,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, body) =
                    decode_framed::<PutMultiHeader>(payload).map_err(|e| e.to_string())?;
                if header.keys.len() != header.value_lens.len() {
                    return Err("keys/value_lens length mismatch".into());
                }
                let total: usize = header.value_lens.iter().map(|l| *l as usize).sum();
                if total != body.len() {
                    return Err("body length mismatch".into());
                }
                let mut pairs: Vec<(&[u8], &[u8])> = Vec::with_capacity(header.keys.len());
                let mut cursor = 0usize;
                for (key, len) in header.keys.iter().zip(&header.value_lens) {
                    let len = *len as usize;
                    pairs.push((key.as_slice(), &body[cursor..cursor + len]));
                    cursor += len;
                }
                // One backend call: stripe-grouped / WAL-batched.
                db.put_multi(&pairs).map_err(|e| e.to_string())?;
                encode_framed(&(header.keys.len() as u64), &[]).map_err(|e| e.to_string())
            }),
        )?;
        // GET.
        margo.register(
            rpc::GET,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, _) =
                    decode_framed::<KeyHeader>(payload).map_err(|e| e.to_string())?;
                match db.get(&header.key).map_err(|e| e.to_string())? {
                    Some(value) => {
                        encode_framed(&ValuesHeader { lens: vec![value.len() as i64] }, &value)
                            .map_err(|e| e.to_string())
                    }
                    None => encode_framed(&ValuesHeader { lens: vec![-1] }, &[])
                        .map_err(|e| e.to_string()),
                }
            }),
        )?;
        // GET_MULTI.
        margo.register(
            rpc::GET_MULTI,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, _) =
                    decode_framed::<GetMultiHeader>(payload).map_err(|e| e.to_string())?;
                let keys: Vec<&[u8]> = header.keys.iter().map(|k| k.as_slice()).collect();
                let values = db.get_multi(&keys).map_err(|e| e.to_string())?;
                let mut lens = Vec::with_capacity(values.len());
                let mut body = Vec::new();
                for value in &values {
                    match value {
                        Some(value) => {
                            lens.push(value.len() as i64);
                            body.extend_from_slice(value);
                        }
                        None => lens.push(-1),
                    }
                }
                encode_framed(&ValuesHeader { lens }, &body).map_err(|e| e.to_string())
            }),
        )?;
        // Control plane (argument codec).
        let erase_db = Arc::clone(&db);
        margo.register_typed(rpc::ERASE, provider_id, pool, move |key: Vec<u8>, _| {
            erase_db.erase(&key).map_err(|e| e.to_string())
        })?;
        let exists_db = Arc::clone(&db);
        margo.register_typed(rpc::EXISTS, provider_id, pool, move |key: Vec<u8>, _| {
            exists_db.exists(&key).map_err(|e| e.to_string())
        })?;
        let list_db = Arc::clone(&db);
        margo.register_typed(rpc::LIST_KEYS, provider_id, pool, move |args: ListKeysArgs, _| {
            list_db
                .list_keys(&args.prefix, args.start_after.as_deref(), args.max)
                .map_err(|e| e.to_string())
        })?;
        let len_db = Arc::clone(&db);
        margo.register_typed(rpc::LEN, provider_id, pool, move |_: (), _| {
            len_db.len().map_err(|e| e.to_string())
        })?;
        let flush_db = Arc::clone(&db);
        margo.register_typed(rpc::FLUSH, provider_id, pool, move |_: (), _| {
            flush_db.flush().map(|()| true).map_err(|e| e.to_string())
        })?;
        let clear_db = Arc::clone(&db);
        margo.register_typed(rpc::CLEAR, provider_id, pool, move |_: (), _| {
            clear_db.clear().map(|()| true).map_err(|e| e.to_string())
        })?;
        // Routing drain surface: batch erase + REMI-backed slice moves.
        // None of the three is idempotent-declared — the routed client
        // drives them with explicit round-level retries instead.
        let erase_multi_db = Arc::clone(&db);
        margo.register_typed(
            rpc::ERASE_MULTI,
            provider_id,
            pool,
            move |keys: Vec<Vec<u8>>, _| {
                let mut erased = 0u64;
                for key in &keys {
                    if erase_multi_db.erase(key).map_err(|e| e.to_string())? {
                        erased += 1;
                    }
                }
                Ok(erased)
            },
        )?;
        let export_db = Arc::clone(&db);
        let export_margo = margo.clone();
        let export_scratch = data_dir
            .as_ref()
            .map(|d| d.join("slices-out"))
            .unwrap_or_else(|| std::env::temp_dir().join(format!("yokan-slices-{provider_id}")));
        margo.register_typed(
            rpc::SLICE_EXPORT,
            provider_id,
            pool,
            move |args: SliceExportArgs, ctx: &RpcContext| {
                slice_export(&export_db, &export_margo, &export_scratch, args, ctx)
                    .map_err(|e| e.to_string())
            },
        )?;
        // Versioned-record + hint surface (replicated keyspaces,
        // DESIGN.md §18). The get-compare-put of put-if-newer runs under
        // striped mutexes; values stay framed raw bytes end to end.
        let vlocks: Arc<Vec<parking_lot::Mutex<()>>> =
            Arc::new((0..VLOCK_STRIPES).map(|_| parking_lot::Mutex::new(())).collect());
        let import_db = Arc::clone(&db);
        let import_root = data_dir.as_ref().map(|d| d.join("slices"));
        let import_locks = Arc::clone(&vlocks);
        margo.register_typed(
            rpc::SLICE_IMPORT,
            provider_id,
            pool,
            move |args: SliceImportArgs, _| {
                let Some(root) = import_root.as_ref() else {
                    return Err("slice import needs a data-dir-rooted provider".into());
                };
                slice_import(&import_db, &import_locks, root, &args).map_err(|e| e.to_string())
            },
        )?;
        let vput_locks = Arc::clone(&vlocks);
        margo.register(
            rpc::PUT_VERSIONED,
            provider_id,
            pool,
            framed_handler(&db, move |db, payload| {
                let (header, body) =
                    decode_framed::<PutVersionedHeader>(payload).map_err(|e| e.to_string())?;
                let reply =
                    put_if_newer(db, &vput_locks, &header.key, header.version, header.tombstone, &body)?;
                encode_framed(&reply, &[]).map_err(|e| e.to_string())
            }),
        )?;
        let vput_multi_locks = Arc::clone(&vlocks);
        margo.register(
            rpc::PUT_VERSIONED_MULTI,
            provider_id,
            pool,
            framed_handler(&db, move |db, payload| {
                let (header, body) =
                    decode_framed::<PutVersionedMultiHeader>(payload).map_err(|e| e.to_string())?;
                let n = header.keys.len();
                if header.value_lens.len() != n
                    || header.versions.len() != n
                    || header.tombstones.len() != n
                {
                    return Err("parallel array length mismatch".into());
                }
                let total: usize = header.value_lens.iter().map(|l| *l as usize).sum();
                if total != body.len() {
                    return Err("body length mismatch".into());
                }
                let mut stored = 0u64;
                let mut existed = Vec::with_capacity(n);
                let mut cursor = 0usize;
                for i in 0..n {
                    let len = header.value_lens[i] as usize;
                    let value = &body[cursor..cursor + len];
                    cursor += len;
                    let reply = put_if_newer(
                        db,
                        &vput_multi_locks,
                        &header.keys[i],
                        header.versions[i],
                        header.tombstones[i],
                        value,
                    )?;
                    if reply.stored {
                        stored += 1;
                    }
                    existed.push(reply.existed);
                }
                encode_framed(&PutVersionedMultiReply { stored, existed }, &[])
                    .map_err(|e| e.to_string())
            }),
        )?;
        margo.register(
            rpc::GET_VERSIONED_MULTI,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, _) =
                    decode_framed::<GetMultiHeader>(payload).map_err(|e| e.to_string())?;
                let keys: Vec<&[u8]> = header.keys.iter().map(|k| k.as_slice()).collect();
                let values = db.get_multi(&keys).map_err(|e| e.to_string())?;
                let mut lens = Vec::with_capacity(values.len());
                let mut versions = Vec::with_capacity(values.len());
                let mut tombstones = Vec::with_capacity(values.len());
                let mut body = Vec::new();
                for value in &values {
                    match value {
                        Some(stored) => {
                            let record = crate::version::decode_record(stored);
                            lens.push(record.value.len() as i64);
                            versions.push(record.version);
                            tombstones.push(record.tombstone);
                            body.extend_from_slice(record.value);
                        }
                        None => {
                            lens.push(-1);
                            versions.push(0);
                            tombstones.push(false);
                        }
                    }
                }
                encode_framed(&VersionedValuesHeader { lens, versions, tombstones }, &body)
                    .map_err(|e| e.to_string())
            }),
        )?;
        let hints = Arc::new(HintStore {
            map: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
        });
        let hint_put_store = Arc::clone(&hints);
        margo.register_typed(rpc::HINT_PUT, provider_id, pool, move |args: HintPutArgs, _| {
            let slot = (args.target, args.key);
            let mut map = hint_put_store.map.lock();
            if map.len() >= HINT_CAP && !map.contains_key(&slot) {
                return Ok(false);
            }
            // Keep-freshest: `>=` so a transport-level re-send of the
            // same hint converges instead of being dropped.
            if map.get(&slot).is_none_or(|parked| args.version >= parked.version) {
                map.insert(
                    slot,
                    HintRecord {
                        version: args.version,
                        tombstone: args.tombstone,
                        value: args.value,
                    },
                );
            }
            Ok(true)
        })?;
        let hint_list_store = Arc::clone(&hints);
        margo.register_typed(rpc::HINT_LIST, provider_id, pool, move |args: HintListArgs, _| {
            let map = hint_list_store.map.lock();
            let entries: Vec<HintEntry> = map
                .iter()
                .take(args.max)
                .map(|((target, key), parked)| HintEntry {
                    target: target.clone(),
                    key: key.clone(),
                    version: parked.version,
                    tombstone: parked.tombstone,
                    value: parked.value.clone(),
                })
                .collect();
            Ok(entries)
        })?;
        let hint_drop_store = Arc::clone(&hints);
        margo.register_typed(rpc::HINT_DROP, provider_id, pool, move |args: HintDropArgs, _| {
            let mut map = hint_drop_store.map.lock();
            let mut dropped = 0u64;
            for entry in &args.entries {
                let slot = (entry.target.clone(), entry.key.clone());
                let replayed = map.get(&slot).is_some_and(|parked| parked.version <= entry.version);
                if replayed {
                    map.remove(&slot);
                    dropped += 1;
                }
            }
            Ok(dropped)
        })?;

        Ok(Arc::new(Self { margo: margo.clone(), provider_id, db, data_dir, hints }))
    }

    /// This provider's id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Direct access to the backing database (local callers, tests).
    pub fn database(&self) -> &Arc<dyn Database> {
        &self.db
    }

    /// The per-provider data directory, when Bedrock-managed.
    pub fn data_dir(&self) -> Option<&PathBuf> {
        self.data_dir.as_ref()
    }

    /// Number of parked hinted-handoff records (monitoring, tests).
    pub fn hint_len(&self) -> usize {
        let map = self.hints.map.lock();
        map.len()
    }

    /// Deregisters all RPCs of this provider.
    pub fn deregister(&self) -> Result<(), MargoError> {
        for name in rpc::ALL {
            self.margo.deregister(name, self.provider_id)?;
        }
        Ok(())
    }
}

/// Rejects tags that would escape the spill directory when joined.
fn check_tag(tag: &str) -> Result<(), String> {
    if tag.is_empty()
        || tag.contains(['/', '\\'])
        || tag.contains("..")
        || tag.starts_with('.')
    {
        return Err(format!("invalid slice tag {tag:?}"));
    }
    Ok(())
}

/// `SLICE_EXPORT` body: snapshot the listed keys into a one-file spill
/// fileset and hand it to REMI, addressed at the destination provider's
/// `slices/<tag>` landing directory. The nested REMI forwards run under
/// the export RPC's remaining deadline (`ctx.nested_context()`), so a
/// caller-side timeout bounds the whole transfer.
fn slice_export(
    db: &Arc<dyn Database>,
    margo: &MargoRuntime,
    scratch_root: &std::path::Path,
    args: SliceExportArgs,
    ctx: &RpcContext,
) -> Result<SliceExportReply, String> {
    check_tag(&args.tag)?;
    let dest: mochi_mercury::Address =
        args.dest.parse().map_err(|e: mochi_mercury::MercuryError| e.to_string())?;
    let keys: Vec<&[u8]> = args.keys.iter().map(|k| k.as_slice()).collect();
    let values = db.get_multi(&keys).map_err(|e| e.to_string())?;
    let pairs: KvPairs = args
        .keys
        .iter()
        .zip(values)
        .filter_map(|(k, v)| v.map(|v| (k.clone(), v)))
        .collect();
    let dir = scratch_root.join(&args.tag);
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    write_dump(&dir.join("slice.ykn"), &pairs).map_err(|e| e.to_string())?;
    let fileset = FileSet::scan(&dir).map_err(|e| e.to_string())?;
    let remi = RemiClient::new(margo).with_context(ctx.nested_context());
    let options = MigrationOptions {
        dest_subdir: Some(args.dest_subdir.clone()),
        remove_source: true,
        timeout: margo.rpc_timeout(),
    };
    let report = remi
        .migrate(&dest, args.dest_remi_id, &fileset, Strategy::Rdma, &options)
        .map_err(|e| e.to_string())?;
    // remove_source dropped the spill file; drop its directory too.
    let _ = std::fs::remove_dir_all(&dir);
    Ok(SliceExportReply { pairs: pairs.len() as u64, bytes: report.bytes })
}

/// `SLICE_IMPORT` body: load the spill file REMI landed under
/// `slices/<tag>`, then clean up. Unversioned keyspaces keep keys that
/// already exist (written during the move, newer than the exported
/// snapshot); versioned keyspaces run the per-key freshest-wins compare
/// instead, because an existing record may be *older* than the snapshot
/// (a replica that missed writes while partitioned).
fn slice_import(
    db: &Arc<dyn Database>,
    vlocks: &[parking_lot::Mutex<()>],
    import_root: &std::path::Path,
    args: &SliceImportArgs,
) -> Result<SliceImportReply, String> {
    check_tag(&args.tag)?;
    let dir = import_root.join(&args.tag);
    let pairs = read_dump(&dir.join("slice.ykn")).map_err(|e| e.to_string())?;
    let stored = if args.versioned {
        let mut stored = 0u64;
        for (key, record) in &pairs {
            if store_if_newer_record(db, vlocks, key, record)? {
                stored += 1;
            }
        }
        stored
    } else {
        db.load_absent(&pairs).map_err(|e| e.to_string())?
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(SliceImportReply { pairs: pairs.len() as u64, stored })
}

/// Get-compare-put of one *already-encoded* record under the key's
/// version-lock stripe. Returns whether the record won and was stored.
fn store_if_newer_record(
    db: &Arc<dyn Database>,
    vlocks: &[parking_lot::Mutex<()>],
    key: &[u8],
    record: &[u8],
) -> Result<bool, String> {
    let stripe = (mochi_util::fnv1a64(key) as usize) % vlocks.len();
    let guard = vlocks[stripe].lock();
    let current = db.get(key).map_err(|e| e.to_string())?;
    let newer = match &current {
        None => true,
        Some(stored) => crate::version::record_is_newer(record, stored),
    };
    if newer {
        db.put(key, record).map_err(|e| e.to_string())?;
    }
    drop(guard);
    Ok(newer)
}

/// `PUT_VERSIONED` body: encode the incoming write as a record and store
/// it iff it is fresher than what the backend holds. `existed` reports
/// whether a live (non-tombstone) record was present *before* the op —
/// the answer a replicated erase surfaces to its caller.
fn put_if_newer(
    db: &Arc<dyn Database>,
    vlocks: &[parking_lot::Mutex<()>],
    key: &[u8],
    version: u64,
    tombstone: bool,
    value: &[u8],
) -> Result<PutVersionedReply, String> {
    let record =
        crate::version::encode_record(version, if tombstone { None } else { Some(value) });
    let stripe = (mochi_util::fnv1a64(key) as usize) % vlocks.len();
    let guard = vlocks[stripe].lock();
    let current = db.get(key).map_err(|e| e.to_string())?;
    let (newer, existed) = match &current {
        None => (true, false),
        Some(stored) => (
            crate::version::record_is_newer(&record, stored),
            !crate::version::decode_record(stored).tombstone,
        ),
    };
    if newer {
        db.put(key, &record).map_err(|e| e.to_string())?;
    }
    drop(guard);
    Ok(PutVersionedReply { stored: newer, existed })
}
