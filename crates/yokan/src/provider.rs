//! The Yokan provider: serves a [`Database`] over Margo RPCs.
//!
//! Control RPCs (erase, exists, list, len, flush, clear) use the argument
//! codec; data-plane RPCs (put/get, single and multi) use binary framing
//! so values travel as raw bytes and body slices stay zero-copy views of
//! the request buffer.

use std::sync::Arc;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use mochi_margo::{decode_framed, encode_framed, MargoError, MargoRuntime, RpcContext};

use crate::backend::Database;

/// RPC names registered by a Yokan provider (one set per provider id).
/// The constants themselves live in [`crate::rpc_names`].
pub use crate::rpc_names as rpc;

/// Framed-header of `PUT` and `GET` requests.
#[derive(Debug, Serialize, Deserialize)]
pub struct KeyHeader {
    /// The key.
    pub key: Vec<u8>,
}

/// Framed-header of `PUT_MULTI`: keys plus the length of each value in
/// the concatenated body.
#[derive(Debug, Serialize, Deserialize)]
pub struct PutMultiHeader {
    /// Keys.
    pub keys: Vec<Vec<u8>>,
    /// Length of each value in the body, in order.
    pub value_lens: Vec<u32>,
}

/// Framed-header of `GET_MULTI` requests.
#[derive(Debug, Serialize, Deserialize)]
pub struct GetMultiHeader {
    /// Keys to fetch.
    pub keys: Vec<Vec<u8>>,
}

/// Framed-header of `GET`/`GET_MULTI` responses: `-1` marks a missing
/// key, otherwise the value's length in the concatenated body.
#[derive(Debug, Serialize, Deserialize)]
pub struct ValuesHeader {
    /// Per-key value length or -1.
    pub lens: Vec<i64>,
}

/// Arguments of `LIST_KEYS`.
#[derive(Debug, Serialize, Deserialize)]
pub struct ListKeysArgs {
    /// Key prefix filter.
    pub prefix: Vec<u8>,
    /// Exclusive resume cursor.
    pub start_after: Option<Vec<u8>>,
    /// Maximum keys to return.
    pub max: usize,
}

/// A registered Yokan provider.
pub struct YokanProvider {
    margo: MargoRuntime,
    provider_id: u16,
    db: Arc<dyn Database>,
}

fn framed_handler(
    db: &Arc<dyn Database>,
    handler: impl Fn(&Arc<dyn Database>, &Bytes) -> Result<Bytes, String> + Send + Sync + 'static,
) -> mochi_margo::RpcHandler {
    let db = Arc::clone(db);
    Arc::new(move |ctx: RpcContext| match handler(&db, ctx.payload_bytes()) {
        Ok(payload) => {
            let _ = ctx.respond_bytes(payload);
        }
        Err(message) => {
            let _ = ctx.respond_err(message);
        }
    })
}

impl YokanProvider {
    /// Registers a provider serving `db` under `provider_id`.
    pub fn register(
        margo: &MargoRuntime,
        provider_id: u16,
        pool: Option<&str>,
        db: Arc<dyn Database>,
    ) -> Result<Arc<Self>, MargoError> {
        // PUT: header = key, body = value.
        margo.register(
            rpc::PUT,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, body) =
                    decode_framed::<KeyHeader>(payload).map_err(|e| e.to_string())?;
                db.put(&header.key, &body).map_err(|e| e.to_string())?;
                encode_framed(&true, &[]).map_err(|e| e.to_string())
            }),
        )?;
        // PUT_MULTI.
        margo.register(
            rpc::PUT_MULTI,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, body) =
                    decode_framed::<PutMultiHeader>(payload).map_err(|e| e.to_string())?;
                if header.keys.len() != header.value_lens.len() {
                    return Err("keys/value_lens length mismatch".into());
                }
                let total: usize = header.value_lens.iter().map(|l| *l as usize).sum();
                if total != body.len() {
                    return Err("body length mismatch".into());
                }
                let mut pairs: Vec<(&[u8], &[u8])> = Vec::with_capacity(header.keys.len());
                let mut cursor = 0usize;
                for (key, len) in header.keys.iter().zip(&header.value_lens) {
                    let len = *len as usize;
                    pairs.push((key.as_slice(), &body[cursor..cursor + len]));
                    cursor += len;
                }
                // One backend call: stripe-grouped / WAL-batched.
                db.put_multi(&pairs).map_err(|e| e.to_string())?;
                encode_framed(&(header.keys.len() as u64), &[]).map_err(|e| e.to_string())
            }),
        )?;
        // GET.
        margo.register(
            rpc::GET,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, _) =
                    decode_framed::<KeyHeader>(payload).map_err(|e| e.to_string())?;
                match db.get(&header.key).map_err(|e| e.to_string())? {
                    Some(value) => {
                        encode_framed(&ValuesHeader { lens: vec![value.len() as i64] }, &value)
                            .map_err(|e| e.to_string())
                    }
                    None => encode_framed(&ValuesHeader { lens: vec![-1] }, &[])
                        .map_err(|e| e.to_string()),
                }
            }),
        )?;
        // GET_MULTI.
        margo.register(
            rpc::GET_MULTI,
            provider_id,
            pool,
            framed_handler(&db, |db, payload| {
                let (header, _) =
                    decode_framed::<GetMultiHeader>(payload).map_err(|e| e.to_string())?;
                let keys: Vec<&[u8]> = header.keys.iter().map(|k| k.as_slice()).collect();
                let values = db.get_multi(&keys).map_err(|e| e.to_string())?;
                let mut lens = Vec::with_capacity(values.len());
                let mut body = Vec::new();
                for value in &values {
                    match value {
                        Some(value) => {
                            lens.push(value.len() as i64);
                            body.extend_from_slice(value);
                        }
                        None => lens.push(-1),
                    }
                }
                encode_framed(&ValuesHeader { lens }, &body).map_err(|e| e.to_string())
            }),
        )?;
        // Control plane (argument codec).
        let erase_db = Arc::clone(&db);
        margo.register_typed(rpc::ERASE, provider_id, pool, move |key: Vec<u8>, _| {
            erase_db.erase(&key).map_err(|e| e.to_string())
        })?;
        let exists_db = Arc::clone(&db);
        margo.register_typed(rpc::EXISTS, provider_id, pool, move |key: Vec<u8>, _| {
            exists_db.exists(&key).map_err(|e| e.to_string())
        })?;
        let list_db = Arc::clone(&db);
        margo.register_typed(rpc::LIST_KEYS, provider_id, pool, move |args: ListKeysArgs, _| {
            list_db
                .list_keys(&args.prefix, args.start_after.as_deref(), args.max)
                .map_err(|e| e.to_string())
        })?;
        let len_db = Arc::clone(&db);
        margo.register_typed(rpc::LEN, provider_id, pool, move |_: (), _| {
            len_db.len().map_err(|e| e.to_string())
        })?;
        let flush_db = Arc::clone(&db);
        margo.register_typed(rpc::FLUSH, provider_id, pool, move |_: (), _| {
            flush_db.flush().map(|()| true).map_err(|e| e.to_string())
        })?;
        let clear_db = Arc::clone(&db);
        margo.register_typed(rpc::CLEAR, provider_id, pool, move |_: (), _| {
            clear_db.clear().map(|()| true).map_err(|e| e.to_string())
        })?;

        Ok(Arc::new(Self { margo: margo.clone(), provider_id, db }))
    }

    /// This provider's id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Direct access to the backing database (local callers, tests).
    pub fn database(&self) -> &Arc<dyn Database> {
        &self.db
    }

    /// Deregisters all RPCs of this provider.
    pub fn deregister(&self) -> Result<(), MargoError> {
        for name in rpc::ALL {
            self.margo.deregister(name, self.provider_id)?;
        }
        Ok(())
    }
}
