//! Virtual databases: bottom-up replication (paper §7, Observation 10).
//!
//! "A Yokan 'virtual database' could forward the data it receives to N
//! other actual databases living on other nodes. The client accessing
//! this virtual database does not know that the provider it contacts does
//! not actually hold data itself or that the data is replicated."
//!
//! [`VirtualDatabaseProvider`] registers the *same* RPC names as a real
//! Yokan provider, so any [`crate::client::DatabaseHandle`] works against
//! it unchanged — that indistinguishability is the point of the design.
//! Writes go to all replicas (write-all); reads try replicas in order and
//! return the first answer, which keeps reads available while any single
//! replica survives.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use mochi_margo::{decode_framed, encode_framed, MargoError, MargoRuntime, RpcContext};
use mochi_mercury::{Address, CallContext};

use crate::client::DatabaseHandle;
use crate::provider::rpc;
use crate::provider::{GetMultiHeader, KeyHeader, ListKeysArgs, PutMultiHeader, ValuesHeader};

/// Location of one replica.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSpec {
    /// Address of the process running the replica provider.
    pub address: String,
    /// Provider id of the replica.
    pub provider_id: u16,
}

/// Configuration of a virtual database (the provider's `config` object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VirtualConfig {
    /// Backing replicas, in read-preference order.
    pub replicas: Vec<ReplicaSpec>,
}

struct Inner {
    replicas: parking_lot::RwLock<Vec<DatabaseHandle>>,
}

impl Inner {
    fn write_all<T>(
        &self,
        cx: CallContext,
        op: impl Fn(&DatabaseHandle) -> Result<T, MargoError>,
    ) -> Result<T, String> {
        let replicas = self.replicas.read();
        if replicas.is_empty() {
            return Err("virtual database has no replicas".into());
        }
        let mut last = None;
        for handle in replicas.iter() {
            // Per-request clone so the fan-out inherits the caller's
            // remaining deadline budget instead of restarting it.
            let handle = handle.clone().with_context(cx);
            match op(&handle) {
                Ok(value) => last = Some(value),
                Err(e) => {
                    return Err(format!("replica {} failed: {e}", handle.address()));
                }
            }
        }
        Ok(last.expect("nonempty replicas"))
    }

    fn read_any<T>(
        &self,
        cx: CallContext,
        op: impl Fn(&DatabaseHandle) -> Result<T, MargoError>,
    ) -> Result<T, String> {
        let replicas = self.replicas.read();
        if replicas.is_empty() {
            return Err("virtual database has no replicas".into());
        }
        let mut errors = Vec::new();
        for handle in replicas.iter() {
            let handle = handle.clone().with_context(cx);
            match op(&handle) {
                Ok(value) => return Ok(value),
                Err(e) => errors.push(format!("{}: {e}", handle.address())),
            }
        }
        Err(format!("all replicas failed: {errors:?}"))
    }
}

/// A provider that replicates over N backing Yokan databases.
pub struct VirtualDatabaseProvider {
    margo: MargoRuntime,
    provider_id: u16,
    inner: Arc<Inner>,
}

impl VirtualDatabaseProvider {
    /// Registers a virtual database under `provider_id`, backed by
    /// `replicas` (each `(address, provider_id)` of a real Yokan
    /// provider). `timeout` bounds each per-replica RPC so a dead replica
    /// fails over quickly on the read path.
    pub fn register(
        margo: &MargoRuntime,
        provider_id: u16,
        pool: Option<&str>,
        replicas: Vec<(Address, u16)>,
        timeout: Duration,
    ) -> Result<Arc<Self>, MargoError> {
        let handles = replicas
            .into_iter()
            .map(|(address, id)| DatabaseHandle::new(margo, address, id).with_timeout(timeout))
            .collect();
        let inner = Arc::new(Inner { replicas: parking_lot::RwLock::new(handles) });

        type FramedOp =
            Box<dyn Fn(&Inner, &[u8], CallContext) -> Result<Bytes, String> + Send + Sync>;
        let raw = |inner: &Arc<Inner>, f: FramedOp| -> mochi_margo::RpcHandler {
            let inner = Arc::clone(inner);
            Arc::new(move |ctx: RpcContext| match f(&inner, ctx.payload(), ctx.nested_context()) {
                Ok(payload) => {
                    let _ = ctx.respond_bytes(payload);
                }
                Err(message) => {
                    let _ = ctx.respond_err(message);
                }
            })
        };

        margo.register(
            rpc::PUT,
            provider_id,
            pool,
            raw(
                &inner,
                Box::new(|inner, payload, cx| {
                    let (header, body): (KeyHeader, &[u8]) =
                        decode_framed(payload).map_err(|e| e.to_string())?;
                    inner.write_all(cx, |h| h.put(&header.key, body))?;
                    encode_framed(&true, &[]).map_err(|e| e.to_string())
                }),
            ),
        )?;
        margo.register(
            rpc::PUT_MULTI,
            provider_id,
            pool,
            raw(
                &inner,
                Box::new(|inner, payload, cx| {
                    let (header, body): (PutMultiHeader, &[u8]) =
                        decode_framed(payload).map_err(|e| e.to_string())?;
                    let mut pairs: Vec<(&[u8], &[u8])> = Vec::with_capacity(header.keys.len());
                    let mut cursor = 0usize;
                    for (key, len) in header.keys.iter().zip(&header.value_lens) {
                        let len = *len as usize;
                        pairs.push((key.as_slice(), &body[cursor..cursor + len]));
                        cursor += len;
                    }
                    inner.write_all(cx, |h| h.put_multi(&pairs))?;
                    encode_framed(&(pairs.len() as u64), &[]).map_err(|e| e.to_string())
                }),
            ),
        )?;
        margo.register(
            rpc::GET,
            provider_id,
            pool,
            raw(
                &inner,
                Box::new(|inner, payload, cx| {
                    let (header, _): (KeyHeader, &[u8]) =
                        decode_framed(payload).map_err(|e| e.to_string())?;
                    let value = inner.read_any(cx, |h| h.get(&header.key))?;
                    match value {
                        Some(v) => {
                            encode_framed(&ValuesHeader { lens: vec![v.len() as i64] }, &v)
                                .map_err(|e| e.to_string())
                        }
                        None => encode_framed(&ValuesHeader { lens: vec![-1] }, &[])
                            .map_err(|e| e.to_string()),
                    }
                }),
            ),
        )?;
        margo.register(
            rpc::GET_MULTI,
            provider_id,
            pool,
            raw(
                &inner,
                Box::new(|inner, payload, cx| {
                    let (header, _): (GetMultiHeader, &[u8]) =
                        decode_framed(payload).map_err(|e| e.to_string())?;
                    let keys: Vec<&[u8]> = header.keys.iter().map(|k| k.as_slice()).collect();
                    let values = inner.read_any(cx, |h| h.get_multi(&keys))?;
                    let mut lens = Vec::with_capacity(values.len());
                    let mut body = Vec::new();
                    for value in values {
                        match value {
                            Some(v) => {
                                lens.push(v.len() as i64);
                                body.extend_from_slice(&v);
                            }
                            None => lens.push(-1),
                        }
                    }
                    encode_framed(&ValuesHeader { lens }, &body).map_err(|e| e.to_string())
                }),
            ),
        )?;
        let erase_inner = Arc::clone(&inner);
        margo.register_typed(rpc::ERASE, provider_id, pool, move |key: Vec<u8>, ctx| {
            erase_inner.write_all(ctx.nested_context(), |h| h.erase(&key))
        })?;
        let exists_inner = Arc::clone(&inner);
        margo.register_typed(rpc::EXISTS, provider_id, pool, move |key: Vec<u8>, ctx| {
            exists_inner.read_any(ctx.nested_context(), |h| h.exists(&key))
        })?;
        let list_inner = Arc::clone(&inner);
        margo.register_typed(rpc::LIST_KEYS, provider_id, pool, move |args: ListKeysArgs, ctx| {
            list_inner.read_any(ctx.nested_context(), |h| {
                h.list_keys(&args.prefix, args.start_after.as_deref(), args.max)
            })
        })?;
        let len_inner = Arc::clone(&inner);
        margo.register_typed(rpc::LEN, provider_id, pool, move |_: (), ctx| {
            len_inner.read_any(ctx.nested_context(), |h| h.len())
        })?;
        let flush_inner = Arc::clone(&inner);
        margo.register_typed(rpc::FLUSH, provider_id, pool, move |_: (), ctx| {
            flush_inner.write_all(ctx.nested_context(), |h| h.flush()).map(|()| true)
        })?;
        let clear_inner = Arc::clone(&inner);
        margo.register_typed(rpc::CLEAR, provider_id, pool, move |_: (), ctx| {
            clear_inner.write_all(ctx.nested_context(), |h| h.clear()).map(|()| true)
        })?;

        Ok(Arc::new(Self { margo: margo.clone(), provider_id, inner }))
    }

    /// Current replica addresses, in read order.
    pub fn replicas(&self) -> Vec<Address> {
        self.inner.replicas.read().iter().map(|h| h.address().clone()).collect()
    }

    /// Replaces the replica set (used by the top-down resilience manager
    /// after re-replication).
    pub fn set_replicas(&self, margo: &MargoRuntime, replicas: Vec<(Address, u16)>, timeout: Duration) {
        let handles: Vec<DatabaseHandle> = replicas
            .into_iter()
            .map(|(address, id)| DatabaseHandle::new(margo, address, id).with_timeout(timeout))
            .collect();
        *self.inner.replicas.write() = handles;
    }

    /// Deregisters the virtual provider's RPCs.
    pub fn deregister(&self) -> Result<(), MargoError> {
        for name in rpc::ALL {
            self.margo.deregister(name, self.provider_id)?;
        }
        Ok(())
    }
}
