//! Yokan's client library: the resource handle of Figure 1.
//!
//! A [`DatabaseHandle`] "maps to a remote resource by encapsulating the
//! address and provider ID of the provider holding that resource" and
//! offers put/get-style access.

use std::time::Duration;

use bytes::Bytes;
use mochi_margo::{decode_framed, encode_framed, CallContext, MargoError, MargoRuntime};
use mochi_mercury::Address;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::provider::{GetMultiHeader, KeyHeader, ListKeysArgs, PutMultiHeader, ValuesHeader};
use crate::provider::rpc;

/// RPCs the runtime may safely re-send on transport-class failures.
/// Yokan's mutations are last-writer-wins over full values, so re-running
/// a `put` (or `clear`/`flush`) converges to the same state. `erase` is
/// excluded: its reply ("did the key exist") is not stable under retry.
const IDEMPOTENT_RPCS: &[&str] = &[
    rpc::PUT,
    rpc::PUT_MULTI,
    rpc::GET,
    rpc::GET_MULTI,
    rpc::EXISTS,
    rpc::LIST_KEYS,
    rpc::LEN,
    rpc::FLUSH,
    rpc::CLEAR,
];

/// Handle to a remote Yokan database.
#[derive(Clone)]
pub struct DatabaseHandle {
    margo: MargoRuntime,
    address: Address,
    provider_id: u16,
    timeout: Duration,
}

impl DatabaseHandle {
    /// Creates a handle to the database served by `(address, provider_id)`.
    pub fn new(margo: &MargoRuntime, address: Address, provider_id: u16) -> Self {
        for name in IDEMPOTENT_RPCS {
            margo.declare_idempotent(name);
        }
        let timeout = margo.rpc_timeout();
        Self { margo: margo.clone(), address, provider_id, timeout }
    }

    /// Single chokepoint for typed RPCs: every forward in this client
    /// routes through here (or [`Self::call_raw`]) so retry, breaker, and
    /// deadline handling apply uniformly — `mochi-lint` MOCHI011 enforces
    /// this.
    fn call<I: Serialize, O: DeserializeOwned>(
        &self,
        rpc_name: &str,
        input: &I,
    ) -> Result<O, MargoError> {
        self.margo.forward_timeout(&self.address, rpc_name, self.provider_id, input, self.timeout)
    }

    /// Raw-payload counterpart of [`Self::call`] for framed data-plane
    /// RPCs.
    fn call_raw(&self, rpc_name: &str, payload: Bytes) -> Result<Bytes, MargoError> {
        self.margo.forward_raw(
            &self.address,
            rpc_name,
            self.provider_id,
            payload,
            CallContext::TOP_LEVEL,
            self.timeout,
        )
    }

    /// Overrides the per-RPC timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The provider's address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// The provider id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Stores `value` under `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, value)?;
        let _reply = self.call_raw(rpc::PUT, payload)?;
        Ok(())
    }

    /// Stores many pairs in one RPC.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), MargoError> {
        let keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.to_vec()).collect();
        let value_lens: Vec<u32> = pairs.iter().map(|(_, v)| v.len() as u32).collect();
        let mut body = Vec::with_capacity(value_lens.iter().map(|l| *l as usize).sum());
        for (_, value) in pairs {
            body.extend_from_slice(value);
        }
        let payload = encode_framed(&PutMultiHeader { keys, value_lens }, &body)?;
        let _reply = self.call_raw(rpc::PUT_MULTI, payload)?;
        Ok(())
    }

    /// Fetches the value under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, &[])?;
        let reply = self.call_raw(rpc::GET, payload)?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        match header.lens.first() {
            Some(&len) if len >= 0 => {
                if len as usize > body.len() {
                    return Err(MargoError::Codec("get body truncated".into()));
                }
                Ok(Some(body[..len as usize].to_vec()))
            }
            _ => Ok(None),
        }
    }

    /// Fetches many values in one RPC (entry is `None` for missing keys).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        let header = GetMultiHeader { keys: keys.iter().map(|k| k.to_vec()).collect() };
        let payload = encode_framed(&header, &[])?;
        let reply = self.call_raw(rpc::GET_MULTI, payload)?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        let mut out = Vec::with_capacity(header.lens.len());
        let mut cursor = 0usize;
        for len in header.lens {
            if len < 0 {
                out.push(None);
            } else {
                let len = len as usize;
                if cursor + len > body.len() {
                    return Err(MargoError::Codec("get_multi body truncated".into()));
                }
                out.push(Some(body[cursor..cursor + len].to_vec()));
                cursor += len;
            }
        }
        Ok(out)
    }

    /// Removes `key`; returns whether it existed.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.call(rpc::ERASE, &key.to_vec())
    }

    /// Whether `key` exists.
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.call(rpc::EXISTS, &key.to_vec())
    }

    /// Lists up to `max` keys starting with `prefix`, after `start_after`.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.call(
            rpc::LIST_KEYS,
            &ListKeysArgs {
                prefix: prefix.to_vec(),
                start_after: start_after.map(<[u8]>::to_vec),
                max,
            },
        )
    }

    /// Number of keys.
    pub fn len(&self) -> Result<u64, MargoError> {
        self.call(rpc::LEN, &())
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Persists the database to disk.
    pub fn flush(&self) -> Result<(), MargoError> {
        let _: bool = self.call(rpc::FLUSH, &())?;
        Ok(())
    }

    /// Removes all keys.
    pub fn clear(&self) -> Result<(), MargoError> {
        let _: bool = self.call(rpc::CLEAR, &())?;
        Ok(())
    }
}
