//! Yokan's client library: the resource handle of Figure 1.
//!
//! A [`DatabaseHandle`] "maps to a remote resource by encapsulating the
//! address and provider ID of the provider holding that resource" and
//! offers put/get-style access. [`CoalescingHandle`] layers opt-in
//! client-side write coalescing on top: small `put`s batch into
//! `put_multi` RPCs, amortizing per-RPC overhead on ingest-heavy
//! workloads without changing the observable per-key semantics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use mochi_margo::{decode_framed, encode_framed, CallContext, MargoError, MargoRuntime};
use mochi_mercury::Address;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::provider::{
    GetMultiHeader, HintDropArgs, HintDropEntry, HintEntry, HintListArgs, HintPutArgs, KeyHeader,
    ListKeysArgs, PutMultiHeader, PutVersionedHeader, PutVersionedMultiHeader,
    PutVersionedMultiReply, PutVersionedReply, SliceExportArgs, SliceExportReply, SliceImportArgs,
    SliceImportReply, ValuesHeader, VersionedValuesHeader,
};
use crate::provider::rpc;

/// RPCs the runtime may safely re-send on transport-class failures.
/// Yokan's mutations are last-writer-wins over full values, so re-running
/// a `put` (or `clear`/`flush`) converges to the same state. `erase` is
/// excluded: its reply ("did the key exist") is not stable under retry.
/// The versioned surfaces are idempotent by construction (put-if-newer:
/// a re-send of the same record compares equal and is a no-op), as is
/// `hint_put` (keep-freshest). `hint_drop` follows the `erase` rule.
const IDEMPOTENT_RPCS: &[&str] = &[
    rpc::PUT,
    rpc::PUT_MULTI,
    rpc::GET,
    rpc::GET_MULTI,
    rpc::EXISTS,
    rpc::LIST_KEYS,
    rpc::LEN,
    rpc::FLUSH,
    rpc::CLEAR,
    rpc::PUT_VERSIONED,
    rpc::PUT_VERSIONED_MULTI,
    rpc::GET_VERSIONED_MULTI,
    rpc::HINT_PUT,
    rpc::HINT_LIST,
];

/// One record as returned by [`DatabaseHandle::get_versioned_multi`]:
/// the decoded version stamp, tombstone flag, and raw value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// HLC-style version (0 for legacy unversioned records).
    pub version: u64,
    /// Whether the record is a deletion marker.
    pub tombstone: bool,
    /// Raw value bytes (empty for tombstones).
    pub value: Vec<u8>,
}

/// Handle to a remote Yokan database.
#[derive(Clone)]
pub struct DatabaseHandle {
    margo: MargoRuntime,
    address: Address,
    provider_id: u16,
    timeout: Duration,
    context: CallContext,
}

impl DatabaseHandle {
    /// Creates a handle to the database served by `(address, provider_id)`.
    pub fn new(margo: &MargoRuntime, address: Address, provider_id: u16) -> Self {
        for name in IDEMPOTENT_RPCS {
            margo.declare_idempotent(name);
        }
        let timeout = margo.rpc_timeout();
        Self {
            margo: margo.clone(),
            address,
            provider_id,
            timeout,
            context: CallContext::TOP_LEVEL,
        }
    }

    /// Single chokepoint for typed RPCs: every forward in this client
    /// routes through here (or [`Self::call_raw`]) so retry, breaker, and
    /// deadline handling apply uniformly — `mochi-lint` MOCHI011 enforces
    /// this.
    fn call<I: Serialize, O: DeserializeOwned>(
        &self,
        rpc_name: &str,
        input: &I,
    ) -> Result<O, MargoError> {
        self.margo.forward_full(
            &self.address,
            rpc_name,
            self.provider_id,
            input,
            self.context,
            self.timeout,
        )
    }

    /// Raw-payload counterpart of [`Self::call`] for framed data-plane
    /// RPCs.
    fn call_raw(&self, rpc_name: &str, payload: Bytes) -> Result<Bytes, MargoError> {
        self.margo.forward_raw(
            &self.address,
            rpc_name,
            self.provider_id,
            payload,
            self.context,
            self.timeout,
        )
    }

    /// Overrides the per-RPC timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Threads a calling context (a handler passes
    /// `ctx.nested_context()`) so this handle's RPCs count as nested
    /// calls and inherit the parent's remaining deadline budget instead
    /// of restarting it.
    pub fn with_context(mut self, context: CallContext) -> Self {
        self.context = context;
        self
    }

    /// Wraps this handle in a client-side write coalescer: small `put`s
    /// are buffered and shipped in batched `put_multi` RPCs. See
    /// [`CoalescingHandle`] for the exact ordering contract.
    pub fn coalescing(&self, config: CoalescerConfig) -> CoalescingHandle {
        CoalescingHandle::new(self.clone(), config)
    }

    /// The provider's address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// The provider id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Stores `value` under `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, value)?;
        let _reply = self.call_raw(rpc::PUT, payload)?;
        Ok(())
    }

    /// Stores many pairs in one RPC.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), MargoError> {
        let keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.to_vec()).collect();
        let value_lens: Vec<u32> = pairs.iter().map(|(_, v)| v.len() as u32).collect();
        let mut body = Vec::with_capacity(value_lens.iter().map(|l| *l as usize).sum());
        for (_, value) in pairs {
            body.extend_from_slice(value);
        }
        let payload = encode_framed(&PutMultiHeader { keys, value_lens }, &body)?;
        let _reply = self.call_raw(rpc::PUT_MULTI, payload)?;
        Ok(())
    }

    /// Fetches the value under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, &[])?;
        let reply = self.call_raw(rpc::GET, payload)?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        match header.lens.first() {
            Some(&len) if len >= 0 => {
                if len as usize > body.len() {
                    return Err(MargoError::Codec("get body truncated".into()));
                }
                Ok(Some(body[..len as usize].to_vec()))
            }
            _ => Ok(None),
        }
    }

    /// Fetches many values in one RPC (entry is `None` for missing keys).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        let header = GetMultiHeader { keys: keys.iter().map(|k| k.to_vec()).collect() };
        let payload = encode_framed(&header, &[])?;
        let reply = self.call_raw(rpc::GET_MULTI, payload)?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        let mut out = Vec::with_capacity(header.lens.len());
        let mut cursor = 0usize;
        for len in header.lens {
            if len < 0 {
                out.push(None);
            } else {
                let len = len as usize;
                if cursor + len > body.len() {
                    return Err(MargoError::Codec("get_multi body truncated".into()));
                }
                out.push(Some(body[cursor..cursor + len].to_vec()));
                cursor += len;
            }
        }
        Ok(out)
    }

    /// Removes `key`; returns whether it existed.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.call(rpc::ERASE, &key.to_vec())
    }

    /// Removes many keys in one RPC; returns how many existed. Like
    /// `erase`, not retried by the transport (the count is not stable
    /// under re-execution).
    pub fn erase_multi(&self, keys: &[&[u8]]) -> Result<u64, MargoError> {
        let keys: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
        self.call(rpc::ERASE_MULTI, &keys)
    }

    /// Exports `keys` into a spill file on the provider and pushes it
    /// through REMI to `dest`'s provider-rooted `dest_subdir` (rebalance
    /// drain, source side). Missing keys are skipped.
    pub fn slice_export(
        &self,
        keys: &[&[u8]],
        tag: &str,
        dest: &Address,
        dest_remi_id: u16,
        dest_subdir: &str,
    ) -> Result<SliceExportReply, MargoError> {
        self.call(
            rpc::SLICE_EXPORT,
            &SliceExportArgs {
                keys: keys.iter().map(|k| k.to_vec()).collect(),
                tag: tag.to_string(),
                dest: dest.to_string(),
                dest_remi_id,
                dest_subdir: dest_subdir.to_string(),
            },
        )
    }

    /// Imports the REMI-delivered slice named `tag` (rebalance drain,
    /// destination side). Unversioned keyspaces keep keys the provider
    /// already holds; `versioned` keyspaces run the per-key
    /// freshest-wins compare instead.
    pub fn slice_import(&self, tag: &str, versioned: bool) -> Result<SliceImportReply, MargoError> {
        self.call(rpc::SLICE_IMPORT, &SliceImportArgs { tag: tag.to_string(), versioned })
    }

    /// Put-if-newer of one versioned record. `value = None` writes a
    /// tombstone (a deletion that wins freshest-wins merges).
    pub fn put_versioned(
        &self,
        key: &[u8],
        version: u64,
        value: Option<&[u8]>,
    ) -> Result<PutVersionedReply, MargoError> {
        let header = PutVersionedHeader {
            key: key.to_vec(),
            version,
            tombstone: value.is_none(),
        };
        let payload = encode_framed(&header, value.unwrap_or(&[]))?;
        let reply = self.call_raw(rpc::PUT_VERSIONED, payload)?;
        let (reply, _) = decode_framed::<PutVersionedReply>(&reply)?;
        Ok(reply)
    }

    /// Put-if-newer of many versioned records in one RPC. Each record is
    /// `(key, version, value-or-tombstone)`.
    pub fn put_versioned_multi(
        &self,
        records: &[(&[u8], u64, Option<&[u8]>)],
    ) -> Result<PutVersionedMultiReply, MargoError> {
        let keys: Vec<Vec<u8>> = records.iter().map(|(k, _, _)| k.to_vec()).collect();
        let value_lens: Vec<u32> =
            records.iter().map(|(_, _, v)| v.map_or(0, <[u8]>::len) as u32).collect();
        let versions: Vec<u64> = records.iter().map(|(_, v, _)| *v).collect();
        let tombstones: Vec<bool> = records.iter().map(|(_, _, v)| v.is_none()).collect();
        let mut body = Vec::with_capacity(value_lens.iter().map(|l| *l as usize).sum());
        for (_, _, value) in records {
            body.extend_from_slice(value.unwrap_or(&[]));
        }
        let header = PutVersionedMultiHeader { keys, value_lens, versions, tombstones };
        let payload = encode_framed(&header, &body)?;
        let reply = self.call_raw(rpc::PUT_VERSIONED_MULTI, payload)?;
        let (reply, _) = decode_framed::<PutVersionedMultiReply>(&reply)?;
        Ok(reply)
    }

    /// Fetches many records with their version stamps (entry is `None`
    /// when the provider holds no record at all; a tombstone comes back
    /// as `Some` with the flag set).
    pub fn get_versioned_multi(
        &self,
        keys: &[&[u8]],
    ) -> Result<Vec<Option<VersionedValue>>, MargoError> {
        let header = GetMultiHeader { keys: keys.iter().map(|k| k.to_vec()).collect() };
        let payload = encode_framed(&header, &[])?;
        let reply = self.call_raw(rpc::GET_VERSIONED_MULTI, payload)?;
        let (header, body) = decode_framed::<VersionedValuesHeader>(&reply)?;
        if header.versions.len() != header.lens.len()
            || header.tombstones.len() != header.lens.len()
        {
            return Err(MargoError::Codec("get_versioned_multi header mismatch".into()));
        }
        let mut out = Vec::with_capacity(header.lens.len());
        let mut cursor = 0usize;
        for (i, len) in header.lens.iter().enumerate() {
            if *len < 0 {
                out.push(None);
            } else {
                let len = *len as usize;
                if cursor + len > body.len() {
                    return Err(MargoError::Codec("get_versioned_multi body truncated".into()));
                }
                out.push(Some(VersionedValue {
                    version: header.versions[i],
                    tombstone: header.tombstones[i],
                    value: body[cursor..cursor + len].to_vec(),
                }));
                cursor += len;
            }
        }
        Ok(out)
    }

    /// Parks a hinted-handoff record on this provider for the
    /// unreachable ring member `target`. Returns whether the provider
    /// accepted it (a full hint store rejects).
    pub fn hint_put(
        &self,
        target: &str,
        key: &[u8],
        version: u64,
        value: Option<&[u8]>,
    ) -> Result<bool, MargoError> {
        self.call(
            rpc::HINT_PUT,
            &HintPutArgs {
                target: target.to_string(),
                key: key.to_vec(),
                version,
                tombstone: value.is_none(),
                value: value.unwrap_or(&[]).to_vec(),
            },
        )
    }

    /// Lists up to `max` parked hints (the drainer's work queue).
    pub fn hint_list(&self, max: usize) -> Result<Vec<HintEntry>, MargoError> {
        self.call(rpc::HINT_LIST, &HintListArgs { max })
    }

    /// Drops replayed hints (version-matched). Returns how many fell.
    pub fn hint_drop(&self, entries: &[HintDropEntry]) -> Result<u64, MargoError> {
        self.call(rpc::HINT_DROP, &HintDropArgs { entries: entries.to_vec() })
    }

    /// Whether `key` exists.
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.call(rpc::EXISTS, &key.to_vec())
    }

    /// Lists up to `max` keys starting with `prefix`, after `start_after`.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.call(
            rpc::LIST_KEYS,
            &ListKeysArgs {
                prefix: prefix.to_vec(),
                start_after: start_after.map(<[u8]>::to_vec),
                max,
            },
        )
    }

    /// Number of keys.
    pub fn len(&self) -> Result<u64, MargoError> {
        self.call(rpc::LEN, &())
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Persists the database to disk.
    pub fn flush(&self) -> Result<(), MargoError> {
        let _: bool = self.call(rpc::FLUSH, &())?;
        Ok(())
    }

    /// Removes all keys.
    pub fn clear(&self) -> Result<(), MargoError> {
        let _: bool = self.call(rpc::CLEAR, &())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Client-side write coalescing
// ---------------------------------------------------------------------

/// Tuning knobs of the [`CoalescingHandle`].
#[derive(Debug, Clone, Copy)]
pub struct CoalescerConfig {
    /// Batch is shipped once it holds this many distinct keys.
    pub max_pending: usize,
    /// Batch is shipped once keys + values reach this many bytes.
    pub max_bytes: usize,
    /// Oldest buffered `put` waits at most this long before the
    /// background ticker ships the batch.
    pub max_delay: Duration,
}

impl Default for CoalescerConfig {
    fn default() -> Self {
        Self {
            max_pending: 64,
            max_bytes: 256 << 10,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Pending batch: insertion-ordered pairs plus a key index so a repeated
/// `put` to the same key overwrites in place (last-writer-wins before the
/// batch ever leaves the client — the same semantics the server would
/// apply).
#[derive(Default)]
struct PendingState {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
    index: HashMap<Vec<u8>, usize>,
    bytes: usize,
    opened_at: Option<Instant>,
    /// A batch the ticker (or `Drop`) failed to ship; surfaced by the
    /// next caller so the failure is never silently swallowed.
    last_error: Option<MargoError>,
}

struct CoalescerShared {
    inner: DatabaseHandle,
    config: CoalescerConfig,
    state: Mutex<PendingState>,
    stop: AtomicBool,
}

impl CoalescerShared {
    /// Ships the pending batch as one `put_multi`. Caller holds `state`.
    fn ship_locked(&self, state: &mut PendingState) -> Result<(), MargoError> {
        if state.pairs.is_empty() {
            return Ok(());
        }
        let refs: Vec<(&[u8], &[u8])> =
            state.pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        let result = self.inner.put_multi(&refs);
        // Drop the batch either way: a transport-class failure was
        // already retried by the runtime (PUT_MULTI is idempotent), so
        // re-queueing here would turn one broken server into unbounded
        // client memory growth.
        state.pairs.clear();
        state.index.clear();
        state.bytes = 0;
        state.opened_at = None;
        result
    }
}

/// A write-coalescing wrapper around [`DatabaseHandle`].
///
/// `put` buffers locally and ships batches as `put_multi` when any of the
/// [`CoalescerConfig`] thresholds trips (count, bytes, or age — the last
/// via a background ticker thread). Ordering contract:
///
/// * **Within a key**: strictly preserved. A buffered `put` is
///   overwritten in place, and every non-`put` operation (`get`,
///   `erase`, `list_keys`, …) is a barrier that ships the pending batch
///   first, *while holding the batch lock*, so it observes all prior
///   `put`s and no later ones.
/// * **Across keys**: batched `put`s reach the server in first-`put`
///   order within the batch; independent keys may land in a different
///   stripe order server-side, which is indistinguishable to callers.
/// * **Retry interaction**: the coalescer only ever ships `PUT_MULTI`
///   (declared idempotent — last-writer-wins over full values), so the
///   runtime's transport retries cannot double-apply effects. `erase`,
///   the one non-idempotent surface, is *never* coalesced or retried: it
///   runs exactly once, after the barrier flush.
/// * **Failures**: a batch shipped by a caller (threshold or barrier)
///   reports the error to that caller. A batch shipped by the ticker or
///   by `Drop` parks the error; the next operation returns it.
///
/// Dropping the handle flushes the remaining batch (best effort) and
/// stops the ticker.
pub struct CoalescingHandle {
    shared: Arc<CoalescerShared>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl CoalescingHandle {
    fn new(inner: DatabaseHandle, config: CoalescerConfig) -> Self {
        let shared = Arc::new(CoalescerShared {
            inner,
            config,
            state: Mutex::new(PendingState::default()),
            stop: AtomicBool::new(false),
        });
        let ticker_shared = Arc::clone(&shared);
        // A plain thread, not a ULT: it sleeps for most of its life, and
        // parking an execution stream on a client-side timer would starve
        // real handlers. The tick is capped so `Drop` (which joins the
        // ticker) returns promptly even under a very large `max_delay`.
        let tick = (config.max_delay / 4)
            .clamp(Duration::from_millis(1), Duration::from_millis(100));
        let ticker = std::thread::Builder::new()
            .name("yokan-coalescer".into())
            .spawn(move || {
                while !ticker_shared.stop.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    let mut state = ticker_shared.state.lock();
                    let expired = state
                        .opened_at
                        .is_some_and(|t| t.elapsed() >= ticker_shared.config.max_delay);
                    if expired {
                        if let Err(e) = ticker_shared.ship_locked(&mut state) {
                            state.last_error = Some(e);
                        }
                    }
                }
            })
            // If the OS refuses a thread, the coalescer still works —
            // count/byte thresholds, barriers, and Drop all ship batches;
            // only the `max_delay` backstop is lost.
            .ok();
        Self { shared, ticker }
    }

    /// The wrapped handle (batches bypass-free access if needed).
    pub fn handle(&self) -> &DatabaseHandle {
        &self.shared.inner
    }

    /// Takes a parked ticker/Drop error, if any. Callers get this
    /// surfaced automatically on their next operation.
    fn take_parked(&self, state: &mut PendingState) -> Result<(), MargoError> {
        match state.last_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Buffers `value` under `key`; ships the batch if a threshold trips.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let mut state = self.shared.state.lock();
        self.take_parked(&mut state)?;
        match state.index.get(key) {
            Some(&i) => {
                state.bytes = state.bytes - state.pairs[i].1.len() + value.len();
                state.pairs[i].1 = value.to_vec();
            }
            None => {
                state.index.insert(key.to_vec(), state.pairs.len());
                state.bytes += key.len() + value.len();
                state.pairs.push((key.to_vec(), value.to_vec()));
                if state.opened_at.is_none() {
                    state.opened_at = Some(Instant::now());
                }
            }
        }
        if state.pairs.len() >= self.shared.config.max_pending
            || state.bytes >= self.shared.config.max_bytes
        {
            self.shared.ship_locked(&mut state)?;
        }
        Ok(())
    }

    /// Buffers many pairs at once (one lock acquisition).
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), MargoError> {
        for (key, value) in pairs {
            self.put(key, value)?;
        }
        Ok(())
    }

    /// Ships any buffered `put`s now.
    pub fn sync(&self) -> Result<(), MargoError> {
        let mut state = self.shared.state.lock();
        self.take_parked(&mut state)?;
        self.shared.ship_locked(&mut state)
    }

    /// Barrier + delegate: ships pending `put`s, then runs `op` while
    /// still holding the batch lock so no concurrent `put` can reorder
    /// around the delegated operation.
    fn barrier<T>(
        &self,
        op: impl FnOnce(&DatabaseHandle) -> Result<T, MargoError>,
    ) -> Result<T, MargoError> {
        let mut state = self.shared.state.lock();
        self.take_parked(&mut state)?;
        self.shared.ship_locked(&mut state)?;
        op(&self.shared.inner)
    }

    /// Fetches `key`, observing every `put` issued before this call.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        self.barrier(|h| h.get(key))
    }

    /// Fetches many values, observing every prior `put`.
    pub fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        self.barrier(|h| h.get_multi(keys))
    }

    /// Removes `key`. Non-idempotent: runs exactly once, after the
    /// barrier flush, and is never buffered or retried.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.barrier(|h| h.erase(key))
    }

    /// Whether `key` exists, observing every prior `put`.
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.barrier(|h| h.exists(key))
    }

    /// Lists keys, observing every prior `put`.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.barrier(|h| h.list_keys(prefix, start_after, max))
    }

    /// Number of keys, observing every prior `put`.
    pub fn len(&self) -> Result<u64, MargoError> {
        self.barrier(|h| h.len())
    }

    /// Whether the database is empty, observing every prior `put`.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Ships pending `put`s, then persists the database server-side.
    pub fn flush(&self) -> Result<(), MargoError> {
        self.barrier(|h| h.flush())
    }

    /// Ships pending `put`s, then removes all keys.
    pub fn clear(&self) -> Result<(), MargoError> {
        self.barrier(|h| h.clear())
    }
}

impl Drop for CoalescingHandle {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let mut state = self.shared.state.lock();
            if let Err(e) = self.shared.ship_locked(&mut state) {
                // Nowhere left to surface it; parking keeps the contract
                // ("never silently swallowed") for clones of `shared`.
                state.last_error = Some(e);
            }
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
    }
}
