//! Yokan's client library: the resource handle of Figure 1.
//!
//! A [`DatabaseHandle`] "maps to a remote resource by encapsulating the
//! address and provider ID of the provider holding that resource" and
//! offers put/get-style access.

use std::time::Duration;

use mochi_margo::{decode_framed, encode_framed, CallContext, MargoError, MargoRuntime};
use mochi_mercury::Address;

use crate::provider::{GetMultiHeader, KeyHeader, ListKeysArgs, PutMultiHeader, ValuesHeader};
use crate::provider::rpc;

/// Handle to a remote Yokan database.
#[derive(Clone)]
pub struct DatabaseHandle {
    margo: MargoRuntime,
    address: Address,
    provider_id: u16,
    timeout: Duration,
}

impl DatabaseHandle {
    /// Creates a handle to the database served by `(address, provider_id)`.
    pub fn new(margo: &MargoRuntime, address: Address, provider_id: u16) -> Self {
        let timeout = margo.rpc_timeout();
        Self { margo: margo.clone(), address, provider_id, timeout }
    }

    /// Overrides the per-RPC timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The provider's address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// The provider id.
    pub fn provider_id(&self) -> u16 {
        self.provider_id
    }

    /// Stores `value` under `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, value)?;
        let _reply = self.margo.forward_raw(
            &self.address,
            rpc::PUT,
            self.provider_id,
            payload,
            CallContext::TOP_LEVEL,
            self.timeout,
        )?;
        Ok(())
    }

    /// Stores many pairs in one RPC.
    pub fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), MargoError> {
        let keys: Vec<Vec<u8>> = pairs.iter().map(|(k, _)| k.to_vec()).collect();
        let value_lens: Vec<u32> = pairs.iter().map(|(_, v)| v.len() as u32).collect();
        let mut body = Vec::with_capacity(value_lens.iter().map(|l| *l as usize).sum());
        for (_, value) in pairs {
            body.extend_from_slice(value);
        }
        let payload = encode_framed(&PutMultiHeader { keys, value_lens }, &body)?;
        let _reply = self.margo.forward_raw(
            &self.address,
            rpc::PUT_MULTI,
            self.provider_id,
            payload,
            CallContext::TOP_LEVEL,
            self.timeout,
        )?;
        Ok(())
    }

    /// Fetches the value under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, MargoError> {
        let payload = encode_framed(&KeyHeader { key: key.to_vec() }, &[])?;
        let reply = self.margo.forward_raw(
            &self.address,
            rpc::GET,
            self.provider_id,
            payload,
            CallContext::TOP_LEVEL,
            self.timeout,
        )?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        match header.lens.first() {
            Some(&len) if len >= 0 => {
                if len as usize > body.len() {
                    return Err(MargoError::Codec("get body truncated".into()));
                }
                Ok(Some(body[..len as usize].to_vec()))
            }
            _ => Ok(None),
        }
    }

    /// Fetches many values in one RPC (entry is `None` for missing keys).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, MargoError> {
        let header = GetMultiHeader { keys: keys.iter().map(|k| k.to_vec()).collect() };
        let payload = encode_framed(&header, &[])?;
        let reply = self.margo.forward_raw(
            &self.address,
            rpc::GET_MULTI,
            self.provider_id,
            payload,
            CallContext::TOP_LEVEL,
            self.timeout,
        )?;
        let (header, body) = decode_framed::<ValuesHeader>(&reply)?;
        let mut out = Vec::with_capacity(header.lens.len());
        let mut cursor = 0usize;
        for len in header.lens {
            if len < 0 {
                out.push(None);
            } else {
                let len = len as usize;
                if cursor + len > body.len() {
                    return Err(MargoError::Codec("get_multi body truncated".into()));
                }
                out.push(Some(body[cursor..cursor + len].to_vec()));
                cursor += len;
            }
        }
        Ok(out)
    }

    /// Removes `key`; returns whether it existed.
    pub fn erase(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.margo.forward_timeout(
            &self.address,
            rpc::ERASE,
            self.provider_id,
            &key.to_vec(),
            self.timeout,
        )
    }

    /// Whether `key` exists.
    pub fn exists(&self, key: &[u8]) -> Result<bool, MargoError> {
        self.margo.forward_timeout(
            &self.address,
            rpc::EXISTS,
            self.provider_id,
            &key.to_vec(),
            self.timeout,
        )
    }

    /// Lists up to `max` keys starting with `prefix`, after `start_after`.
    pub fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, MargoError> {
        self.margo.forward_timeout(
            &self.address,
            rpc::LIST_KEYS,
            self.provider_id,
            &ListKeysArgs {
                prefix: prefix.to_vec(),
                start_after: start_after.map(<[u8]>::to_vec),
                max,
            },
            self.timeout,
        )
    }

    /// Number of keys.
    pub fn len(&self) -> Result<u64, MargoError> {
        self.margo.forward_timeout(&self.address, rpc::LEN, self.provider_id, &(), self.timeout)
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> Result<bool, MargoError> {
        Ok(self.len()? == 0)
    }

    /// Persists the database to disk.
    pub fn flush(&self) -> Result<(), MargoError> {
        let _: bool = self.margo.forward_timeout(
            &self.address,
            rpc::FLUSH,
            self.provider_id,
            &(),
            self.timeout,
        )?;
        Ok(())
    }

    /// Removes all keys.
    pub fn clear(&self) -> Result<(), MargoError> {
        let _: bool = self.margo.forward_timeout(
            &self.address,
            rpc::CLEAR,
            self.provider_id,
            &(),
            self.timeout,
        )?;
        Ok(())
    }
}
