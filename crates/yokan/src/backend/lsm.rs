//! The `"lsm"` backend: a from-scratch log-structured merge tree.
//!
//! Layout inside the provider's data directory:
//!
//! * `wal.log` — write-ahead log of operations since the last flush,
//!   each record CRC-protected; replayed on open, truncated on flush;
//! * `sst-<seq>.tbl` — immutable sorted tables, newest sequence wins;
//!   tombstones mark deletions until compaction drops them.
//!
//! The memtable flushes once it exceeds `memtable_bytes`; when more than
//! `max_tables` tables accumulate, a full compaction merges them into
//! one. This gives Yokan real on-disk state — the thing REMI migrates,
//! checkpoints copy, and crash-restart tests recover.
//!
//! # Concurrency
//!
//! Reads never take the writer lock. State is split across three locks,
//! always acquired in this order (ranks `LSM_WRITER < LSM_ACTIVE <
//! LSM_SNAPSHOT`):
//!
//! * `writer` — serializes mutations: WAL appends, flushes, compaction;
//! * `active` — the mutable memtable, briefly write-locked per put and
//!   read-locked by readers;
//! * `snapshot` — an `Arc<Snapshot>` slot holding sealed memtables and
//!   the immutable table list; held only to clone or swap the `Arc`.
//!
//! Readers check `active` first, then clone the snapshot `Arc` and run
//! lock-free against it. Sealing publishes the sealed memtable into the
//! snapshot *before* the emptied active map becomes visible (both happen
//! under the `active` write lock), so a key a reader no longer finds in
//! `active` is guaranteed to be in whichever snapshot it clones next.
//! Compaction builds the merged table off to the side and swaps it in
//! with one publication; in-flight readers keep their old `Arc`, whose
//! open file descriptors remain readable after the unlink.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::ops::Bound;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mochi_util::crc32;
use mochi_util::ordered_lock::{rank, OrderedMutex, OrderedRwLock};

use super::{Database, YokanError};

/// Tuning knobs of the LSM backend.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Flush the memtable to an SSTable beyond this many bytes.
    pub memtable_bytes: usize,
    /// Compact when the number of SSTables exceeds this.
    pub max_tables: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self { memtable_bytes: 4 << 20, max_tables: 4 }
    }
}

const OP_PUT: u8 = 1;
const OP_ERASE: u8 = 2;
/// Value length marking a tombstone in an SSTable.
const TOMBSTONE: u32 = u32::MAX;

/// `None` value = tombstone.
type Memtable = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

#[derive(Debug, Clone, Copy)]
struct ValueLoc {
    offset: u64,
    len: u32, // TOMBSTONE for deletions
}

struct SsTable {
    path: PathBuf,
    seq: u64,
    file: File,
    index: BTreeMap<Vec<u8>, ValueLoc>,
}

impl SsTable {
    /// Writes `entries` (sorted; `None` value = tombstone) as table `seq`.
    fn write(dir: &Path, seq: u64, entries: &Memtable) -> Result<SsTable, YokanError> {
        let path = dir.join(format!("sst-{seq:010}.tbl"));
        let mut buffer = Vec::new();
        let mut index = BTreeMap::new();
        for (key, value) in entries {
            buffer.extend_from_slice(&(key.len() as u32).to_le_bytes());
            match value {
                Some(v) => buffer.extend_from_slice(&(v.len() as u32).to_le_bytes()),
                None => buffer.extend_from_slice(&TOMBSTONE.to_le_bytes()),
            }
            buffer.extend_from_slice(key);
            let offset = buffer.len() as u64;
            if let Some(v) = value {
                buffer.extend_from_slice(v);
                index.insert(key.clone(), ValueLoc { offset, len: v.len() as u32 });
            } else {
                index.insert(key.clone(), ValueLoc { offset, len: TOMBSTONE });
            }
        }
        let crc = crc32(&buffer);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("create {}: {e}", path.display())))?;
        file.write_all(&buffer)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data().ok();
        Ok(SsTable { path, seq, file, index })
    }

    /// Opens and validates an existing table.
    fn open(path: PathBuf) -> Result<SsTable, YokanError> {
        let seq: u64 = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("sst-"))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| YokanError::Corrupt(format!("bad table name {}", path.display())))?;
        let mut file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("open {}: {e}", path.display())))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        if data.len() < 4 {
            return Err(YokanError::Corrupt(format!("{} too short", path.display())));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(YokanError::Corrupt(format!("{} checksum mismatch", path.display())));
        }
        let mut index = BTreeMap::new();
        let mut pos = 0usize;
        while pos < body.len() {
            if pos + 8 > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated record", path.display())));
            }
            let klen = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            let vlen_raw = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            if pos + klen > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated key", path.display())));
            }
            let key = body[pos..pos + klen].to_vec();
            pos += klen;
            let offset = pos as u64;
            if vlen_raw != TOMBSTONE {
                let vlen = vlen_raw as usize;
                if pos + vlen > body.len() {
                    return Err(YokanError::Corrupt(format!(
                        "{} truncated value",
                        path.display()
                    )));
                }
                pos += vlen;
            }
            index.insert(key, ValueLoc { offset, len: vlen_raw });
        }
        Ok(SsTable { path, seq, file, index })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        match self.index.get(key) {
            None => Ok(None),
            Some(loc) if loc.len == TOMBSTONE => Ok(Some(None)),
            Some(loc) => {
                let mut value = vec![0u8; loc.len as usize];
                self.file
                    .read_exact_at(&mut value, loc.offset)
                    .map_err(|e| YokanError::Io(format!("read {}: {e}", self.path.display())))?;
                Ok(Some(Some(value)))
            }
        }
    }
}

/// An immutable, atomically swapped view of everything below the active
/// memtable. Readers clone the `Arc` and then run entirely lock-free;
/// whatever a snapshot references (sealed memtables, open table files)
/// stays alive as long as any reader holds the clone, even across a
/// concurrent compaction that unlinks the table files.
struct Snapshot {
    /// Publication counter; bumps on every seal, table swap, compaction
    /// and clear.
    generation: u64,
    /// Sealed memtables not yet persisted as tables, oldest → newest.
    sealed: Vec<Arc<Memtable>>,
    /// On-disk tables, oldest → newest.
    tables: Vec<Arc<SsTable>>,
}

impl Snapshot {
    /// Looks `key` up below the active memtable; `Some(None)` = deleted.
    fn lookup(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        for memtable in self.sealed.iter().rev() {
            if let Some(entry) = memtable.get(key) {
                return Ok(Some(entry.clone()));
            }
        }
        for table in self.tables.iter().rev() {
            if let Some(found) = table.get(key)? {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }
}

/// Mutator-side state, serialized by the `writer` lock.
struct Writer {
    wal: File,
    wal_path: PathBuf,
    /// Approximate bytes in the active memtable (flush trigger).
    active_bytes: usize,
    next_seq: u64,
}

/// The LSM database.
pub struct LsmDatabase {
    dir: PathBuf,
    config: LsmConfig,
    writer: OrderedMutex<Writer>,
    active: OrderedRwLock<Memtable>,
    snapshot: OrderedRwLock<Arc<Snapshot>>,
}

impl std::fmt::Debug for LsmDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmDatabase")
            .field("dir", &self.dir)
            .field("tables", &self.table_count())
            .finish_non_exhaustive()
    }
}

fn wal_record(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(13 + key.len() + value.len());
    record.push(op);
    record.extend_from_slice(&(key.len() as u32).to_le_bytes());
    record.extend_from_slice(&(value.len() as u32).to_le_bytes());
    record.extend_from_slice(key);
    record.extend_from_slice(value);
    let crc = crc32(&record);
    record.extend_from_slice(&crc.to_le_bytes());
    record
}

/// Replays a WAL buffer, stopping cleanly at the first partial or corrupt
/// record (a crash mid-append).
fn replay_wal(data: &[u8], memtable: &mut Memtable) -> usize {
    let mut pos = 0usize;
    let mut bytes = 0usize;
    while pos + 13 <= data.len() {
        let op = data[pos];
        let klen = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[pos + 5..pos + 9].try_into().unwrap()) as usize;
        let total = 9 + klen + vlen + 4;
        if pos + total > data.len() {
            break;
        }
        let record = &data[pos..pos + total];
        let (body, crc_bytes) = record.split_at(total - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            break;
        }
        let key = record[9..9 + klen].to_vec();
        let value = record[9 + klen..9 + klen + vlen].to_vec();
        match op {
            OP_PUT => {
                bytes += klen + vlen;
                memtable.insert(key, Some(value));
            }
            OP_ERASE => {
                bytes += klen;
                memtable.insert(key, None);
            }
            _ => break,
        }
        pos += total;
    }
    bytes
}

impl LsmDatabase {
    /// Opens (or creates) a database in `dir`, replaying any WAL and
    /// loading existing tables.
    pub fn open(dir: impl Into<PathBuf>, config: LsmConfig) -> Result<Self, YokanError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut table_paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "tbl")
                    && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("sst-"))
            })
            .collect();
        table_paths.sort();
        let mut tables = Vec::with_capacity(table_paths.len());
        for path in table_paths {
            tables.push(Arc::new(SsTable::open(path)?));
        }
        let next_seq = tables.last().map(|t| t.seq + 1).unwrap_or(0);

        let wal_path = dir.join("wal.log");
        let mut memtable = Memtable::new();
        let mut active_bytes = 0;
        if wal_path.exists() {
            let data = std::fs::read(&wal_path)?;
            active_bytes = replay_wal(&data, &mut memtable);
        }
        let wal = OpenOptions::new().create(true).append(true).open(&wal_path)?;
        Ok(Self {
            dir,
            config,
            writer: OrderedMutex::new(
                rank::LSM_WRITER,
                "lsm.writer",
                Writer { wal, wal_path, active_bytes, next_seq },
            ),
            active: OrderedRwLock::new(rank::LSM_ACTIVE, "lsm.active", memtable),
            snapshot: OrderedRwLock::new(
                rank::LSM_SNAPSHOT,
                "lsm.snapshot",
                Arc::new(Snapshot { generation: 0, sealed: Vec::new(), tables }),
            ),
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of SSTables on disk (diagnostics / compaction tests).
    pub fn table_count(&self) -> usize {
        self.snapshot_arc().tables.len()
    }

    /// Current snapshot generation (diagnostics / tests).
    pub fn snapshot_generation(&self) -> u64 {
        self.snapshot_arc().generation
    }

    /// Clones the current snapshot `Arc` (the lock is held only for the
    /// clone itself).
    fn snapshot_arc(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// Atomically replaces the published snapshot.
    fn publish(&self, next: impl FnOnce(&Snapshot) -> Snapshot) {
        let mut slot = self.snapshot.write();
        *slot = Arc::new(next(&slot));
    }

    fn append_wal(writer: &mut Writer, op: u8, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let record = wal_record(op, key, value);
        writer.wal.write_all(&record)?;
        Ok(())
    }

    /// Current live value of `key`, never touching the writer lock.
    ///
    /// Read order matters: active memtable first, then the snapshot.
    /// Sealing publishes the sealed memtable into the snapshot before the
    /// emptied active map becomes visible, so a key missing from `active`
    /// is always present in (or genuinely absent from) the snapshot read
    /// afterwards.
    fn lookup_live(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        if let Some(entry) = self.active.read().get(key) {
            return Ok(entry.clone());
        }
        let snap = self.snapshot_arc();
        Ok(snap.lookup(key)?.flatten())
    }

    fn flush_locked(&self, writer: &mut Writer) -> Result<(), YokanError> {
        {
            let active = self.active.read();
            if active.is_empty() && self.snapshot_arc().sealed.is_empty() {
                writer.active_bytes = 0;
                return Ok(());
            }
        }
        // Seal the active memtable into the snapshot. The publication
        // happens under the active write lock: readers check `active`
        // first, so anything they no longer find there must already be
        // visible in the snapshot.
        {
            let mut active = self.active.write();
            if !active.is_empty() {
                let sealed = Arc::new(std::mem::take(&mut *active));
                self.publish(|old| Snapshot {
                    generation: old.generation + 1,
                    sealed: old.sealed.iter().cloned().chain([sealed]).collect(),
                    tables: old.tables.clone(),
                });
            }
        }
        writer.active_bytes = 0;
        // Persist every sealed memtable, oldest first. Normally there is
        // exactly one; an earlier failed flush can leave more behind.
        loop {
            let snap = self.snapshot_arc();
            let Some(sealed) = snap.sealed.first().map(Arc::clone) else { break };
            let seq = writer.next_seq;
            writer.next_seq += 1;
            let table = Arc::new(SsTable::write(&self.dir, seq, &sealed)?);
            // Swap the sealed memtable for its durable table in one
            // publication; readers see one or the other, never neither.
            self.publish(|old| Snapshot {
                generation: old.generation + 1,
                sealed: old
                    .sealed
                    .iter()
                    .filter(|m| !Arc::ptr_eq(m, &sealed))
                    .cloned()
                    .collect(),
                tables: old.tables.iter().cloned().chain([Arc::clone(&table)]).collect(),
            });
        }
        // Everything the WAL covered is now durable in tables.
        writer.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&writer.wal_path)?;
        if self.snapshot_arc().tables.len() > self.config.max_tables {
            self.compact_locked(writer)?;
        }
        Ok(())
    }

    fn compact_locked(&self, writer: &mut Writer) -> Result<(), YokanError> {
        // Merge all tables oldest→newest; newest value wins; drop
        // tombstones (nothing older remains to resurrect). Sealed and
        // active memtables sit above the tables and are unaffected.
        let snap = self.snapshot_arc();
        let mut merged: Memtable = BTreeMap::new();
        for table in &snap.tables {
            for key in table.index.keys() {
                let value = table.get(key)?.expect("key from index");
                merged.insert(key.clone(), value);
            }
        }
        merged.retain(|_, v| v.is_some());
        let seq = writer.next_seq;
        writer.next_seq += 1;
        let new_table = Arc::new(SsTable::write(&self.dir, seq, &merged)?);
        let old_paths: Vec<PathBuf> = snap.tables.iter().map(|t| t.path.clone()).collect();
        self.publish(|old| Snapshot {
            generation: old.generation + 1,
            sealed: old.sealed.clone(),
            tables: vec![Arc::clone(&new_table)],
        });
        // In-flight readers may still hold the old tables' `Arc`s; their
        // open descriptors keep the unlinked files readable.
        for path in old_paths {
            std::fs::remove_file(&path).ok();
        }
        Ok(())
    }

    /// Merged aliveness of keys with `prefix`, newer sources overriding
    /// older ones. `active` must be the caller-held guard's contents so
    /// the cut is consistent.
    fn merged_keys(snap: &Snapshot, active: &Memtable, prefix: &[u8]) -> BTreeMap<Vec<u8>, bool> {
        let mut alive: BTreeMap<Vec<u8>, bool> = BTreeMap::new();
        let range = (Bound::Included(prefix.to_vec()), Bound::Unbounded);
        for table in &snap.tables {
            for (key, loc) in table.index.range::<Vec<u8>, _>(range.clone()) {
                if !key.starts_with(prefix) {
                    break;
                }
                alive.insert(key.clone(), loc.len != TOMBSTONE);
            }
        }
        for memtable in &snap.sealed {
            for (key, value) in memtable.range::<Vec<u8>, _>(range.clone()) {
                if !key.starts_with(prefix) {
                    break;
                }
                alive.insert(key.clone(), value.is_some());
            }
        }
        for (key, value) in active.range::<Vec<u8>, _>(range) {
            if !key.starts_with(prefix) {
                break;
            }
            alive.insert(key.clone(), value.is_some());
        }
        alive
    }
}

impl Database for LsmDatabase {
    fn backend_name(&self) -> &'static str {
        "lsm"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let mut writer = self.writer.lock();
        Self::append_wal(&mut writer, OP_PUT, key, value)?;
        {
            let mut active = self.active.write();
            active.insert(key.to_vec(), Some(value.to_vec()));
        }
        writer.active_bytes += key.len() + value.len();
        if writer.active_bytes >= self.config.memtable_bytes {
            self.flush_locked(&mut writer)?;
        }
        Ok(())
    }

    fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), YokanError> {
        if pairs.is_empty() {
            return Ok(());
        }
        let mut writer = self.writer.lock();
        // One WAL write and one active-lock acquisition for the batch.
        let mut batch = Vec::new();
        for (key, value) in pairs {
            batch.extend_from_slice(&wal_record(OP_PUT, key, value));
        }
        writer.wal.write_all(&batch)?;
        {
            let mut active = self.active.write();
            for (key, value) in pairs {
                active.insert(key.to_vec(), Some(value.to_vec()));
            }
        }
        writer.active_bytes += pairs.iter().map(|(k, v)| k.len() + v.len()).sum::<usize>();
        if writer.active_bytes >= self.config.memtable_bytes {
            self.flush_locked(&mut writer)?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.lookup_live(key)
    }

    fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        // One active-read pass and one snapshot clone for the batch.
        let mut values: Vec<Option<Vec<u8>>> = Vec::with_capacity(keys.len());
        let mut misses: Vec<usize> = Vec::new();
        {
            let active = self.active.read();
            for (i, key) in keys.iter().enumerate() {
                match active.get(*key) {
                    Some(entry) => values.push(entry.clone()),
                    None => {
                        values.push(None);
                        misses.push(i);
                    }
                }
            }
        }
        if misses.is_empty() {
            return Ok(values);
        }
        let snap = self.snapshot_arc();
        for i in misses {
            values[i] = snap.lookup(keys[i])?.flatten();
        }
        Ok(values)
    }

    fn erase(&self, key: &[u8]) -> Result<bool, YokanError> {
        let mut writer = self.writer.lock();
        // Holding the writer lock freezes seals, so this two-step lookup
        // is stable.
        let existed = self.lookup_live(key)?.is_some();
        if existed {
            Self::append_wal(&mut writer, OP_ERASE, key, &[])?;
            self.active.write().insert(key.to_vec(), None);
            writer.active_bytes += key.len();
        }
        Ok(existed)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        // K-way merge over every table index, sealed memtable and the
        // active memtable, newest source winning on ties, stopping after
        // `max` live keys — O(max) per page instead of O(range). The
        // active guard is held across the merge so the cut is consistent;
        // everything else comes from the immutable snapshot.
        let active = self.active.read();
        let snap = self.snapshot_arc();
        let lower: Bound<Vec<u8>> = match start_after {
            Some(s) if s >= prefix => Bound::Excluded(s.to_vec()),
            _ => Bound::Included(prefix.to_vec()),
        };
        // Sources ordered oldest → newest; the active memtable is last.
        type KeyCursor<'a> = Box<dyn Iterator<Item = (&'a Vec<u8>, bool)> + 'a>;
        let mut cursors: Vec<KeyCursor<'_>> = Vec::new();
        for table in &snap.tables {
            cursors.push(Box::new(
                table
                    .index
                    .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                    .map(|(k, loc)| (k, loc.len != TOMBSTONE)),
            ));
        }
        for memtable in &snap.sealed {
            cursors.push(Box::new(
                memtable
                    .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                    .map(|(k, v)| (k, v.is_some())),
            ));
        }
        cursors.push(Box::new(
            active
                .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                .map(|(k, v)| (k, v.is_some())),
        ));
        let mut heads: Vec<Option<(&Vec<u8>, bool)>> =
            cursors.iter_mut().map(|c| c.next()).collect();
        let mut out: Vec<Vec<u8>> = Vec::new();
        while out.len() < max {
            // Smallest key among heads; among ties, the newest source
            // (highest index) is authoritative.
            let mut smallest: Option<&Vec<u8>> = None;
            for head in heads.iter().flatten() {
                if smallest.is_none_or(|s| head.0 < s) {
                    smallest = Some(head.0);
                }
            }
            let Some(key) = smallest else { break };
            if !key.starts_with(prefix) {
                // All further keys in every cursor are >= key; any source
                // still inside the prefix would have produced a smaller
                // head, so once the global minimum leaves the prefix we
                // are done.
                break;
            }
            let key = key.clone();
            let mut alive = false;
            for i in 0..heads.len() {
                if heads[i].is_some_and(|(k, _)| *k == key) {
                    alive = heads[i].expect("checked").1; // later sources overwrite
                    heads[i] = cursors[i].next();
                }
            }
            if alive {
                out.push(key);
            }
        }
        Ok(out)
    }

    fn len(&self) -> Result<u64, YokanError> {
        let active = self.active.read();
        let snap = self.snapshot_arc();
        let alive = Self::merged_keys(&snap, &active, b"");
        Ok(alive.values().filter(|a| **a).count() as u64)
    }

    fn flush(&self) -> Result<(), YokanError> {
        let mut writer = self.writer.lock();
        self.flush_locked(&mut writer)
    }

    fn clear(&self) -> Result<(), YokanError> {
        let mut writer = self.writer.lock();
        let old_paths: Vec<PathBuf> =
            self.snapshot_arc().tables.iter().map(|t| t.path.clone()).collect();
        {
            let mut active = self.active.write();
            active.clear();
            self.publish(|old| Snapshot {
                generation: old.generation + 1,
                sealed: Vec::new(),
                tables: Vec::new(),
            });
        }
        writer.active_bytes = 0;
        writer.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&writer.wal_path)?;
        for path in old_paths {
            std::fs::remove_file(&path).ok();
        }
        Ok(())
    }

    fn dump(&self) -> Result<super::KvPairs, YokanError> {
        let active = self.active.read();
        let snap = self.snapshot_arc();
        let alive = Self::merged_keys(&snap, &active, b"");
        let mut out = Vec::new();
        for (key, is_alive) in alive {
            if is_alive {
                let value = match active.get(&key) {
                    Some(entry) => entry.clone(),
                    None => snap.lookup(&key)?.flatten(),
                };
                let value = value
                    .ok_or_else(|| YokanError::Corrupt("key vanished during dump".into()))?;
                out.push((key, value));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use mochi_util::TempDir;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn tiny_config() -> LsmConfig {
        // Small thresholds so tests exercise flush + compaction.
        LsmConfig { memtable_bytes: 256, max_tables: 3 }
    }

    fn open(dir: &TempDir) -> LsmDatabase {
        LsmDatabase::open(dir.path(), tiny_config()).unwrap()
    }

    #[test]
    fn conformance_suite() {
        for case in 0..6 {
            let dir = TempDir::new("lsm-conf").unwrap();
            let db = open(&dir);
            match case {
                0 => conformance::basic_ops(&db),
                1 => conformance::listing(&db),
                2 => {
                    let dir2 = TempDir::new("lsm-conf2").unwrap();
                    conformance::dump_and_load(&db, &open(&dir2));
                }
                3 => conformance::clear(&db),
                4 => conformance::multi_ops(&db),
                _ => conformance::empty_and_binary_keys(&db),
            }
        }
    }

    #[test]
    fn survives_reopen_with_wal_only() {
        let dir = TempDir::new("lsm-wal").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            db.put(b"persist", b"me").unwrap();
            db.erase(b"persist2").ok();
            // No flush: data only in WAL + memtable.
            assert_eq!(db.table_count(), 0);
        }
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.get(b"persist").unwrap().as_deref(), Some(b"me".as_slice()));
    }

    #[test]
    fn survives_reopen_with_tables_and_wal() {
        let dir = TempDir::new("lsm-mixed").unwrap();
        {
            let db = open(&dir);
            for i in 0..100u32 {
                db.put(format!("key-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
            }
            db.erase(b"key-0007").unwrap();
            assert!(db.table_count() >= 1, "expected flushes with tiny memtable");
        }
        let db = open(&dir);
        assert_eq!(db.len().unwrap(), 99);
        assert_eq!(db.get(b"key-0007").unwrap(), None);
        assert_eq!(db.get(b"key-0042").unwrap().as_deref(), Some(vec![b'x'; 64].as_slice()));
    }

    #[test]
    fn batched_puts_survive_reopen() {
        let dir = TempDir::new("lsm-batch").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            let pairs: Vec<(Vec<u8>, Vec<u8>)> =
                (0..10u32).map(|i| (format!("b{i}").into_bytes(), vec![i as u8])).collect();
            let borrowed: Vec<(&[u8], &[u8])> =
                pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            db.put_multi(&borrowed).unwrap();
        }
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.len().unwrap(), 10);
        assert_eq!(db.get(b"b7").unwrap().as_deref(), Some([7u8].as_slice()));
    }

    #[test]
    fn compaction_bounds_table_count_and_preserves_data() {
        let dir = TempDir::new("lsm-compact").unwrap();
        let db = open(&dir);
        for round in 0..10u32 {
            for i in 0..20u32 {
                db.put(format!("k{i:03}").as_bytes(), format!("r{round}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        assert!(db.table_count() <= tiny_config().max_tables + 1);
        // Latest round wins.
        assert_eq!(db.get(b"k010").unwrap().as_deref(), Some(b"r9".as_slice()));
        assert_eq!(db.len().unwrap(), 20);
    }

    #[test]
    fn tombstones_survive_flush_but_die_in_compaction() {
        let dir = TempDir::new("lsm-tomb").unwrap();
        let db = open(&dir);
        db.put(b"gone", b"soon").unwrap();
        db.flush().unwrap();
        db.erase(b"gone").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"gone").unwrap(), None);
        // Force compaction by flushing past max_tables.
        for i in 0..5u32 {
            db.put(format!("fill{i}").as_bytes(), b"x").unwrap();
            db.flush().unwrap();
        }
        assert_eq!(db.get(b"gone").unwrap(), None);
        assert_eq!(db.len().unwrap(), 5);
    }

    #[test]
    fn truncated_wal_tail_is_tolerated() {
        let dir = TempDir::new("lsm-torn").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            db.put(b"ok", b"1").unwrap();
            db.put(b"torn", b"2").unwrap();
        }
        // Simulate a torn write: chop bytes off the WAL tail.
        let wal = dir.path().join("wal.log");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 3]).unwrap();
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.get(b"ok").unwrap().as_deref(), Some(b"1".as_slice()));
        assert_eq!(db.get(b"torn").unwrap(), None);
        // And the database remains writable.
        db.put(b"torn", b"retry").unwrap();
        assert_eq!(db.get(b"torn").unwrap().as_deref(), Some(b"retry".as_slice()));
    }

    #[test]
    fn corrupt_sstable_detected() {
        let dir = TempDir::new("lsm-corrupt").unwrap();
        {
            let db = open(&dir);
            db.put(b"k", b"v").unwrap();
            db.flush().unwrap();
        }
        let table = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tbl"))
            .unwrap();
        let mut data = std::fs::read(&table).unwrap();
        data[2] ^= 0xff;
        std::fs::write(&table, data).unwrap();
        let err = LsmDatabase::open(dir.path(), tiny_config()).unwrap_err();
        assert!(matches!(err, YokanError::Corrupt(_)));
    }

    #[test]
    fn overwrites_across_flush_boundaries() {
        let dir = TempDir::new("lsm-overwrite").unwrap();
        let db = open(&dir);
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        assert_eq!(db.len().unwrap(), 1);
    }

    #[test]
    fn snapshot_generation_advances_on_flush_and_compaction() {
        let dir = TempDir::new("lsm-gen").unwrap();
        let db = open(&dir);
        assert_eq!(db.snapshot_generation(), 0);
        db.put(b"a", b"1").unwrap();
        db.flush().unwrap();
        // One publication for the seal, one for the sealed→table swap.
        assert!(db.snapshot_generation() >= 2);
        let before = db.snapshot_generation();
        db.flush().unwrap(); // nothing to do: no publication
        assert_eq!(db.snapshot_generation(), before);
    }

    #[test]
    fn concurrent_reads_during_flush_and_compaction_churn() {
        let dir = TempDir::new("lsm-churn").unwrap();
        let db = std::sync::Arc::new(open(&dir));
        db.put(b"stable", b"value").unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = std::sync::Arc::clone(&db);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Never torn, never missing, regardless of which
                        // layer currently holds the key.
                        assert_eq!(
                            db.get(b"stable").unwrap().as_deref(),
                            Some(b"value".as_slice())
                        );
                    }
                })
            })
            .collect();
        // Enough flushes to trigger several compactions (max_tables = 3).
        for i in 0..40u32 {
            db.put(format!("churn-{i:03}").as_bytes(), &[b'x'; 64]).unwrap();
            db.flush().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(db.get(b"stable").unwrap().as_deref(), Some(b"value".as_slice()));
        assert_eq!(db.len().unwrap(), 41);
    }
}
