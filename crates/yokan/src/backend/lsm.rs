//! The `"lsm"` backend: a from-scratch log-structured merge tree, hash-
//! striped over N independent stripes so concurrent writers to different
//! stripes never contend on a lock or a WAL file.
//!
//! Layout inside the provider's data directory:
//!
//! * `lsm-stripes` — the stripe count this directory was created with;
//!   routing must be stable across reopens, so the manifest wins over
//!   whatever the config says on a later open;
//! * `wal-<stripe>.log` — stripe `s`'s active write-ahead log, one
//!   CRC-protected record per operation since that stripe's last seal;
//! * `wal-<stripe>-<epoch>.seg` — a sealed WAL segment: when a stripe's
//!   memtable seals, its WAL is atomically renamed to a `.seg` file and a
//!   fresh `wal-<stripe>.log` starts. The segment is deleted only after
//!   its memtable is durable in a table, so a crash at *any* point
//!   between seal and truncation replays without losing an acked write;
//! * `sst-<stripe>-<seq>.tbl` — immutable sorted tables of one stripe,
//!   newest sequence wins; tombstones mark deletions until compaction
//!   drops them.
//!
//! A stripe's memtable seals once it exceeds `memtable_bytes`; when more
//! than `max_tables` tables accumulate in a stripe, a compaction merges
//! them into one. Flush and compaction normally run *off* the request
//! path: [`LsmDatabase::set_background_executor`] installs a scheduler
//! (in production, a low-priority Argobots pool; see
//! `crate::bedrock`) and sealing merely enqueues a maintenance task.
//! Without an executor — or when a stripe's sealed bytes exceed
//! `max_sealed_bytes` (backpressure) — the sealing writer drains inline,
//! exactly like the historical single-stripe code.
//!
//! # Concurrency
//!
//! Reads never take a writer lock. Each stripe splits its state across
//! three locks, always acquired in this order (ranks
//! `LSM_WRITER_BASE + s < LSM_ACTIVE_BASE + s < LSM_SNAPSHOT_BASE + s`):
//!
//! * `writer` — serializes that stripe's mutations: WAL appends, seals,
//!   and (via the `maintaining` flag) flush/compaction exclusivity;
//! * `active` — the stripe's mutable memtable, briefly write-locked per
//!   put and read-locked by readers;
//! * `snapshot` — an `Arc<Snapshot>` slot holding the stripe's sealed
//!   memtables and immutable table list; held only to clone or swap.
//!
//! Readers check `active` first, then clone the snapshot `Arc` and run
//! lock-free against it. Sealing publishes the sealed memtable into the
//! snapshot *before* the emptied active map becomes visible (both happen
//! under the `active` write lock), so a key a reader no longer finds in
//! `active` is guaranteed to be in whichever snapshot it clones next.
//! Whole-table operations acquire every stripe's `active` read lock in
//! ascending stripe index (ascending rank), then every snapshot — an
//! atomic cut across stripes, deadlock-free by construction.
//!
//! Background maintenance claims a stripe by setting `maintaining` under
//! the writer lock, then does all file I/O *without* holding any lock:
//! it pre-allocates table sequence numbers under the lock, writes the
//! tables, and re-takes the lock only to publish. `maintaining` makes
//! flush/compaction single-writer per stripe, so the table list a
//! compaction merges cannot change under it. Foreground `flush()` (the
//! durability barrier) waits for in-flight maintenance, then drains
//! inline; errors from background maintenance park in a deferred slot
//! that the next `flush()` surfaces.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::ops::Bound;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use mochi_util::ordered_lock::{rank, OrderedMutex, OrderedRwLock};
use mochi_util::{crc32, fnv1a64};

use super::{Database, YokanError};

/// Upper bound on the stripe count; the lock hierarchy reserves
/// `LSM_STRIPE_MAX` ranks per lock class for the stripes.
pub const MAX_STRIPES: usize = rank::LSM_STRIPE_MAX as usize;

/// Default stripe count: like the memory backend's shards, enough that
/// 8 execution streams rarely collide, small enough that whole-table
/// scans and per-stripe file sets stay cheap.
pub const DEFAULT_STRIPES: usize = 8;

/// Scheduler for background flush/compaction work: called with a closure
/// to run off the request path (in production, a ULT pushed to a
/// low-priority Argobots pool). The closure is self-contained; dropping
/// it without running it only delays maintenance, never loses data.
pub type BackgroundExecutor = Arc<dyn Fn(Box<dyn FnOnce() + Send + 'static>) + Send + Sync>;

/// Tuning knobs of the LSM backend.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Seal a stripe's memtable to a sealed segment beyond this many bytes.
    pub memtable_bytes: usize,
    /// Compact a stripe when its number of SSTables exceeds this.
    pub max_tables: usize,
    /// Number of independent stripes (clamped to `1..=MAX_STRIPES`).
    /// `stripes: 1` reproduces the historical single-writer layout and
    /// serves as the contention baseline in `a04_contention`.
    pub stripes: usize,
    /// Backpressure budget: once a stripe holds more than this many
    /// sealed-but-unflushed bytes, the sealing writer drains inline
    /// instead of queueing more work behind a lagging background pool.
    pub max_sealed_bytes: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20,
            max_tables: 4,
            stripes: DEFAULT_STRIPES,
            max_sealed_bytes: 32 << 20,
        }
    }
}

/// Fault-injection points inside the flush path, for crash-recovery
/// tests: the drain errors out (simulating a crash of the process at
/// that instant) either before the table file is written or after the
/// table is durable but before the sealed segment is deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LsmFailPoint {
    /// No fault injected (the default).
    None = 0,
    /// Fail before writing the SSTable: the sealed segment survives.
    BeforeTablePersist = 1,
    /// Fail after the SSTable is durable, before the segment is deleted:
    /// both the table and the segment survive (recovery must be
    /// idempotent against the duplicate).
    AfterTablePersist = 2,
}

const OP_PUT: u8 = 1;
const OP_ERASE: u8 = 2;
/// Value length marking a tombstone in an SSTable.
const TOMBSTONE: u32 = u32::MAX;

/// `None` value = tombstone.
type Memtable = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

fn wal_path(dir: &Path, stripe: usize) -> PathBuf {
    dir.join(format!("wal-{stripe:03}.log"))
}

fn seg_path(dir: &Path, stripe: usize, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{stripe:03}-{epoch:010}.seg"))
}

fn table_path(dir: &Path, stripe: usize, seq: u64) -> PathBuf {
    dir.join(format!("sst-{stripe:03}-{seq:010}.tbl"))
}

/// Parses `prefix-<stripe:03>-<number:010>` stems (tables and segments).
fn parse_striped_name(path: &Path, prefix: &str) -> Option<(usize, u64)> {
    let stem = path.file_stem()?.to_str()?;
    let rest = stem.strip_prefix(prefix)?;
    let (stripe, number) = rest.split_once('-')?;
    Some((stripe.parse().ok()?, number.parse().ok()?))
}

#[derive(Debug, Clone, Copy)]
struct ValueLoc {
    offset: u64,
    len: u32, // TOMBSTONE for deletions
}

struct SsTable {
    path: PathBuf,
    seq: u64,
    file: File,
    index: BTreeMap<Vec<u8>, ValueLoc>,
}

impl SsTable {
    /// Writes `entries` (sorted; `None` value = tombstone) to `path` as
    /// table `seq`.
    fn write(path: PathBuf, seq: u64, entries: &Memtable) -> Result<SsTable, YokanError> {
        let mut buffer = Vec::new();
        let mut index = BTreeMap::new();
        for (key, value) in entries {
            buffer.extend_from_slice(&(key.len() as u32).to_le_bytes());
            match value {
                Some(v) => buffer.extend_from_slice(&(v.len() as u32).to_le_bytes()),
                None => buffer.extend_from_slice(&TOMBSTONE.to_le_bytes()),
            }
            buffer.extend_from_slice(key);
            let offset = buffer.len() as u64;
            if let Some(v) = value {
                buffer.extend_from_slice(v);
                index.insert(key.clone(), ValueLoc { offset, len: v.len() as u32 });
            } else {
                index.insert(key.clone(), ValueLoc { offset, len: TOMBSTONE });
            }
        }
        let crc = crc32(&buffer);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("create {}: {e}", path.display())))?;
        file.write_all(&buffer)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data().ok();
        Ok(SsTable { path, seq, file, index })
    }

    /// Opens and validates an existing table.
    fn open(path: PathBuf) -> Result<SsTable, YokanError> {
        let (_, seq) = parse_striped_name(&path, "sst-")
            .ok_or_else(|| YokanError::Corrupt(format!("bad table name {}", path.display())))?;
        let mut file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("open {}: {e}", path.display())))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        if data.len() < 4 {
            return Err(YokanError::Corrupt(format!("{} too short", path.display())));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(YokanError::Corrupt(format!("{} checksum mismatch", path.display())));
        }
        let mut index = BTreeMap::new();
        let mut pos = 0usize;
        while pos < body.len() {
            if pos + 8 > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated record", path.display())));
            }
            let klen = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            let vlen_raw = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            if pos + klen > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated key", path.display())));
            }
            let key = body[pos..pos + klen].to_vec();
            pos += klen;
            let offset = pos as u64;
            if vlen_raw != TOMBSTONE {
                let vlen = vlen_raw as usize;
                if pos + vlen > body.len() {
                    return Err(YokanError::Corrupt(format!(
                        "{} truncated value",
                        path.display()
                    )));
                }
                pos += vlen;
            }
            index.insert(key, ValueLoc { offset, len: vlen_raw });
        }
        Ok(SsTable { path, seq, file, index })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        match self.index.get(key) {
            None => Ok(None),
            Some(loc) if loc.len == TOMBSTONE => Ok(Some(None)),
            Some(loc) => {
                let mut value = vec![0u8; loc.len as usize];
                self.file
                    .read_exact_at(&mut value, loc.offset)
                    .map_err(|e| YokanError::Io(format!("read {}: {e}", self.path.display())))?;
                Ok(Some(Some(value)))
            }
        }
    }
}

/// An immutable, atomically swapped view of everything below one
/// stripe's active memtable. Readers clone the `Arc` and then run
/// entirely lock-free; whatever a snapshot references (sealed memtables,
/// open table files) stays alive as long as any reader holds the clone,
/// even across a concurrent compaction that unlinks the table files.
struct Snapshot {
    /// Publication counter; bumps on every seal, table swap, compaction
    /// and clear.
    generation: u64,
    /// Sealed memtables not yet persisted as tables, oldest → newest.
    sealed: Vec<Arc<Memtable>>,
    /// On-disk tables, oldest → newest.
    tables: Vec<Arc<SsTable>>,
}

impl Snapshot {
    /// Looks `key` up below the active memtable; `Some(None)` = deleted.
    fn lookup(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        for memtable in self.sealed.iter().rev() {
            if let Some(entry) = memtable.get(key) {
                return Ok(Some(entry.clone()));
            }
        }
        for table in self.tables.iter().rev() {
            if let Some(found) = table.get(key)? {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }
}

/// A sealed memtable together with the WAL segment that backs it; the
/// segment is deleted only once the memtable is durable in a table.
struct SealedSegment {
    memtable: Arc<Memtable>,
    seg_path: PathBuf,
    bytes: usize,
}

/// One stripe's mutator-side state, serialized by that stripe's
/// `writer` lock.
struct StripeWriter {
    wal: File,
    wal_path: PathBuf,
    /// Approximate bytes in the active memtable (seal trigger).
    active_bytes: usize,
    /// Next SSTable sequence number of this stripe.
    next_seq: u64,
    /// Next WAL-segment epoch of this stripe.
    next_epoch: u64,
    /// Sealed-but-unflushed segments, oldest → newest. Mirrors the
    /// snapshot's `sealed` list, plus the backing file of each entry.
    sealed: Vec<SealedSegment>,
    /// Total bytes across `sealed` (backpressure trigger).
    sealed_bytes: usize,
    /// Whether a flush/compaction (background or foreground) currently
    /// owns this stripe's maintenance. While set, nobody else may write
    /// tables for this stripe — this is what keeps the table list stable
    /// under an off-lock compaction merge.
    maintaining: bool,
}

struct Stripe {
    index: usize,
    writer: OrderedMutex<StripeWriter>,
    active: OrderedRwLock<Memtable>,
    snapshot: OrderedRwLock<Arc<Snapshot>>,
}

struct LsmInner {
    dir: PathBuf,
    config: LsmConfig,
    stripes: Box<[Stripe]>,
    /// Background scheduler, installed at most once.
    executor: OnceLock<BackgroundExecutor>,
    /// Last error from background maintenance; surfaced by `flush()`.
    background_error: OrderedMutex<Option<YokanError>>,
    /// Armed [`LsmFailPoint`] (tests only; `LsmFailPoint::None` normally).
    fail_point: AtomicU8,
}

/// The LSM database.
pub struct LsmDatabase {
    inner: Arc<LsmInner>,
}

impl std::fmt::Debug for LsmDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmDatabase")
            .field("dir", &self.inner.dir)
            .field("stripes", &self.inner.stripes.len())
            .field("tables", &self.table_count())
            .finish_non_exhaustive()
    }
}

fn wal_record(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(13 + key.len() + value.len());
    record.push(op);
    record.extend_from_slice(&(key.len() as u32).to_le_bytes());
    record.extend_from_slice(&(value.len() as u32).to_le_bytes());
    record.extend_from_slice(key);
    record.extend_from_slice(value);
    let crc = crc32(&record);
    record.extend_from_slice(&crc.to_le_bytes());
    record
}

/// Replays a WAL buffer, stopping cleanly at the first partial or corrupt
/// record (a crash mid-append).
fn replay_wal(data: &[u8], memtable: &mut Memtable) -> usize {
    let mut pos = 0usize;
    let mut bytes = 0usize;
    while pos + 13 <= data.len() {
        let op = data[pos];
        let klen = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[pos + 5..pos + 9].try_into().unwrap()) as usize;
        let total = 9 + klen + vlen + 4;
        if pos + total > data.len() {
            break;
        }
        let record = &data[pos..pos + total];
        let (body, crc_bytes) = record.split_at(total - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            break;
        }
        let key = record[9..9 + klen].to_vec();
        let value = record[9 + klen..9 + klen + vlen].to_vec();
        match op {
            OP_PUT => {
                bytes += klen + vlen;
                memtable.insert(key, Some(value));
            }
            OP_ERASE => {
                bytes += klen;
                memtable.insert(key, None);
            }
            _ => break,
        }
        pos += total;
    }
    bytes
}

/// Reads or creates the stripe-count manifest. Routing must be stable
/// for the life of the directory, so the recorded count always wins.
fn stripe_manifest(dir: &Path, configured: usize) -> Result<usize, YokanError> {
    let path = dir.join("lsm-stripes");
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let count: usize = text.trim().parse().map_err(|_| {
                YokanError::Corrupt(format!("bad stripe manifest {}", path.display()))
            })?;
            if !(1..=MAX_STRIPES).contains(&count) {
                return Err(YokanError::Corrupt(format!(
                    "stripe manifest {} out of range: {count}",
                    path.display()
                )));
            }
            Ok(count)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(&path, format!("{configured}\n"))?;
            Ok(configured)
        }
        Err(e) => Err(YokanError::Io(format!("{}: {e}", path.display()))),
    }
}

impl LsmInner {
    fn stripe_of(&self, key: &[u8]) -> &Stripe {
        &self.stripes[self.stripe_index(key)]
    }

    fn stripe_index(&self, key: &[u8]) -> usize {
        (fnv1a64(key) % self.stripes.len() as u64) as usize
    }

    /// Clones a stripe's snapshot `Arc` (the lock is held only for the
    /// clone itself).
    fn snapshot_arc(stripe: &Stripe) -> Arc<Snapshot> {
        Arc::clone(&stripe.snapshot.read())
    }

    /// Atomically replaces a stripe's published snapshot.
    fn publish(stripe: &Stripe, next: impl FnOnce(&Snapshot) -> Snapshot) {
        let mut slot = stripe.snapshot.write();
        *slot = Arc::new(next(&slot));
    }

    fn append_wal(
        writer: &mut StripeWriter,
        op: u8,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), YokanError> {
        let record = wal_record(op, key, value);
        writer.wal.write_all(&record)?;
        Ok(())
    }

    fn check_fail(&self, point: LsmFailPoint) -> Result<(), YokanError> {
        if self.fail_point.load(Ordering::Acquire) == point as u8 {
            return Err(YokanError::Io(format!("injected fault: {point:?}")));
        }
        Ok(())
    }

    /// Current live value of `key` in its stripe, never touching a
    /// writer lock.
    ///
    /// Read order matters: active memtable first, then the snapshot.
    /// Sealing publishes the sealed memtable into the snapshot before
    /// the emptied active map becomes visible, so a key missing from
    /// `active` is always present in (or genuinely absent from) the
    /// snapshot read afterwards.
    fn lookup_live(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        let stripe = self.stripe_of(key);
        if let Some(entry) = stripe.active.read().get(key) {
            return Ok(entry.clone());
        }
        let snap = Self::snapshot_arc(stripe);
        Ok(snap.lookup(key)?.flatten())
    }

    /// Seals the stripe's active memtable: publishes it into the
    /// snapshot, rotates `wal-<s>.log` to a `.seg` file, and records the
    /// pair in the writer's sealed list. No-op on an empty memtable.
    fn seal_locked(&self, stripe: &Stripe, writer: &mut StripeWriter) -> Result<(), YokanError> {
        let sealed = {
            let mut active = stripe.active.write();
            if active.is_empty() {
                writer.active_bytes = 0;
                return Ok(());
            }
            let sealed = Arc::new(std::mem::take(&mut *active));
            // Publish under the active write lock: readers check
            // `active` first, so anything they no longer find there must
            // already be visible in the snapshot.
            Self::publish(stripe, |old| Snapshot {
                generation: old.generation + 1,
                sealed: old.sealed.iter().cloned().chain([Arc::clone(&sealed)]).collect(),
                tables: old.tables.clone(),
            });
            sealed
        };
        let epoch = writer.next_epoch;
        writer.next_epoch += 1;
        let seg = seg_path(&self.dir, stripe.index, epoch);
        writer.wal.sync_data().ok();
        std::fs::rename(&writer.wal_path, &seg)
            .map_err(|e| YokanError::Io(format!("rotate {}: {e}", seg.display())))?;
        writer.wal = OpenOptions::new().create(true).append(true).open(&writer.wal_path)?;
        let bytes = writer.active_bytes;
        writer.active_bytes = 0;
        writer.sealed_bytes += bytes;
        writer.sealed.push(SealedSegment { memtable: sealed, seg_path: seg, bytes });
        Ok(())
    }

    /// Post-append check: seals past `memtable_bytes`, then either asks
    /// the caller to hand the stripe to the background executor (returns
    /// `true`; the caller must drop the writer guard *before* calling
    /// [`Self::schedule_maintenance`], since a synchronous executor
    /// would re-enter this stripe's writer lock) or drains inline (no
    /// executor installed, or sealed bytes past the backpressure budget
    /// while no maintenance is in flight).
    fn maybe_seal_and_flush(
        &self,
        stripe: &Stripe,
        writer: &mut StripeWriter,
    ) -> Result<bool, YokanError> {
        if writer.active_bytes < self.config.memtable_bytes {
            return Ok(false);
        }
        self.seal_locked(stripe, writer)?;
        let over_budget = writer.sealed_bytes > self.config.max_sealed_bytes;
        if self.executor.get().is_some() && !over_budget {
            return Ok(true);
        }
        // Inline drain — unless background maintenance currently owns
        // the stripe, in which case the budget is soft: the in-flight
        // maintenance will pick the new segment up.
        if !writer.maintaining {
            self.drain_locked(stripe, writer)?;
        }
        Ok(false)
    }

    /// Enqueues a maintenance task for stripe `index` on the installed
    /// executor. Must be called with no stripe lock held. The task holds
    /// only a `Weak` back-reference, so a queued task never outlives the
    /// database it serves.
    fn schedule_maintenance(self: &Arc<Self>, index: usize) {
        if let Some(executor) = self.executor.get() {
            let weak = Arc::downgrade(self);
            executor(Box::new(move || {
                if let Some(inner) = weak.upgrade() {
                    inner.maintain_stripe(index);
                }
            }));
        }
    }

    /// Persists every sealed segment of `stripe` (oldest first), then
    /// compacts if the table count exceeds the limit. Runs with the
    /// writer lock held; callers guarantee no concurrent maintenance
    /// (`!writer.maintaining`).
    fn drain_locked(&self, stripe: &Stripe, writer: &mut StripeWriter) -> Result<(), YokanError> {
        while !writer.sealed.is_empty() {
            self.check_fail(LsmFailPoint::BeforeTablePersist)?;
            let memtable = Arc::clone(&writer.sealed[0].memtable);
            let seq = writer.next_seq;
            writer.next_seq += 1;
            let table = Arc::new(SsTable::write(
                table_path(&self.dir, stripe.index, seq),
                seq,
                &memtable,
            )?);
            self.check_fail(LsmFailPoint::AfterTablePersist)?;
            // Swap the sealed memtable for its durable table in one
            // publication; readers see one or the other, never neither.
            Self::publish(stripe, |old| Snapshot {
                generation: old.generation + 1,
                sealed: old
                    .sealed
                    .iter()
                    .filter(|m| !Arc::ptr_eq(m, &memtable))
                    .cloned()
                    .collect(),
                tables: old.tables.iter().cloned().chain([Arc::clone(&table)]).collect(),
            });
            let segment = writer.sealed.remove(0);
            writer.sealed_bytes -= segment.bytes;
            // Everything the segment covered is now durable in a table.
            std::fs::remove_file(&segment.seg_path).ok();
        }
        if Self::snapshot_arc(stripe).tables.len() > self.config.max_tables {
            self.compact_locked(stripe, writer)?;
        }
        Ok(())
    }

    /// Merges all of one stripe's tables into one, dropping tombstones
    /// (nothing older remains to resurrect). Sealed and active memtables
    /// sit above the tables and are unaffected. Callers hold the writer
    /// lock or own `maintaining`, so the table list cannot change.
    fn compact_locked(
        &self,
        stripe: &Stripe,
        writer: &mut StripeWriter,
    ) -> Result<(), YokanError> {
        let snap = Self::snapshot_arc(stripe);
        let merged = Self::merge_tables(&snap)?;
        let seq = writer.next_seq;
        writer.next_seq += 1;
        let new_table =
            Arc::new(SsTable::write(table_path(&self.dir, stripe.index, seq), seq, &merged)?);
        let old_paths: Vec<PathBuf> = snap.tables.iter().map(|t| t.path.clone()).collect();
        Self::publish(stripe, |old| Snapshot {
            generation: old.generation + 1,
            sealed: old.sealed.clone(),
            tables: vec![Arc::clone(&new_table)],
        });
        // In-flight readers may still hold the old tables' `Arc`s; their
        // open descriptors keep the unlinked files readable.
        for path in old_paths {
            std::fs::remove_file(&path).ok();
        }
        Ok(())
    }

    /// Merge all tables oldest → newest; newest value wins; tombstones
    /// dropped.
    fn merge_tables(snap: &Snapshot) -> Result<Memtable, YokanError> {
        let mut merged: Memtable = BTreeMap::new();
        for table in &snap.tables {
            for key in table.index.keys() {
                // An indexed key is always present in its own table.
                if let Some(value) = table.get(key)? {
                    merged.insert(key.clone(), value);
                }
            }
        }
        merged.retain(|_, v| v.is_some());
        Ok(merged)
    }

    /// Background entry point for one stripe: claim maintenance, flush
    /// sealed segments (file I/O off-lock), compact if needed, repeat
    /// until the stripe is clean. Errors park in `background_error` for
    /// the next `flush()` to surface; the sealed segments stay queued
    /// and are retried by the next seal or flush.
    fn maintain_stripe(&self, index: usize) {
        let stripe = &self.stripes[index];
        {
            let mut writer = stripe.writer.lock();
            if writer.maintaining {
                // Another task owns the stripe; it will re-check for our
                // work before releasing ownership.
                return;
            }
            writer.maintaining = true;
        }
        loop {
            match self.maintain_round(stripe) {
                Ok(true) => continue,
                // `maintain_round` released ownership under the writer
                // lock after seeing no work, so no seal can slip between
                // the check and the release.
                Ok(false) => break,
                Err(e) => {
                    stripe.writer.lock().maintaining = false;
                    *self.background_error.lock() = Some(e);
                    break;
                }
            }
        }
    }

    /// One maintenance round. Returns `Ok(false)` — after clearing
    /// `maintaining` — when the stripe has no work left.
    fn maintain_round(&self, stripe: &Stripe) -> Result<bool, YokanError> {
        // Claim the current sealed list and a sequence range under the
        // lock; write the tables with no lock held.
        let (to_flush, base_seq) = {
            let mut writer = stripe.writer.lock();
            if writer.sealed.is_empty() {
                if Self::snapshot_arc(stripe).tables.len() <= self.config.max_tables {
                    writer.maintaining = false;
                    return Ok(false);
                }
                (Vec::new(), writer.next_seq)
            } else {
                let to_flush: Vec<Arc<Memtable>> =
                    writer.sealed.iter().map(|s| Arc::clone(&s.memtable)).collect();
                let base = writer.next_seq;
                writer.next_seq += to_flush.len() as u64;
                (to_flush, base)
            }
        };
        if to_flush.is_empty() {
            // Compaction-only round. `maintaining` keeps the table list
            // frozen, so merging from a snapshot clone off-lock is safe;
            // the lock is re-taken only to allocate the sequence number
            // and publish.
            let mut writer = stripe.writer.lock();
            self.compact_locked(stripe, &mut writer)?;
            return Ok(true);
        }
        let mut tables = Vec::with_capacity(to_flush.len());
        for (i, memtable) in to_flush.iter().enumerate() {
            self.check_fail(LsmFailPoint::BeforeTablePersist)?;
            let seq = base_seq + i as u64;
            tables.push(Arc::new(SsTable::write(
                table_path(&self.dir, stripe.index, seq),
                seq,
                memtable,
            )?));
            self.check_fail(LsmFailPoint::AfterTablePersist)?;
        }
        // Publish and retire the segments. New seals may have appended
        // to `writer.sealed` meanwhile; they keep their position and are
        // handled next round (their sequence numbers are larger, so
        // table order stays correct).
        let mut writer = stripe.writer.lock();
        for (memtable, table) in to_flush.iter().zip(&tables) {
            Self::publish(stripe, |old| Snapshot {
                generation: old.generation + 1,
                sealed: old.sealed.iter().filter(|m| !Arc::ptr_eq(m, memtable)).cloned().collect(),
                tables: old.tables.iter().cloned().chain([Arc::clone(table)]).collect(),
            });
            if let Some(pos) =
                writer.sealed.iter().position(|s| Arc::ptr_eq(&s.memtable, memtable))
            {
                let segment = writer.sealed.remove(pos);
                writer.sealed_bytes -= segment.bytes;
                std::fs::remove_file(&segment.seg_path).ok();
            }
        }
        Ok(true)
    }

    /// Foreground durability barrier: waits out in-flight background
    /// maintenance per stripe, seals and drains everything inline, then
    /// surfaces any parked background error.
    fn flush_all(&self) -> Result<(), YokanError> {
        for stripe in self.stripes.iter() {
            loop {
                let mut writer = stripe.writer.lock();
                if writer.maintaining {
                    // Background maintenance owns the stripe; spin-yield
                    // until it hands back. The maintainer runs on its
                    // own xstream and never waits on us, so this always
                    // terminates.
                    drop(writer);
                    std::thread::yield_now();
                    continue;
                }
                self.seal_locked(stripe, &mut writer)?;
                self.drain_locked(stripe, &mut writer)?;
                break;
            }
        }
        if let Some(e) = self.background_error.lock().take() {
            return Err(e);
        }
        Ok(())
    }

    /// Read-locks every stripe's active memtable in ascending stripe
    /// index (ascending rank), then clones every snapshot: an atomic cut
    /// of the whole table.
    fn atomic_cut(
        &self,
    ) -> (Vec<mochi_util::ordered_lock::OrderedReadGuard<'_, Memtable>>, Vec<Arc<Snapshot>>) {
        let actives: Vec<_> = self.stripes.iter().map(|s| s.active.read()).collect();
        let snaps: Vec<_> = self.stripes.iter().map(Self::snapshot_arc).collect();
        (actives, snaps)
    }

    /// Merged aliveness of keys with `prefix` in one stripe, newer
    /// sources overriding older ones. `active` must be the caller-held
    /// guard's contents so the cut is consistent.
    fn merged_keys(snap: &Snapshot, active: &Memtable, prefix: &[u8]) -> BTreeMap<Vec<u8>, bool> {
        let mut alive: BTreeMap<Vec<u8>, bool> = BTreeMap::new();
        let range = (Bound::Included(prefix.to_vec()), Bound::Unbounded);
        for table in &snap.tables {
            for (key, loc) in table.index.range::<Vec<u8>, _>(range.clone()) {
                if !key.starts_with(prefix) {
                    break;
                }
                alive.insert(key.clone(), loc.len != TOMBSTONE);
            }
        }
        for memtable in &snap.sealed {
            for (key, value) in memtable.range::<Vec<u8>, _>(range.clone()) {
                if !key.starts_with(prefix) {
                    break;
                }
                alive.insert(key.clone(), value.is_some());
            }
        }
        for (key, value) in active.range::<Vec<u8>, _>(range) {
            if !key.starts_with(prefix) {
                break;
            }
            alive.insert(key.clone(), value.is_some());
        }
        alive
    }

    /// K-way merge over one stripe's table indexes, sealed memtables and
    /// active memtable, newest source winning on ties, stopping after
    /// `max` live keys — O(max) per page instead of O(range).
    fn stripe_keys(
        snap: &Snapshot,
        active: &Memtable,
        prefix: &[u8],
        lower: &Bound<Vec<u8>>,
        max: usize,
    ) -> Vec<Vec<u8>> {
        // Sources ordered oldest → newest; the active memtable is last.
        type KeyCursor<'a> = Box<dyn Iterator<Item = (&'a Vec<u8>, bool)> + 'a>;
        let mut cursors: Vec<KeyCursor<'_>> = Vec::new();
        for table in &snap.tables {
            cursors.push(Box::new(
                table
                    .index
                    .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                    .map(|(k, loc)| (k, loc.len != TOMBSTONE)),
            ));
        }
        for memtable in &snap.sealed {
            cursors.push(Box::new(
                memtable
                    .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                    .map(|(k, v)| (k, v.is_some())),
            ));
        }
        cursors.push(Box::new(
            active
                .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                .map(|(k, v)| (k, v.is_some())),
        ));
        let mut heads: Vec<Option<(&Vec<u8>, bool)>> =
            cursors.iter_mut().map(|c| c.next()).collect();
        let mut out: Vec<Vec<u8>> = Vec::new();
        while out.len() < max {
            // Smallest key among heads; among ties, the newest source
            // (highest index) is authoritative.
            let mut smallest: Option<&Vec<u8>> = None;
            for head in heads.iter().flatten() {
                if smallest.is_none_or(|s| head.0 < s) {
                    smallest = Some(head.0);
                }
            }
            let Some(key) = smallest else { break };
            if !key.starts_with(prefix) {
                // All further keys in every cursor are >= key; any source
                // still inside the prefix would have produced a smaller
                // head, so once the global minimum leaves the prefix we
                // are done.
                break;
            }
            let key = key.clone();
            let mut alive = false;
            for i in 0..heads.len() {
                if let Some((head_key, live)) = heads[i] {
                    if *head_key == key {
                        alive = live; // later sources overwrite
                        heads[i] = cursors[i].next();
                    }
                }
            }
            if alive {
                out.push(key);
            }
        }
        out
    }
}

impl LsmDatabase {
    /// Opens (or creates) a database in `dir`, replaying any WAL state
    /// and loading existing tables.
    ///
    /// Recovery restores the exact pre-crash structure per stripe: each
    /// sealed segment (`.seg`) replays into its own sealed memtable —
    /// published in the snapshot, queued for flush — and the active WAL
    /// replays into the active memtable. A segment whose contents
    /// already reached a table (crash after persist, before truncation)
    /// replays to the same values the table holds and simply shadows it,
    /// so recovery is idempotent.
    pub fn open(dir: impl Into<PathBuf>, config: LsmConfig) -> Result<Self, YokanError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let configured = config.stripes.clamp(1, MAX_STRIPES);
        let stripe_count = stripe_manifest(&dir, configured)?;

        // Bucket on-disk tables and sealed segments by stripe.
        let mut table_paths: Vec<Vec<(u64, PathBuf)>> = vec![Vec::new(); stripe_count];
        let mut seg_paths: Vec<Vec<(u64, PathBuf)>> = vec![Vec::new(); stripe_count];
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let (bucket, prefix) = match path.extension().and_then(|x| x.to_str()) {
                Some("tbl") => (&mut table_paths, "sst-"),
                Some("seg") => (&mut seg_paths, "wal-"),
                _ => continue,
            };
            let Some((stripe, number)) = parse_striped_name(&path, prefix) else {
                return Err(YokanError::Corrupt(format!("bad file name {}", path.display())));
            };
            if stripe >= stripe_count {
                return Err(YokanError::Corrupt(format!(
                    "{} belongs to stripe {stripe} but the manifest says {stripe_count}",
                    path.display()
                )));
            }
            bucket[stripe].push((number, path));
        }

        let mut stripes = Vec::with_capacity(stripe_count);
        for index in 0..stripe_count {
            let mut paths = std::mem::take(&mut table_paths[index]);
            paths.sort();
            let mut tables = Vec::with_capacity(paths.len());
            for (_, path) in paths {
                tables.push(Arc::new(SsTable::open(path)?));
            }
            let next_seq = tables.last().map(|t| t.seq + 1).unwrap_or(0);

            // Sealed segments, oldest epoch first.
            let mut segs = std::mem::take(&mut seg_paths[index]);
            segs.sort();
            let next_epoch = segs.last().map(|(e, _)| e + 1).unwrap_or(0);
            let mut sealed = Vec::new();
            let mut published: Vec<Arc<Memtable>> = Vec::new();
            let mut sealed_bytes = 0usize;
            for (_, path) in segs {
                let data = std::fs::read(&path)?;
                let mut memtable = Memtable::new();
                let bytes = replay_wal(&data, &mut memtable);
                if memtable.is_empty() {
                    std::fs::remove_file(&path).ok();
                    continue;
                }
                let memtable = Arc::new(memtable);
                published.push(Arc::clone(&memtable));
                sealed_bytes += bytes;
                sealed.push(SealedSegment { memtable, seg_path: path, bytes });
            }

            let wal_path = wal_path(&dir, index);
            let mut active = Memtable::new();
            let mut active_bytes = 0;
            if wal_path.exists() {
                let data = std::fs::read(&wal_path)?;
                active_bytes = replay_wal(&data, &mut active);
            }
            let wal = OpenOptions::new().create(true).append(true).open(&wal_path)?;
            stripes.push(Stripe {
                index,
                writer: OrderedMutex::new(
                    rank::LSM_WRITER_BASE + index as u32,
                    "lsm.writer",
                    StripeWriter {
                        wal,
                        wal_path,
                        active_bytes,
                        next_seq,
                        next_epoch,
                        sealed,
                        sealed_bytes,
                        maintaining: false,
                    },
                ),
                active: OrderedRwLock::new(
                    rank::LSM_ACTIVE_BASE + index as u32,
                    "lsm.active",
                    active,
                ),
                snapshot: OrderedRwLock::new(
                    rank::LSM_SNAPSHOT_BASE + index as u32,
                    "lsm.snapshot",
                    Arc::new(Snapshot { generation: 0, sealed: published, tables }),
                ),
            });
        }
        Ok(Self {
            inner: Arc::new(LsmInner {
                dir,
                config: LsmConfig { stripes: stripe_count, ..config },
                stripes: stripes.into_boxed_slice(),
                executor: OnceLock::new(),
                background_error: OrderedMutex::new(
                    rank::LSM_BG_ERROR,
                    "lsm.bg_error",
                    None,
                ),
                fail_point: AtomicU8::new(LsmFailPoint::None as u8),
            }),
        })
    }

    /// Installs the background flush/compaction scheduler. At most one
    /// executor can be installed; later calls are ignored (returns
    /// `false`). Until one is installed, sealing writers drain inline.
    pub fn set_background_executor(&self, executor: BackgroundExecutor) -> bool {
        self.inner.executor.set(executor).is_ok()
    }

    /// Arms (or with [`LsmFailPoint::None`] clears) a fault-injection
    /// point in the flush path. Test hook for crash-recovery coverage.
    pub fn set_fail_point(&self, point: LsmFailPoint) {
        self.inner.fail_point.store(point as u8, Ordering::Release);
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.inner.stripes.len()
    }

    /// Total SSTables on disk across stripes (diagnostics / tests).
    pub fn table_count(&self) -> usize {
        self.inner.stripes.iter().map(|s| LsmInner::snapshot_arc(s).tables.len()).sum()
    }

    /// Total sealed-but-unflushed bytes across stripes (diagnostics).
    pub fn sealed_bytes(&self) -> usize {
        self.inner.stripes.iter().map(|s| s.writer.lock().sealed_bytes).sum()
    }

    /// Sum of per-stripe snapshot generations (diagnostics / tests);
    /// advances on every publication anywhere in the database.
    pub fn snapshot_generation(&self) -> u64 {
        self.inner.stripes.iter().map(|s| LsmInner::snapshot_arc(s).generation).sum()
    }

    /// Takes the deferred background-maintenance error, if any, without
    /// forcing a flush (diagnostics / tests).
    pub fn take_background_error(&self) -> Option<YokanError> {
        self.inner.background_error.lock().take()
    }
}

impl Database for LsmDatabase {
    fn backend_name(&self) -> &'static str {
        "lsm"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let stripe = self.inner.stripe_of(key);
        let schedule = {
            let mut writer = stripe.writer.lock();
            LsmInner::append_wal(&mut writer, OP_PUT, key, value)?;
            {
                let mut active = stripe.active.write();
                active.insert(key.to_vec(), Some(value.to_vec()));
            }
            writer.active_bytes += key.len() + value.len();
            self.inner.maybe_seal_and_flush(stripe, &mut writer)?
        };
        if schedule {
            self.inner.schedule_maintenance(stripe.index);
        }
        Ok(())
    }

    fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), YokanError> {
        if pairs.is_empty() {
            return Ok(());
        }
        // Group by stripe so each stripe's writer lock is taken once per
        // batch (one WAL write, one active-lock acquisition per group),
        // one stripe at a time — never two writer locks together.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.inner.stripes.len()];
        for (i, (key, _)) in pairs.iter().enumerate() {
            groups[self.inner.stripe_index(key)].push(i);
        }
        for (stripe, group) in self.inner.stripes.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let schedule = {
                let mut writer = stripe.writer.lock();
                let mut batch = Vec::new();
                for &i in group {
                    let (key, value) = pairs[i];
                    batch.extend_from_slice(&wal_record(OP_PUT, key, value));
                }
                writer.wal.write_all(&batch)?;
                {
                    let mut active = stripe.active.write();
                    for &i in group {
                        let (key, value) = pairs[i];
                        active.insert(key.to_vec(), Some(value.to_vec()));
                    }
                }
                writer.active_bytes +=
                    group.iter().map(|&i| pairs[i].0.len() + pairs[i].1.len()).sum::<usize>();
                self.inner.maybe_seal_and_flush(stripe, &mut writer)?
            };
            if schedule {
                self.inner.schedule_maintenance(stripe.index);
            }
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        self.inner.lookup_live(key)
    }

    fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        // Group by stripe: one active-read pass and one snapshot clone
        // per stripe visited.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.inner.stripes.len()];
        for (i, key) in keys.iter().enumerate() {
            groups[self.inner.stripe_index(key)].push(i);
        }
        let mut values: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for (stripe, group) in self.inner.stripes.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let mut misses: Vec<usize> = Vec::new();
            {
                let active = stripe.active.read();
                for &i in group {
                    match active.get(keys[i]) {
                        Some(entry) => values[i] = entry.clone(),
                        None => misses.push(i),
                    }
                }
            }
            if misses.is_empty() {
                continue;
            }
            let snap = LsmInner::snapshot_arc(stripe);
            for i in misses {
                values[i] = snap.lookup(keys[i])?.flatten();
            }
        }
        Ok(values)
    }

    fn erase(&self, key: &[u8]) -> Result<bool, YokanError> {
        let stripe = self.inner.stripe_of(key);
        let (existed, schedule) = {
            let mut writer = stripe.writer.lock();
            // Stripe-local liveness check under this stripe's writer
            // lock: holding it freezes the stripe's seals, so the
            // active-then-snapshot lookup is stable, and no other stripe
            // is consulted — a key can only ever live in the stripe it
            // hashes to.
            let existed = {
                let active = stripe.active.read();
                match active.get(key) {
                    Some(entry) => entry.is_some(),
                    None => {
                        drop(active);
                        LsmInner::snapshot_arc(stripe).lookup(key)?.flatten().is_some()
                    }
                }
            };
            let mut schedule = false;
            if existed {
                LsmInner::append_wal(&mut writer, OP_ERASE, key, &[])?;
                stripe.active.write().insert(key.to_vec(), None);
                writer.active_bytes += key.len();
                schedule = self.inner.maybe_seal_and_flush(stripe, &mut writer)?;
            }
            (existed, schedule)
        };
        if schedule {
            self.inner.schedule_maintenance(stripe.index);
        }
        Ok(existed)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let (actives, snaps) = self.inner.atomic_cut();
        let lower: Bound<Vec<u8>> = match start_after {
            Some(s) if s >= prefix => Bound::Excluded(s.to_vec()),
            _ => Bound::Included(prefix.to_vec()),
        };
        // Stripes hold disjoint key sets: each contributes at most `max`
        // candidates; the merged, sorted list is truncated to the global
        // `max`.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for (snap, active) in snaps.iter().zip(&actives) {
            keys.extend(LsmInner::stripe_keys(snap, active, prefix, &lower, max));
        }
        keys.sort_unstable();
        keys.truncate(max);
        Ok(keys)
    }

    fn len(&self) -> Result<u64, YokanError> {
        let (actives, snaps) = self.inner.atomic_cut();
        let mut count = 0u64;
        for (snap, active) in snaps.iter().zip(&actives) {
            let alive = LsmInner::merged_keys(snap, active, b"");
            count += alive.values().filter(|a| **a).count() as u64;
        }
        Ok(count)
    }

    fn flush(&self) -> Result<(), YokanError> {
        self.inner.flush_all()
    }

    fn clear(&self) -> Result<(), YokanError> {
        for stripe in self.inner.stripes.iter() {
            loop {
                let mut writer = stripe.writer.lock();
                if writer.maintaining {
                    drop(writer);
                    std::thread::yield_now();
                    continue;
                }
                let old_paths: Vec<PathBuf> = LsmInner::snapshot_arc(stripe)
                    .tables
                    .iter()
                    .map(|t| t.path.clone())
                    .collect();
                {
                    let mut active = stripe.active.write();
                    active.clear();
                    LsmInner::publish(stripe, |old| Snapshot {
                        generation: old.generation + 1,
                        sealed: Vec::new(),
                        tables: Vec::new(),
                    });
                }
                writer.active_bytes = 0;
                let segments = std::mem::take(&mut writer.sealed);
                writer.sealed_bytes = 0;
                writer.wal = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(true)
                    .open(&writer.wal_path)?;
                for segment in segments {
                    std::fs::remove_file(&segment.seg_path).ok();
                }
                for path in old_paths {
                    std::fs::remove_file(&path).ok();
                }
                break;
            }
        }
        Ok(())
    }

    fn dump(&self) -> Result<super::KvPairs, YokanError> {
        let (actives, snaps) = self.inner.atomic_cut();
        let mut out = Vec::new();
        for (snap, active) in snaps.iter().zip(&actives) {
            let alive = LsmInner::merged_keys(snap, active, b"");
            for (key, is_alive) in alive {
                if is_alive {
                    let value = match active.get(&key) {
                        Some(entry) => entry.clone(),
                        None => snap.lookup(&key)?.flatten(),
                    };
                    let value = value
                        .ok_or_else(|| YokanError::Corrupt("key vanished during dump".into()))?;
                    out.push((key, value));
                }
            }
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use mochi_util::TempDir;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn tiny_config() -> LsmConfig {
        // Small thresholds so tests exercise seal + flush + compaction;
        // several stripes so routing is exercised too.
        LsmConfig { memtable_bytes: 256, max_tables: 3, stripes: 4, ..LsmConfig::default() }
    }

    fn open(dir: &TempDir) -> LsmDatabase {
        LsmDatabase::open(dir.path(), tiny_config()).unwrap()
    }

    /// A background executor backed by plain threads — simulates the
    /// Argobots pool without needing a runtime in unit tests.
    fn thread_executor() -> BackgroundExecutor {
        Arc::new(|task: Box<dyn FnOnce() + Send + 'static>| {
            std::thread::spawn(task);
        })
    }

    #[test]
    fn conformance_suite() {
        for case in 0..6 {
            let dir = TempDir::new("lsm-conf").unwrap();
            let db = open(&dir);
            match case {
                0 => conformance::basic_ops(&db),
                1 => conformance::listing(&db),
                2 => {
                    let dir2 = TempDir::new("lsm-conf2").unwrap();
                    conformance::dump_and_load(&db, &open(&dir2));
                }
                3 => conformance::clear(&db),
                4 => conformance::multi_ops(&db),
                _ => conformance::empty_and_binary_keys(&db),
            }
        }
    }

    #[test]
    fn survives_reopen_with_wal_only() {
        let dir = TempDir::new("lsm-wal").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            db.put(b"persist", b"me").unwrap();
            db.erase(b"persist2").ok();
            // No flush: data only in WAL + memtable.
            assert_eq!(db.table_count(), 0);
        }
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.get(b"persist").unwrap().as_deref(), Some(b"me".as_slice()));
    }

    #[test]
    fn survives_reopen_with_tables_and_wal() {
        let dir = TempDir::new("lsm-mixed").unwrap();
        {
            let db = open(&dir);
            for i in 0..100u32 {
                db.put(format!("key-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
            }
            db.erase(b"key-0007").unwrap();
            assert!(db.table_count() >= 1, "expected flushes with tiny memtable");
        }
        let db = open(&dir);
        assert_eq!(db.len().unwrap(), 99);
        assert_eq!(db.get(b"key-0007").unwrap(), None);
        assert_eq!(db.get(b"key-0042").unwrap().as_deref(), Some(vec![b'x'; 64].as_slice()));
    }

    #[test]
    fn batched_puts_survive_reopen() {
        let dir = TempDir::new("lsm-batch").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            let pairs: Vec<(Vec<u8>, Vec<u8>)> =
                (0..10u32).map(|i| (format!("b{i}").into_bytes(), vec![i as u8])).collect();
            let borrowed: Vec<(&[u8], &[u8])> =
                pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            db.put_multi(&borrowed).unwrap();
        }
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.len().unwrap(), 10);
        assert_eq!(db.get(b"b7").unwrap().as_deref(), Some([7u8].as_slice()));
    }

    #[test]
    fn compaction_bounds_table_count_and_preserves_data() {
        let dir = TempDir::new("lsm-compact").unwrap();
        let db = open(&dir);
        for round in 0..10u32 {
            for i in 0..20u32 {
                db.put(format!("k{i:03}").as_bytes(), format!("r{round}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        // After a flush, every stripe compacted itself down to at most
        // `max_tables` tables.
        let config = tiny_config();
        assert!(db.table_count() <= config.stripes * config.max_tables);
        // Latest round wins.
        assert_eq!(db.get(b"k010").unwrap().as_deref(), Some(b"r9".as_slice()));
        assert_eq!(db.len().unwrap(), 20);
    }

    #[test]
    fn tombstones_survive_flush_but_die_in_compaction() {
        let dir = TempDir::new("lsm-tomb").unwrap();
        let db = open(&dir);
        db.put(b"gone", b"soon").unwrap();
        db.flush().unwrap();
        db.erase(b"gone").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"gone").unwrap(), None);
        // Force compaction by flushing past max_tables.
        for i in 0..20u32 {
            db.put(format!("fill{i}").as_bytes(), b"x").unwrap();
            db.flush().unwrap();
        }
        assert_eq!(db.get(b"gone").unwrap(), None);
        assert_eq!(db.len().unwrap(), 20);
    }

    #[test]
    fn truncated_wal_tail_is_tolerated() {
        let dir = TempDir::new("lsm-torn").unwrap();
        // One stripe so both keys share one WAL file.
        let config = LsmConfig { stripes: 1, ..LsmConfig::default() };
        {
            let db = LsmDatabase::open(dir.path(), config).unwrap();
            db.put(b"ok", b"1").unwrap();
            db.put(b"torn", b"2").unwrap();
        }
        // Simulate a torn write: chop bytes off the WAL tail.
        let wal = dir.path().join("wal-000.log");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 3]).unwrap();
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        assert_eq!(db.get(b"ok").unwrap().as_deref(), Some(b"1".as_slice()));
        assert_eq!(db.get(b"torn").unwrap(), None);
        // And the database remains writable.
        db.put(b"torn", b"retry").unwrap();
        assert_eq!(db.get(b"torn").unwrap().as_deref(), Some(b"retry".as_slice()));
    }

    #[test]
    fn corrupt_sstable_detected() {
        let dir = TempDir::new("lsm-corrupt").unwrap();
        {
            let db = open(&dir);
            db.put(b"k", b"v").unwrap();
            db.flush().unwrap();
        }
        let table = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tbl"))
            .unwrap();
        let mut data = std::fs::read(&table).unwrap();
        data[2] ^= 0xff;
        std::fs::write(&table, data).unwrap();
        let err = LsmDatabase::open(dir.path(), tiny_config()).unwrap_err();
        assert!(matches!(err, YokanError::Corrupt(_)));
    }

    #[test]
    fn overwrites_across_flush_boundaries() {
        let dir = TempDir::new("lsm-overwrite").unwrap();
        let db = open(&dir);
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        assert_eq!(db.len().unwrap(), 1);
    }

    #[test]
    fn snapshot_generation_advances_on_flush_and_compaction() {
        let dir = TempDir::new("lsm-gen").unwrap();
        let db = open(&dir);
        assert_eq!(db.snapshot_generation(), 0);
        db.put(b"a", b"1").unwrap();
        db.flush().unwrap();
        // One publication for the seal, one for the sealed→table swap.
        assert!(db.snapshot_generation() >= 2);
        let before = db.snapshot_generation();
        db.flush().unwrap(); // nothing to do: no publication
        assert_eq!(db.snapshot_generation(), before);
    }

    #[test]
    fn stripe_count_persists_in_manifest_across_reopen() {
        let dir = TempDir::new("lsm-manifest").unwrap();
        {
            let db =
                LsmDatabase::open(dir.path(), LsmConfig { stripes: 2, ..LsmConfig::default() })
                    .unwrap();
            assert_eq!(db.stripe_count(), 2);
            for i in 0..50u32 {
                db.put(format!("m{i:03}").as_bytes(), b"v").unwrap();
            }
        }
        // Reopening with a different configured stripe count must keep
        // the on-disk routing: the manifest wins.
        let db = LsmDatabase::open(dir.path(), LsmConfig { stripes: 8, ..LsmConfig::default() })
            .unwrap();
        assert_eq!(db.stripe_count(), 2);
        assert_eq!(db.len().unwrap(), 50);
        assert_eq!(db.get(b"m042").unwrap().as_deref(), Some(b"v".as_slice()));
    }

    #[test]
    fn erase_true_negative_appends_no_wal_record() {
        let dir = TempDir::new("lsm-erase-tn").unwrap();
        let db = open(&dir);
        db.put(b"present", b"v").unwrap();
        db.flush().unwrap();
        let wal_sizes = |dir: &Path| -> Vec<u64> {
            (0..tiny_config().stripes)
                .map(|s| {
                    std::fs::metadata(wal_path(dir, s)).map(|m| m.len()).unwrap_or(0)
                })
                .collect()
        };
        let before = wal_sizes(dir.path());
        // True negative: key nowhere in the database. No tombstone may
        // be logged in any stripe.
        assert!(!db.erase(b"never-existed").unwrap());
        assert_eq!(wal_sizes(dir.path()), before, "true-negative erase wrote a WAL record");
        // True positive: exactly one stripe's WAL grows.
        assert!(db.erase(b"present").unwrap());
        let after = wal_sizes(dir.path());
        let grown = before.iter().zip(&after).filter(|(b, a)| a > b).count();
        assert_eq!(grown, 1, "true-positive erase must log in exactly one stripe");
        assert_eq!(db.get(b"present").unwrap(), None);
        // A tombstoned key is a true negative for the next erase.
        assert!(!db.erase(b"present").unwrap());
    }

    #[test]
    fn parallel_writers_hit_disjoint_stripes() {
        // With enough distinct keys every stripe sees traffic, and all
        // data survives a concurrent multi-threaded load + final flush.
        let dir = TempDir::new("lsm-par").unwrap();
        let db = std::sync::Arc::new(
            LsmDatabase::open(
                dir.path(),
                LsmConfig { memtable_bytes: 2048, stripes: 8, ..LsmConfig::default() },
            )
            .unwrap(),
        );
        let hit: std::collections::BTreeSet<usize> =
            (0..256u32).map(|i| db.inner.stripe_index(format!("t0-k{i:04}").as_bytes())).collect();
        assert_eq!(hit.len(), 8, "keys must disperse over all stripes");
        let writers: Vec<_> = (0..4)
            .map(|t: u32| {
                let db = std::sync::Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..300u32 {
                        db.put(format!("t{t}-k{i:04}").as_bytes(), &[b'v'; 32]).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.len().unwrap(), 1200);
    }

    #[test]
    fn background_executor_flushes_off_the_write_path() {
        let dir = TempDir::new("lsm-bg").unwrap();
        let db = LsmDatabase::open(
            dir.path(),
            LsmConfig { memtable_bytes: 512, stripes: 2, ..LsmConfig::default() },
        )
        .unwrap();
        let scheduled = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&scheduled);
        assert!(db.set_background_executor(Arc::new(move |task| {
            count.fetch_add(1, Ordering::Relaxed);
            std::thread::spawn(task);
        })));
        // Second install is rejected.
        assert!(!db.set_background_executor(thread_executor()));
        for i in 0..200u32 {
            db.put(format!("bg-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
        }
        assert!(scheduled.load(Ordering::Relaxed) > 0, "seals must schedule maintenance");
        // Background flush materializes tables without any flush() call.
        let deadline = Instant::now() + Duration::from_secs(5);
        while db.table_count() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(db.table_count() > 0, "background maintenance never flushed");
        // Data stays readable throughout, and a foreground flush joins
        // cleanly with in-flight maintenance.
        db.flush().unwrap();
        assert_eq!(db.sealed_bytes(), 0);
        assert_eq!(db.len().unwrap(), 200);
        assert_eq!(db.get(b"bg-0042").unwrap().as_deref(), Some([b'x'; 64].as_slice()));
    }

    #[test]
    fn backpressure_drains_inline_when_over_budget() {
        let dir = TempDir::new("lsm-budget").unwrap();
        let db = LsmDatabase::open(
            dir.path(),
            LsmConfig {
                memtable_bytes: 256,
                stripes: 1,
                max_sealed_bytes: 512,
                ..LsmConfig::default()
            },
        )
        .unwrap();
        // Executor that never runs its tasks: a stalled background pool.
        assert!(db.set_background_executor(Arc::new(|_task| {})));
        for i in 0..200u32 {
            db.put(format!("bp-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
        }
        // The budget forced inline drains despite the stalled pool:
        // sealed bytes stay bounded and tables exist.
        assert!(
            db.sealed_bytes() <= 512 + 256 + 128,
            "sealed bytes {} escaped the backpressure budget",
            db.sealed_bytes()
        );
        assert!(db.table_count() > 0);
        db.flush().unwrap();
        assert_eq!(db.len().unwrap(), 200);
    }

    #[test]
    fn background_error_surfaces_on_next_flush() {
        let dir = TempDir::new("lsm-bgerr").unwrap();
        let db = LsmDatabase::open(
            dir.path(),
            LsmConfig { memtable_bytes: 128, stripes: 1, ..LsmConfig::default() },
        )
        .unwrap();
        // Run maintenance synchronously on the caller so the fault is
        // deterministic.
        assert!(db.set_background_executor(Arc::new(|task| task())));
        db.set_fail_point(LsmFailPoint::BeforeTablePersist);
        for i in 0..10u32 {
            db.put(format!("e{i:02}").as_bytes(), &[b'x'; 32]).unwrap();
        }
        db.set_fail_point(LsmFailPoint::None);
        let err = db.take_background_error();
        assert!(matches!(err, Some(YokanError::Io(_))), "expected parked error, got {err:?}");
        // The failed segments were retained and the next flush drains
        // them.
        db.flush().unwrap();
        assert_eq!(db.len().unwrap(), 10);
        assert_eq!(db.sealed_bytes(), 0);
    }

    #[test]
    fn concurrent_reads_during_flush_and_compaction_churn() {
        let dir = TempDir::new("lsm-churn").unwrap();
        let db = std::sync::Arc::new(open(&dir));
        db.put(b"stable", b"value").unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = std::sync::Arc::clone(&db);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // Never torn, never missing, regardless of which
                        // layer currently holds the key.
                        assert_eq!(
                            db.get(b"stable").unwrap().as_deref(),
                            Some(b"value".as_slice())
                        );
                    }
                })
            })
            .collect();
        // Enough flushes to trigger several compactions (max_tables = 3).
        for i in 0..40u32 {
            db.put(format!("churn-{i:03}").as_bytes(), &[b'x'; 64]).unwrap();
            db.flush().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(db.get(b"stable").unwrap().as_deref(), Some(b"value".as_slice()));
        assert_eq!(db.len().unwrap(), 41);
    }

    #[test]
    fn concurrent_reads_during_background_churn() {
        // Same invariant as above, but with maintenance running on
        // background threads instead of inline.
        let dir = TempDir::new("lsm-bg-churn").unwrap();
        let db = std::sync::Arc::new(
            LsmDatabase::open(
                dir.path(),
                LsmConfig { memtable_bytes: 512, max_tables: 2, stripes: 4, ..Default::default() },
            )
            .unwrap(),
        );
        assert!(db.set_background_executor(thread_executor()));
        db.put(b"stable", b"value").unwrap();
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let db = std::sync::Arc::clone(&db);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        assert_eq!(
                            db.get(b"stable").unwrap().as_deref(),
                            Some(b"value".as_slice())
                        );
                    }
                })
            })
            .collect();
        for i in 0..400u32 {
            db.put(format!("churn-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
        }
        db.flush().unwrap();
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(db.get(b"stable").unwrap().as_deref(), Some(b"value".as_slice()));
        assert_eq!(db.len().unwrap(), 401);
    }
}
