//! The `"lsm"` backend: a from-scratch log-structured merge tree.
//!
//! Layout inside the provider's data directory:
//!
//! * `wal.log` — write-ahead log of operations since the last flush,
//!   each record CRC-protected; replayed on open, truncated on flush;
//! * `sst-<seq>.tbl` — immutable sorted tables, newest sequence wins;
//!   tombstones mark deletions until compaction drops them.
//!
//! The memtable flushes once it exceeds `memtable_bytes`; when more than
//! `max_tables` tables accumulate, a full compaction merges them into
//! one. This gives Yokan real on-disk state — the thing REMI migrates,
//! checkpoints copy, and crash-restart tests recover.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::ops::Bound;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use mochi_util::crc32;

use super::{Database, YokanError};

/// Tuning knobs of the LSM backend.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Flush the memtable to an SSTable beyond this many bytes.
    pub memtable_bytes: usize,
    /// Compact when the number of SSTables exceeds this.
    pub max_tables: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self { memtable_bytes: 4 << 20, max_tables: 4 }
    }
}

const OP_PUT: u8 = 1;
const OP_ERASE: u8 = 2;
/// Value length marking a tombstone in an SSTable.
const TOMBSTONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct ValueLoc {
    offset: u64,
    len: u32, // TOMBSTONE for deletions
}

struct SsTable {
    path: PathBuf,
    seq: u64,
    file: File,
    index: BTreeMap<Vec<u8>, ValueLoc>,
}

impl SsTable {
    /// Writes `entries` (sorted; `None` value = tombstone) as table `seq`.
    fn write(
        dir: &Path,
        seq: u64,
        entries: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    ) -> Result<SsTable, YokanError> {
        let path = dir.join(format!("sst-{seq:010}.tbl"));
        let mut buffer = Vec::new();
        let mut index = BTreeMap::new();
        for (key, value) in entries {
            buffer.extend_from_slice(&(key.len() as u32).to_le_bytes());
            match value {
                Some(v) => buffer.extend_from_slice(&(v.len() as u32).to_le_bytes()),
                None => buffer.extend_from_slice(&TOMBSTONE.to_le_bytes()),
            }
            buffer.extend_from_slice(key);
            let offset = buffer.len() as u64;
            if let Some(v) = value {
                buffer.extend_from_slice(v);
                index.insert(key.clone(), ValueLoc { offset, len: v.len() as u32 });
            } else {
                index.insert(key.clone(), ValueLoc { offset, len: TOMBSTONE });
            }
        }
        let crc = crc32(&buffer);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("create {}: {e}", path.display())))?;
        file.write_all(&buffer)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data().ok();
        Ok(SsTable { path, seq, file, index })
    }

    /// Opens and validates an existing table.
    fn open(path: PathBuf) -> Result<SsTable, YokanError> {
        let seq: u64 = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.strip_prefix("sst-"))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| YokanError::Corrupt(format!("bad table name {}", path.display())))?;
        let mut file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| YokanError::Io(format!("open {}: {e}", path.display())))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        if data.len() < 4 {
            return Err(YokanError::Corrupt(format!("{} too short", path.display())));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(YokanError::Corrupt(format!("{} checksum mismatch", path.display())));
        }
        let mut index = BTreeMap::new();
        let mut pos = 0usize;
        while pos < body.len() {
            if pos + 8 > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated record", path.display())));
            }
            let klen = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
            let vlen_raw = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().unwrap());
            pos += 8;
            if pos + klen > body.len() {
                return Err(YokanError::Corrupt(format!("{} truncated key", path.display())));
            }
            let key = body[pos..pos + klen].to_vec();
            pos += klen;
            let offset = pos as u64;
            if vlen_raw != TOMBSTONE {
                let vlen = vlen_raw as usize;
                if pos + vlen > body.len() {
                    return Err(YokanError::Corrupt(format!(
                        "{} truncated value",
                        path.display()
                    )));
                }
                pos += vlen;
            }
            index.insert(key, ValueLoc { offset, len: vlen_raw });
        }
        Ok(SsTable { path, seq, file, index })
    }

    fn get(&self, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        match self.index.get(key) {
            None => Ok(None),
            Some(loc) if loc.len == TOMBSTONE => Ok(Some(None)),
            Some(loc) => {
                let mut value = vec![0u8; loc.len as usize];
                self.file
                    .read_exact_at(&mut value, loc.offset)
                    .map_err(|e| YokanError::Io(format!("read {}: {e}", self.path.display())))?;
                Ok(Some(Some(value)))
            }
        }
    }
}

struct Inner {
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    memtable_bytes: usize,
    wal: File,
    wal_path: PathBuf,
    /// Oldest → newest.
    tables: Vec<SsTable>,
    next_seq: u64,
}

/// The LSM database.
pub struct LsmDatabase {
    dir: PathBuf,
    config: LsmConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for LsmDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmDatabase")
            .field("dir", &self.dir)
            .field("tables", &self.table_count())
            .finish_non_exhaustive()
    }
}

fn wal_record(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(13 + key.len() + value.len());
    record.push(op);
    record.extend_from_slice(&(key.len() as u32).to_le_bytes());
    record.extend_from_slice(&(value.len() as u32).to_le_bytes());
    record.extend_from_slice(key);
    record.extend_from_slice(value);
    let crc = crc32(&record);
    record.extend_from_slice(&crc.to_le_bytes());
    record
}

/// Replays a WAL buffer, stopping cleanly at the first partial or corrupt
/// record (a crash mid-append).
fn replay_wal(data: &[u8], memtable: &mut BTreeMap<Vec<u8>, Option<Vec<u8>>>) -> usize {
    let mut pos = 0usize;
    let mut bytes = 0usize;
    while pos + 13 <= data.len() {
        let op = data[pos];
        let klen = u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(data[pos + 5..pos + 9].try_into().unwrap()) as usize;
        let total = 9 + klen + vlen + 4;
        if pos + total > data.len() {
            break;
        }
        let record = &data[pos..pos + total];
        let (body, crc_bytes) = record.split_at(total - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            break;
        }
        let key = record[9..9 + klen].to_vec();
        let value = record[9 + klen..9 + klen + vlen].to_vec();
        match op {
            OP_PUT => {
                bytes += klen + vlen;
                memtable.insert(key, Some(value));
            }
            OP_ERASE => {
                bytes += klen;
                memtable.insert(key, None);
            }
            _ => break,
        }
        pos += total;
    }
    bytes
}

impl LsmDatabase {
    /// Opens (or creates) a database in `dir`, replaying any WAL and
    /// loading existing tables.
    pub fn open(dir: impl Into<PathBuf>, config: LsmConfig) -> Result<Self, YokanError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut table_paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "tbl")
                    && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("sst-"))
            })
            .collect();
        table_paths.sort();
        let mut tables = Vec::with_capacity(table_paths.len());
        for path in table_paths {
            tables.push(SsTable::open(path)?);
        }
        let next_seq = tables.last().map(|t| t.seq + 1).unwrap_or(0);

        let wal_path = dir.join("wal.log");
        let mut memtable = BTreeMap::new();
        let mut memtable_bytes = 0;
        if wal_path.exists() {
            let data = std::fs::read(&wal_path)?;
            memtable_bytes = replay_wal(&data, &mut memtable);
        }
        let wal = OpenOptions::new().create(true).append(true).open(&wal_path)?;
        Ok(Self {
            dir,
            config,
            inner: Mutex::new(Inner { memtable, memtable_bytes, wal, wal_path, tables, next_seq }),
        })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of SSTables on disk (diagnostics / compaction tests).
    pub fn table_count(&self) -> usize {
        self.inner.lock().tables.len()
    }

    fn append_wal(inner: &mut Inner, op: u8, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let record = wal_record(op, key, value);
        inner.wal.write_all(&record)?;
        Ok(())
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<(), YokanError> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let table = SsTable::write(&self.dir, seq, &inner.memtable)?;
        inner.tables.push(table);
        inner.memtable.clear();
        inner.memtable_bytes = 0;
        // Truncate the WAL: everything is in the new table.
        inner.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&inner.wal_path)?;
        if inner.tables.len() > self.config.max_tables {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<(), YokanError> {
        // Merge all tables oldest→newest; newest value wins; drop
        // tombstones (nothing older remains to resurrect).
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for table in &inner.tables {
            for key in table.index.keys() {
                let value = table.get(key)?.expect("key from index");
                merged.insert(key.clone(), value);
            }
        }
        merged.retain(|_, v| v.is_some());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let new_table = SsTable::write(&self.dir, seq, &merged)?;
        let old: Vec<PathBuf> = inner.tables.iter().map(|t| t.path.clone()).collect();
        inner.tables = vec![new_table];
        for path in old {
            std::fs::remove_file(&path).ok();
        }
        Ok(())
    }

    /// Looks a key up across memtable and tables; `Some(None)` = deleted.
    fn lookup(&self, inner: &Inner, key: &[u8]) -> Result<Option<Option<Vec<u8>>>, YokanError> {
        if let Some(value) = inner.memtable.get(key) {
            return Ok(Some(value.clone()));
        }
        for table in inner.tables.iter().rev() {
            if let Some(found) = table.get(key)? {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }

    /// Merged view of live keys (prefix-filtered), for list/len/dump.
    fn merged_keys(
        &self,
        inner: &Inner,
        prefix: &[u8],
    ) -> Result<BTreeMap<Vec<u8>, bool>, YokanError> {
        let mut alive: BTreeMap<Vec<u8>, bool> = BTreeMap::new();
        let range = (Bound::Included(prefix.to_vec()), Bound::Unbounded);
        for table in &inner.tables {
            for (key, loc) in table.index.range::<Vec<u8>, _>(range.clone()) {
                if !key.starts_with(prefix) {
                    break;
                }
                alive.insert(key.clone(), loc.len != TOMBSTONE);
            }
        }
        for (key, value) in inner.memtable.range::<Vec<u8>, _>(range) {
            if !key.starts_with(prefix) {
                break;
            }
            alive.insert(key.clone(), value.is_some());
        }
        Ok(alive)
    }
}

impl Database for LsmDatabase {
    fn backend_name(&self) -> &'static str {
        "lsm"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        let mut inner = self.inner.lock();
        Self::append_wal(&mut inner, OP_PUT, key, value)?;
        inner.memtable.insert(key.to_vec(), Some(value.to_vec()));
        inner.memtable_bytes += key.len() + value.len();
        if inner.memtable_bytes >= self.config.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        let inner = self.inner.lock();
        Ok(self.lookup(&inner, key)?.flatten())
    }

    fn erase(&self, key: &[u8]) -> Result<bool, YokanError> {
        let mut inner = self.inner.lock();
        let existed = self.lookup(&inner, key)?.flatten().is_some();
        if existed {
            Self::append_wal(&mut inner, OP_ERASE, key, &[])?;
            inner.memtable.insert(key.to_vec(), None);
            inner.memtable_bytes += key.len();
        }
        Ok(existed)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        // K-way merge over the memtable and every table index, newest
        // source winning on ties, stopping after `max` live keys — O(max)
        // per page instead of O(range).
        let inner = self.inner.lock();
        let lower: Bound<Vec<u8>> = match start_after {
            Some(s) if s >= prefix => Bound::Excluded(s.to_vec()),
            _ => Bound::Included(prefix.to_vec()),
        };
        // Sources ordered oldest → newest; the memtable is last (newest).
        type KeyCursor<'a> = Box<dyn Iterator<Item = (&'a Vec<u8>, bool)> + 'a>;
        let mut cursors: Vec<KeyCursor<'_>> = Vec::new();
        for table in &inner.tables {
            cursors.push(Box::new(
                table
                    .index
                    .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                    .map(|(k, loc)| (k, loc.len != TOMBSTONE)),
            ));
        }
        cursors.push(Box::new(
            inner
                .memtable
                .range::<Vec<u8>, _>((lower.clone(), Bound::Unbounded))
                .map(|(k, v)| (k, v.is_some())),
        ));
        let mut heads: Vec<Option<(&Vec<u8>, bool)>> =
            cursors.iter_mut().map(|c| c.next()).collect();
        let mut out: Vec<Vec<u8>> = Vec::new();
        while out.len() < max {
            // Smallest key among heads; among ties, the newest source
            // (highest index) is authoritative.
            let mut smallest: Option<&Vec<u8>> = None;
            for head in heads.iter().flatten() {
                if smallest.is_none_or(|s| head.0 < s) {
                    smallest = Some(head.0);
                }
            }
            let Some(key) = smallest else { break };
            if !key.starts_with(prefix) {
                // All further keys in every cursor are >= key; any source
                // still inside the prefix would have produced a smaller
                // head, so once the global minimum leaves the prefix we
                // are done.
                break;
            }
            let key = key.clone();
            let mut alive = false;
            for i in 0..heads.len() {
                if heads[i].is_some_and(|(k, _)| *k == key) {
                    alive = heads[i].expect("checked").1; // later sources overwrite
                    heads[i] = cursors[i].next();
                }
            }
            if alive {
                out.push(key);
            }
        }
        Ok(out)
    }

    fn len(&self) -> Result<u64, YokanError> {
        let inner = self.inner.lock();
        let alive = self.merged_keys(&inner, b"")?;
        Ok(alive.values().filter(|a| **a).count() as u64)
    }

    fn flush(&self) -> Result<(), YokanError> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    fn clear(&self) -> Result<(), YokanError> {
        let mut inner = self.inner.lock();
        let paths: Vec<PathBuf> = inner.tables.iter().map(|t| t.path.clone()).collect();
        inner.tables.clear();
        inner.memtable.clear();
        inner.memtable_bytes = 0;
        inner.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&inner.wal_path)?;
        for path in paths {
            std::fs::remove_file(&path).ok();
        }
        Ok(())
    }

    fn dump(&self) -> Result<super::KvPairs, YokanError> {
        let inner = self.inner.lock();
        let alive = self.merged_keys(&inner, b"")?;
        let mut out = Vec::new();
        for (key, is_alive) in alive {
            if is_alive {
                let value = self
                    .lookup(&inner, &key)?
                    .flatten()
                    .ok_or_else(|| YokanError::Corrupt("key vanished during dump".into()))?;
                out.push((key, value));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use mochi_util::TempDir;

    fn tiny_config() -> LsmConfig {
        // Small thresholds so tests exercise flush + compaction.
        LsmConfig { memtable_bytes: 256, max_tables: 3 }
    }

    fn open(dir: &TempDir) -> LsmDatabase {
        LsmDatabase::open(dir.path(), tiny_config()).unwrap()
    }

    #[test]
    fn conformance_suite() {
        for case in 0..5 {
            let dir = TempDir::new("lsm-conf").unwrap();
            let db = open(&dir);
            match case {
                0 => conformance::basic_ops(&db),
                1 => conformance::listing(&db),
                2 => {
                    let dir2 = TempDir::new("lsm-conf2").unwrap();
                    conformance::dump_and_load(&db, &open(&dir2));
                }
                3 => conformance::clear(&db),
                _ => conformance::empty_and_binary_keys(&db),
            }
        }
    }

    #[test]
    fn survives_reopen_with_wal_only() {
        let dir = TempDir::new("lsm-wal").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            db.put(b"persist", b"me").unwrap();
            db.erase(b"persist2").ok();
            // No flush: data only in WAL + memtable.
            assert_eq!(db.table_count(), 0);
        }
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.get(b"persist").unwrap().as_deref(), Some(b"me".as_slice()));
    }

    #[test]
    fn survives_reopen_with_tables_and_wal() {
        let dir = TempDir::new("lsm-mixed").unwrap();
        {
            let db = open(&dir);
            for i in 0..100u32 {
                db.put(format!("key-{i:04}").as_bytes(), &[b'x'; 64]).unwrap();
            }
            db.erase(b"key-0007").unwrap();
            assert!(db.table_count() >= 1, "expected flushes with tiny memtable");
        }
        let db = open(&dir);
        assert_eq!(db.len().unwrap(), 99);
        assert_eq!(db.get(b"key-0007").unwrap(), None);
        assert_eq!(db.get(b"key-0042").unwrap().as_deref(), Some(vec![b'x'; 64].as_slice()));
    }

    #[test]
    fn compaction_bounds_table_count_and_preserves_data() {
        let dir = TempDir::new("lsm-compact").unwrap();
        let db = open(&dir);
        for round in 0..10u32 {
            for i in 0..20u32 {
                db.put(format!("k{i:03}").as_bytes(), format!("r{round}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        assert!(db.table_count() <= tiny_config().max_tables + 1);
        // Latest round wins.
        assert_eq!(db.get(b"k010").unwrap().as_deref(), Some(b"r9".as_slice()));
        assert_eq!(db.len().unwrap(), 20);
    }

    #[test]
    fn tombstones_survive_flush_but_die_in_compaction() {
        let dir = TempDir::new("lsm-tomb").unwrap();
        let db = open(&dir);
        db.put(b"gone", b"soon").unwrap();
        db.flush().unwrap();
        db.erase(b"gone").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"gone").unwrap(), None);
        // Force compaction by flushing past max_tables.
        for i in 0..5u32 {
            db.put(format!("fill{i}").as_bytes(), b"x").unwrap();
            db.flush().unwrap();
        }
        assert_eq!(db.get(b"gone").unwrap(), None);
        assert_eq!(db.len().unwrap(), 5);
    }

    #[test]
    fn truncated_wal_tail_is_tolerated() {
        let dir = TempDir::new("lsm-torn").unwrap();
        {
            let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
            db.put(b"ok", b"1").unwrap();
            db.put(b"torn", b"2").unwrap();
        }
        // Simulate a torn write: chop bytes off the WAL tail.
        let wal = dir.path().join("wal.log");
        let data = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &data[..data.len() - 3]).unwrap();
        let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
        assert_eq!(db.get(b"ok").unwrap().as_deref(), Some(b"1".as_slice()));
        assert_eq!(db.get(b"torn").unwrap(), None);
        // And the database remains writable.
        db.put(b"torn", b"retry").unwrap();
        assert_eq!(db.get(b"torn").unwrap().as_deref(), Some(b"retry".as_slice()));
    }

    #[test]
    fn corrupt_sstable_detected() {
        let dir = TempDir::new("lsm-corrupt").unwrap();
        {
            let db = open(&dir);
            db.put(b"k", b"v").unwrap();
            db.flush().unwrap();
        }
        let table = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "tbl"))
            .unwrap();
        let mut data = std::fs::read(&table).unwrap();
        data[2] ^= 0xff;
        std::fs::write(&table, data).unwrap();
        let err = LsmDatabase::open(dir.path(), tiny_config()).unwrap_err();
        assert!(matches!(err, YokanError::Corrupt(_)));
    }

    #[test]
    fn overwrites_across_flush_boundaries() {
        let dir = TempDir::new("lsm-overwrite").unwrap();
        let db = open(&dir);
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        db.flush().unwrap();
        assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v2".as_slice()));
        assert_eq!(db.len().unwrap(), 1);
    }
}
