//! The `"map"` backend: an ordered in-memory map.

use std::collections::BTreeMap;
use std::ops::Bound;

use parking_lot::RwLock;

use super::{Database, YokanError};

/// In-memory ordered map. Fast, volatile: crashes lose everything, which
/// is exactly the backend the checkpoint/restore experiments contrast
/// with the LSM backend.
#[derive(Debug, Default)]
pub struct MemoryDatabase {
    map: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl MemoryDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Database for MemoryDatabase {
    fn backend_name(&self) -> &'static str {
        "map"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.map.write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        Ok(self.map.read().get(key).cloned())
    }

    fn erase(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.map.write().remove(key).is_some())
    }

    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.map.read().contains_key(key))
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let map = self.map.read();
        let lower = match start_after {
            Some(s) if s >= prefix => Bound::Excluded(s.to_vec()),
            _ => Bound::Included(prefix.to_vec()),
        };
        let keys = map
            .range((lower, Bound::Unbounded))
            .map(|(k, _)| k)
            .take_while(|k| k.starts_with(prefix))
            .take(max)
            .cloned()
            .collect();
        Ok(keys)
    }

    fn len(&self) -> Result<u64, YokanError> {
        Ok(self.map.read().len() as u64)
    }

    fn flush(&self) -> Result<(), YokanError> {
        Ok(())
    }

    fn clear(&self) -> Result<(), YokanError> {
        self.map.write().clear();
        Ok(())
    }

    fn dump(&self) -> Result<super::KvPairs, YokanError> {
        Ok(self.map.read().iter().map(|(k, v)| (k.clone(), v.clone())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn basic_ops() {
        conformance::basic_ops(&MemoryDatabase::new());
    }

    #[test]
    fn listing() {
        conformance::listing(&MemoryDatabase::new());
    }

    #[test]
    fn dump_and_load() {
        conformance::dump_and_load(&MemoryDatabase::new(), &MemoryDatabase::new());
    }

    #[test]
    fn clear() {
        conformance::clear(&MemoryDatabase::new());
    }

    #[test]
    fn empty_and_binary_keys() {
        conformance::empty_and_binary_keys(&MemoryDatabase::new());
    }

    #[test]
    fn list_keys_start_after_before_prefix() {
        let db = MemoryDatabase::new();
        db.put(b"b1", b"").unwrap();
        db.put(b"b2", b"").unwrap();
        // start_after lexically before the prefix: must not skip matches.
        let keys = db.list_keys(b"b", Some(b"a"), 10).unwrap();
        assert_eq!(keys.len(), 2);
    }
}
