//! The `"map"` backend: an ordered in-memory map, hash-striped over N
//! independently locked shards so concurrent execution streams stop
//! serializing on one global `RwLock`.
//!
//! Single-key operations (`put`/`get`/`erase`/`exists`) touch exactly one
//! shard. Whole-table operations (`list_keys`/`len`/`clear`/`dump`)
//! acquire every shard in ascending stripe index — which is ascending
//! lock rank (`rank::YOKAN_SHARD_BASE + i`) — and hold all guards
//! simultaneously, so they observe an atomic cut of the table and cannot
//! deadlock against each other or against single-shard writers. The bulk
//! operations (`put_multi`/`get_multi`) group keys by shard and take each
//! shard lock once per group, in ascending order.

use std::collections::BTreeMap;
use std::ops::Bound;

use mochi_util::fnv1a64;
use mochi_util::ordered_lock::{rank, OrderedReadGuard, OrderedRwLock, OrderedWriteGuard};

use super::{Database, YokanError};

/// Upper bound on the shard count; the lock hierarchy reserves ranks
/// `YOKAN_SHARD_BASE .. YOKAN_SHARD_BASE + YOKAN_SHARD_MAX` for stripes.
pub const MAX_SHARDS: usize = rank::YOKAN_SHARD_MAX as usize;

/// Default shard count: enough stripes that 8 execution streams collide
/// rarely (birthday bound ≈ 1 − e^(−8²/2·16) ≈ 0.86 per instant, but each
/// collision only costs one shard, not the whole table), small enough
/// that whole-table scans stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

type Shard = BTreeMap<Vec<u8>, Vec<u8>>;

/// In-memory ordered map. Fast, volatile: crashes lose everything, which
/// is exactly the backend the checkpoint/restore experiments contrast
/// with the LSM backend.
#[derive(Debug)]
pub struct MemoryDatabase {
    shards: Box<[OrderedRwLock<Shard>]>,
}

impl Default for MemoryDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryDatabase {
    /// Creates an empty database with [`DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty database with `shards` stripes (clamped to
    /// `1..=MAX_SHARDS`). `with_shards(1)` reproduces the historical
    /// single-`RwLock` layout and serves as the contention baseline in
    /// the `a04_contention` benchmark.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        Self {
            shards: (0..shards)
                .map(|i| {
                    OrderedRwLock::new(rank::YOKAN_SHARD_BASE + i as u32, "yokan.shard", Shard::new())
                })
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &[u8]) -> &OrderedRwLock<Shard> {
        &self.shards[(fnv1a64(key) % self.shards.len() as u64) as usize]
    }

    fn shard_index(&self, key: &[u8]) -> usize {
        (fnv1a64(key) % self.shards.len() as u64) as usize
    }

    /// Read-locks every shard in ascending rank order (an atomic cut).
    fn read_all(&self) -> Vec<OrderedReadGuard<'_, Shard>> {
        self.shards.iter().map(|shard| shard.read()).collect()
    }

    /// Write-locks every shard in ascending rank order.
    fn write_all(&self) -> Vec<OrderedWriteGuard<'_, Shard>> {
        self.shards.iter().map(|shard| shard.write()).collect()
    }
}

impl Database for MemoryDatabase {
    fn backend_name(&self) -> &'static str {
        "map"
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError> {
        self.shard_of(key).write().insert(key.to_vec(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError> {
        Ok(self.shard_of(key).read().get(key).cloned())
    }

    fn erase(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.shard_of(key).write().remove(key).is_some())
    }

    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.shard_of(key).read().contains_key(key))
    }

    fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), YokanError> {
        // Group by shard so each stripe lock is taken once, in ascending
        // rank order, instead of once per key.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (key, _)) in pairs.iter().enumerate() {
            groups[self.shard_index(key)].push(i);
        }
        for (shard, group) in self.shards.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let mut map = shard.write();
            for &i in group {
                let (key, value) = pairs[i];
                map.insert(key.to_vec(), value.to_vec());
            }
        }
        Ok(())
    }

    fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            groups[self.shard_index(key)].push(i);
        }
        let mut values: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        for (shard, group) in self.shards.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let map = shard.read();
            for &i in group {
                values[i] = map.get(keys[i]).cloned();
            }
        }
        Ok(values)
    }

    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError> {
        let guards = self.read_all();
        let lower = match start_after {
            Some(s) if s >= prefix => Bound::Excluded(s.to_vec()),
            _ => Bound::Included(prefix.to_vec()),
        };
        // Each shard contributes at most `max` candidates; the merged,
        // sorted list is then truncated to the global `max`.
        let mut keys: Vec<Vec<u8>> = Vec::new();
        for shard in &guards {
            keys.extend(
                shard
                    .range((lower.clone(), Bound::Unbounded))
                    .map(|(k, _)| k)
                    .take_while(|k| k.starts_with(prefix))
                    .take(max)
                    .cloned(),
            );
        }
        keys.sort_unstable();
        keys.truncate(max);
        Ok(keys)
    }

    fn len(&self) -> Result<u64, YokanError> {
        let guards = self.read_all();
        Ok(guards.iter().map(|shard| shard.len() as u64).sum())
    }

    fn flush(&self) -> Result<(), YokanError> {
        Ok(())
    }

    fn clear(&self) -> Result<(), YokanError> {
        let mut guards = self.write_all();
        for shard in &mut guards {
            shard.clear();
        }
        Ok(())
    }

    fn dump(&self) -> Result<super::KvPairs, YokanError> {
        let guards = self.read_all();
        let mut pairs: super::KvPairs = Vec::new();
        for shard in &guards {
            pairs.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;

    #[test]
    fn basic_ops() {
        conformance::basic_ops(&MemoryDatabase::new());
    }

    #[test]
    fn listing() {
        conformance::listing(&MemoryDatabase::new());
    }

    #[test]
    fn dump_and_load() {
        conformance::dump_and_load(&MemoryDatabase::new(), &MemoryDatabase::new());
    }

    #[test]
    fn clear() {
        conformance::clear(&MemoryDatabase::new());
    }

    #[test]
    fn empty_and_binary_keys() {
        conformance::empty_and_binary_keys(&MemoryDatabase::new());
    }

    #[test]
    fn multi_ops() {
        conformance::multi_ops(&MemoryDatabase::new());
    }

    #[test]
    fn list_keys_start_after_before_prefix() {
        let db = MemoryDatabase::new();
        db.put(b"b1", b"").unwrap();
        db.put(b"b2", b"").unwrap();
        // start_after lexically before the prefix: must not skip matches.
        let keys = db.list_keys(b"b", Some(b"a"), 10).unwrap();
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn conformance_holds_for_every_shard_count() {
        for shards in [1, 2, 3, 16, MAX_SHARDS] {
            let db = MemoryDatabase::with_shards(shards);
            assert_eq!(db.shard_count(), shards);
            conformance::basic_ops(&db);
            db.clear().unwrap();
            conformance::listing(&db);
            db.clear().unwrap();
            conformance::multi_ops(&db);
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(MemoryDatabase::with_shards(0).shard_count(), 1);
        assert_eq!(MemoryDatabase::with_shards(10_000).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn keys_disperse_over_shards() {
        let db = MemoryDatabase::new();
        let hit: std::collections::BTreeSet<usize> =
            (0..256u32).map(|i| db.shard_index(format!("key-{i}").as_bytes())).collect();
        // 256 keys over 16 shards: every shard should see traffic.
        assert_eq!(hit.len(), db.shard_count());
    }

    #[test]
    fn whole_table_ops_see_atomic_cut_across_shards() {
        // len() locks all shards at once; with an insert-only writer
        // running concurrently the observed count must never shrink.
        use std::sync::Arc;
        let db = Arc::new(MemoryDatabase::new());
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..500u32 {
                    db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
                }
            })
        };
        let mut last = 0;
        for _ in 0..200 {
            let now = db.len().unwrap();
            assert!(now >= last, "len went backwards: {last} -> {now}");
            last = now;
        }
        writer.join().unwrap();
        assert_eq!(db.len().unwrap(), 500);
    }
}
