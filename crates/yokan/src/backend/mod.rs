//! Database backends behind Yokan's abstract interface.
//!
//! "A resource will generally follow an abstract interface so that the
//! functionality provided by the component can be implemented in various
//! ways" (paper §3.1). The [`Database`] trait is that interface; backends:
//!
//! * [`memory::MemoryDatabase`] (`"map"`) — ordered in-memory map,
//! * [`lsm::LsmDatabase`] (`"lsm"`) — WAL + memtable + SSTables with
//!   compaction; its on-disk files are what REMI migrates and what makes
//!   restarts after a crash meaningful.

pub mod lsm;
pub mod memory;

use std::fmt;
use std::path::Path;

/// A full key–value dump, sorted by key.
pub type KvPairs = Vec<(Vec<u8>, Vec<u8>)>;

use serde::{Deserialize, Serialize};

/// Errors raised by database backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YokanError {
    /// I/O failure (message includes the path).
    Io(String),
    /// On-disk data failed validation.
    Corrupt(String),
    /// Configuration or usage error.
    Config(String),
}

impl fmt::Display for YokanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YokanError::Io(m) => write!(f, "io: {m}"),
            YokanError::Corrupt(m) => write!(f, "corrupt database: {m}"),
            YokanError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for YokanError {}

impl From<std::io::Error> for YokanError {
    fn from(e: std::io::Error) -> Self {
        YokanError::Io(e.to_string())
    }
}

/// The abstract database interface served by a Yokan provider.
pub trait Database: Send + Sync {
    /// Backend name (`"map"`, `"lsm"`).
    fn backend_name(&self) -> &'static str;

    /// Stores `value` under `key`, replacing any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), YokanError>;

    /// Fetches the value under `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, YokanError>;

    /// Removes `key`; returns whether it existed.
    fn erase(&self, key: &[u8]) -> Result<bool, YokanError>;

    /// Stores several pairs. Backends override this to amortize lock
    /// acquisition (one stripe lock per shard group, one WAL append per
    /// batch); atomicity remains per-key.
    fn put_multi(&self, pairs: &[(&[u8], &[u8])]) -> Result<(), YokanError> {
        for (key, value) in pairs {
            self.put(key, value)?;
        }
        Ok(())
    }

    /// Fetches several keys; `result[i]` is the value of `keys[i]`.
    fn get_multi(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, YokanError> {
        keys.iter().map(|key| self.get(key)).collect()
    }

    /// Whether `key` exists.
    fn exists(&self, key: &[u8]) -> Result<bool, YokanError> {
        Ok(self.get(key)?.is_some())
    }

    /// Lists up to `max` keys with prefix `prefix`, strictly after
    /// `start_after` (exclusive), in lexicographic order.
    fn list_keys(
        &self,
        prefix: &[u8],
        start_after: Option<&[u8]>,
        max: usize,
    ) -> Result<Vec<Vec<u8>>, YokanError>;

    /// Number of live keys.
    fn len(&self) -> Result<u64, YokanError>;

    /// Whether the database holds no keys.
    fn is_empty(&self) -> Result<bool, YokanError> {
        Ok(self.len()? == 0)
    }

    /// Persists in-memory state to disk (no-op for pure-memory backends).
    fn flush(&self) -> Result<(), YokanError>;

    /// Removes every key.
    fn clear(&self) -> Result<(), YokanError>;

    /// Full contents, sorted by key (checkpoint support; fine at the
    /// scales this simulator targets).
    fn dump(&self) -> Result<KvPairs, YokanError>;

    /// Bulk-load contents (used by restore); existing keys are replaced.
    fn load(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
        for (key, value) in pairs {
            self.put(key, value)?;
        }
        Ok(())
    }

    /// Bulk-load contents, *keeping* existing keys; returns how many
    /// pairs were stored. This is the rebalance drain's import primitive:
    /// a drained slice is a snapshot taken before the move, so any key
    /// the destination already holds was written *during* the move and
    /// is newer than the snapshot — overwriting it would roll the key
    /// back. Per-key check-then-put, not transactional: the routed
    /// client serializes imports against its own writes (the only writer
    /// during a move) with a write barrier.
    fn load_absent(&self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<u64, YokanError> {
        let mut stored = 0u64;
        for (key, value) in pairs {
            if self.get(key)?.is_none() {
                self.put(key, value)?;
                stored += 1;
            }
        }
        Ok(stored)
    }
}

/// Backend selection and tuning, from the provider's `config` JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// `"map"` or `"lsm"`.
    #[serde(default = "default_backend")]
    pub backend: String,
    /// LSM: flush the memtable after this many bytes.
    #[serde(default = "default_memtable_bytes")]
    pub memtable_bytes: usize,
    /// LSM: compact when more than this many SSTables exist.
    #[serde(default = "default_max_tables")]
    pub max_tables: usize,
    /// Memory backend: number of hash-striped shards (clamped to
    /// `1..=memory::MAX_SHARDS`; `1` reproduces the single-lock layout).
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// LSM: number of independent stripes (clamped to
    /// `1..=lsm::MAX_STRIPES`; `1` reproduces the single-writer layout).
    /// The count is fixed at directory creation; reopens follow the
    /// on-disk manifest.
    #[serde(default = "default_lsm_stripes")]
    pub lsm_stripes: usize,
    /// LSM: per-stripe sealed-bytes budget; past it, sealing writers
    /// drain inline instead of queueing behind the background pool.
    #[serde(default = "default_max_sealed_bytes")]
    pub max_sealed_bytes: usize,
    /// LSM: name of the Argobots pool for background flush/compaction.
    /// `None` (the default) keeps flush/compaction inline on the writer.
    /// Interpreted by the Bedrock module (`crate::bedrock`), which
    /// creates the pool and a dedicated xstream on demand.
    #[serde(default)]
    pub background_pool: Option<String>,
}

fn default_backend() -> String {
    "map".into()
}

fn default_shards() -> usize {
    memory::DEFAULT_SHARDS
}

fn default_memtable_bytes() -> usize {
    4 << 20
}

fn default_max_tables() -> usize {
    4
}

fn default_lsm_stripes() -> usize {
    lsm::DEFAULT_STRIPES
}

fn default_max_sealed_bytes() -> usize {
    32 << 20
}

impl Default for BackendConfig {
    fn default() -> Self {
        Self {
            backend: default_backend(),
            memtable_bytes: default_memtable_bytes(),
            max_tables: default_max_tables(),
            shards: default_shards(),
            lsm_stripes: default_lsm_stripes(),
            max_sealed_bytes: default_max_sealed_bytes(),
            background_pool: None,
        }
    }
}

/// Instantiates a backend in `dir` (the provider's data directory; only
/// used by file-backed backends). Flush/compaction stays inline on the
/// writer; see [`create_backend_with`] to move it to a background
/// executor.
pub fn create_backend(
    config: &BackendConfig,
    dir: &Path,
) -> Result<Box<dyn Database>, YokanError> {
    create_backend_with(config, dir, None)
}

/// [`create_backend`], plus an optional background executor for the LSM
/// backend's flush/compaction work (ignored by memory backends).
pub fn create_backend_with(
    config: &BackendConfig,
    dir: &Path,
    executor: Option<lsm::BackgroundExecutor>,
) -> Result<Box<dyn Database>, YokanError> {
    match config.backend.as_str() {
        "map" => Ok(Box::new(memory::MemoryDatabase::with_shards(config.shards))),
        "lsm" => {
            let db = lsm::LsmDatabase::open(
                dir,
                lsm::LsmConfig {
                    memtable_bytes: config.memtable_bytes,
                    max_tables: config.max_tables,
                    stripes: config.lsm_stripes,
                    max_sealed_bytes: config.max_sealed_bytes,
                },
            )?;
            if let Some(executor) = executor {
                db.set_background_executor(executor);
            }
            Ok(Box::new(db))
        }
        other => Err(YokanError::Config(format!("unknown backend '{other}'"))),
    }
}

/// Writes a checkpoint dump: `[u64 count]` then, per pair,
/// `[u32 klen][u32 vlen][key][value]`, CRC-32-tailed.
pub fn write_dump(path: &Path, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<(), YokanError> {
    let mut buffer = Vec::new();
    buffer.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (key, value) in pairs {
        buffer.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buffer.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buffer.extend_from_slice(key);
        buffer.extend_from_slice(value);
    }
    let crc = mochi_util::crc32(&buffer);
    buffer.extend_from_slice(&crc.to_le_bytes());
    std::fs::write(path, buffer).map_err(|e| YokanError::Io(format!("{}: {e}", path.display())))
}

/// Reads a checkpoint dump written by [`write_dump`].
pub fn read_dump(path: &Path) -> Result<KvPairs, YokanError> {
    let data =
        std::fs::read(path).map_err(|e| YokanError::Io(format!("{}: {e}", path.display())))?;
    if data.len() < 12 {
        return Err(YokanError::Corrupt("dump too short".into()));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if mochi_util::crc32(body) != stored {
        return Err(YokanError::Corrupt("dump checksum mismatch".into()));
    }
    let count = u64::from_le_bytes(body[..8].try_into().expect("8 bytes")) as usize;
    let mut pairs = Vec::with_capacity(count);
    let mut pos = 8usize;
    for _ in 0..count {
        if pos + 8 > body.len() {
            return Err(YokanError::Corrupt("dump truncated".into()));
        }
        let klen = u32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(body[pos + 4..pos + 8].try_into().unwrap()) as usize;
        pos += 8;
        if pos + klen + vlen > body.len() {
            return Err(YokanError::Corrupt("dump truncated".into()));
        }
        let key = body[pos..pos + klen].to_vec();
        pos += klen;
        let value = body[pos..pos + vlen].to_vec();
        pos += vlen;
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Shared conformance tests run against every backend.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub fn basic_ops(db: &dyn Database) {
        assert_eq!(db.len().unwrap(), 0);
        assert!(db.is_empty().unwrap());
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(b"1".as_slice()));
        assert_eq!(db.get(b"missing").unwrap(), None);
        assert!(db.exists(b"beta").unwrap());
        assert_eq!(db.len().unwrap(), 2);
        // Overwrite.
        db.put(b"alpha", b"one").unwrap();
        assert_eq!(db.get(b"alpha").unwrap().as_deref(), Some(b"one".as_slice()));
        assert_eq!(db.len().unwrap(), 2);
        // Erase.
        assert!(db.erase(b"alpha").unwrap());
        assert!(!db.erase(b"alpha").unwrap());
        assert_eq!(db.get(b"alpha").unwrap(), None);
        assert_eq!(db.len().unwrap(), 1);
    }

    pub fn listing(db: &dyn Database) {
        for key in ["a/1", "a/2", "a/3", "b/1", "b/2"] {
            db.put(key.as_bytes(), b"v").unwrap();
        }
        let keys = db.list_keys(b"a/", None, 10).unwrap();
        assert_eq!(keys, vec![b"a/1".to_vec(), b"a/2".to_vec(), b"a/3".to_vec()]);
        // Pagination.
        let page1 = db.list_keys(b"", None, 2).unwrap();
        assert_eq!(page1.len(), 2);
        let page2 = db.list_keys(b"", Some(&page1[1]), 2).unwrap();
        assert_eq!(page2, vec![b"a/3".to_vec(), b"b/1".to_vec()]);
        // Erased keys don't list.
        db.erase(b"a/2").unwrap();
        let keys = db.list_keys(b"a/", None, 10).unwrap();
        assert_eq!(keys, vec![b"a/1".to_vec(), b"a/3".to_vec()]);
    }

    pub fn dump_and_load(db: &dyn Database, other: &dyn Database) {
        for i in 0..50u32 {
            db.put(format!("k{i:03}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        db.erase(b"k007").unwrap();
        let dump = db.dump().unwrap();
        assert_eq!(dump.len(), 49);
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0), "dump must be sorted");
        other.load(&dump).unwrap();
        assert_eq!(other.len().unwrap(), 49);
        assert_eq!(other.get(b"k010").unwrap(), db.get(b"k010").unwrap());
        assert_eq!(other.get(b"k007").unwrap(), None);
    }

    pub fn clear(db: &dyn Database) {
        db.put(b"x", b"1").unwrap();
        db.clear().unwrap();
        assert_eq!(db.len().unwrap(), 0);
        assert_eq!(db.get(b"x").unwrap(), None);
        db.put(b"y", b"2").unwrap(); // usable after clear
        assert_eq!(db.len().unwrap(), 1);
    }

    pub fn multi_ops(db: &dyn Database) {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..40u32)
            .map(|i| (format!("m{i:03}").into_bytes(), i.to_le_bytes().to_vec()))
            .collect();
        let borrowed: Vec<(&[u8], &[u8])> =
            pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        db.put_multi(&borrowed).unwrap();
        assert_eq!(db.len().unwrap(), 40);
        // get_multi preserves request order, including misses.
        let query: Vec<&[u8]> = vec![b"m005", b"absent", b"m039", b"m000"];
        let values = db.get_multi(&query).unwrap();
        assert_eq!(values[0].as_deref(), Some(5u32.to_le_bytes().as_slice()));
        assert_eq!(values[1], None);
        assert_eq!(values[2].as_deref(), Some(39u32.to_le_bytes().as_slice()));
        assert_eq!(values[3].as_deref(), Some(0u32.to_le_bytes().as_slice()));
        // put_multi overwrites like put.
        db.put_multi(&[(b"m005".as_slice(), b"new".as_slice())]).unwrap();
        assert_eq!(db.get(b"m005").unwrap().as_deref(), Some(b"new".as_slice()));
        assert_eq!(db.len().unwrap(), 40);
        // Empty batches are fine.
        db.put_multi(&[]).unwrap();
        assert_eq!(db.get_multi(&[]).unwrap(), Vec::<Option<Vec<u8>>>::new());
    }

    pub fn empty_and_binary_keys(db: &dyn Database) {
        db.put(b"", b"empty-key").unwrap();
        assert_eq!(db.get(b"").unwrap().as_deref(), Some(b"empty-key".as_slice()));
        let binary_key = [0u8, 255, 7, 0, 128];
        db.put(&binary_key, b"").unwrap();
        assert_eq!(db.get(&binary_key).unwrap().as_deref(), Some(b"".as_slice()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_dispatches() {
        let dir = mochi_util::TempDir::new("yokan-factory").unwrap();
        let map = create_backend(&BackendConfig::default(), dir.path()).unwrap();
        assert_eq!(map.backend_name(), "map");
        let lsm_config = BackendConfig { backend: "lsm".into(), ..Default::default() };
        let lsm = create_backend(&lsm_config, dir.path()).unwrap();
        assert_eq!(lsm.backend_name(), "lsm");
        let bad = BackendConfig { backend: "rocksdb".into(), ..Default::default() };
        assert!(create_backend(&bad, dir.path()).is_err());
    }

    #[test]
    fn config_defaults_from_json() {
        let config: BackendConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(config.backend, "map");
        assert!(config.memtable_bytes > 0);
    }
}
