//! Versioned record codec for replicated keyspaces.
//!
//! The routed replication layer (DESIGN.md §18) stamps every write with a
//! client-side HLC-style version and stores it *inside the value*, so the
//! backend stays a dumb byte store: a stored record is
//!
//! ```text
//! [ version: u64 BE ][ flag: u8 ][ raw value bytes ... ]
//! ```
//!
//! where `flag` is `0` for a live value and `1` for a tombstone (an erase
//! that must win freshest-wins merges instead of resurrecting the key).
//! Big-endian versions make records of the same key memcmp-comparable by
//! recency, which the server-side put-if-newer compare relies on.
//!
//! Values written through the *unversioned* surfaces have no prefix; they
//! decode as version 0 (older than any stamped write) so a keyspace can be
//! upgraded to `replication_factor > 1` in place.

/// Flag byte of a live record.
pub const FLAG_VALUE: u8 = 0;
/// Flag byte of a tombstone.
pub const FLAG_TOMBSTONE: u8 = 1;

/// Bytes of prefix a versioned record adds in front of the raw value.
pub const RECORD_OVERHEAD: usize = 9;

/// One decoded record: the version stamp, whether it is a tombstone, and
/// the raw value bytes (empty for tombstones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<'a> {
    /// HLC-style version stamped by the writing client.
    pub version: u64,
    /// Whether this record marks a deletion.
    pub tombstone: bool,
    /// The caller-visible value (empty when `tombstone`).
    pub value: &'a [u8],
}

/// Encodes `value` (or a tombstone when `value` is `None`) under
/// `version`.
pub fn encode_record(version: u64, value: Option<&[u8]>) -> Vec<u8> {
    let raw = value.unwrap_or(&[]);
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + raw.len());
    out.extend_from_slice(&version.to_be_bytes());
    out.push(if value.is_some() { FLAG_VALUE } else { FLAG_TOMBSTONE });
    out.extend_from_slice(raw);
    out
}

/// Decodes a stored record. Bytes that do not carry a valid prefix (too
/// short, unknown flag) are treated as a *legacy unversioned value* at
/// version 0, never an error — see the module docs.
pub fn decode_record(stored: &[u8]) -> Record<'_> {
    if stored.len() >= RECORD_OVERHEAD {
        let mut v = [0u8; 8];
        v.copy_from_slice(&stored[..8]);
        let flag = stored[8];
        if flag == FLAG_VALUE || flag == FLAG_TOMBSTONE {
            return Record {
                version: u64::from_be_bytes(v),
                tombstone: flag == FLAG_TOMBSTONE,
                value: if flag == FLAG_TOMBSTONE { &[] } else { &stored[RECORD_OVERHEAD..] },
            };
        }
    }
    Record { version: 0, tombstone: false, value: stored }
}

/// The version of a stored record (0 for legacy unversioned bytes).
pub fn stored_version(stored: &[u8]) -> u64 {
    decode_record(stored).version
}

/// Whether encoded record `candidate` should replace `incumbent` under
/// freshest-wins: a strictly newer version wins; an equal version falls
/// back to a bytewise compare of the encodings — an arbitrary but
/// *deterministic* tie-break, so replicas that saw two same-version
/// writes in different orders still converge.
pub fn record_is_newer(candidate: &[u8], incumbent: &[u8]) -> bool {
    let c = decode_record(candidate);
    let i = decode_record(incumbent);
    if c.version != i.version {
        return c.version > i.version;
    }
    candidate > incumbent
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_values_and_tombstones() {
        let live = encode_record(42, Some(b"hello"));
        assert_eq!(
            decode_record(&live),
            Record { version: 42, tombstone: false, value: b"hello" }
        );
        let dead = encode_record(43, None);
        assert_eq!(dead.len(), RECORD_OVERHEAD);
        assert_eq!(decode_record(&dead), Record { version: 43, tombstone: true, value: b"" });
    }

    #[test]
    fn legacy_bytes_decode_at_version_zero() {
        for legacy in [&b""[..], b"short", b"exactly-9-no-flag"] {
            let record = decode_record(legacy);
            // An 8-byte-or-longer blob whose 9th byte happens to be 0/1
            // *would* parse as versioned — that is the documented upgrade
            // contract, not a bug — so only assert the short cases here.
            if legacy.len() < RECORD_OVERHEAD {
                assert_eq!(record, Record { version: 0, tombstone: false, value: legacy });
            }
        }
        let unknown_flag = [0, 0, 0, 0, 0, 0, 0, 1, 0xFF, b'x'];
        assert_eq!(
            decode_record(&unknown_flag),
            Record { version: 0, tombstone: false, value: &unknown_flag }
        );
    }

    #[test]
    fn versions_compare_bytewise() {
        // BE prefix ⇒ lexicographic record order == numeric version order.
        let a = encode_record(1, Some(b"z"));
        let b = encode_record(2, Some(b"a"));
        assert!(a[..8] < b[..8]);
        assert!(stored_version(&a) < stored_version(&b));
    }

    #[test]
    fn record_is_newer_orders_by_version_then_bytes() {
        let v1 = encode_record(1, Some(b"a"));
        let v2 = encode_record(2, Some(b"a"));
        assert!(record_is_newer(&v2, &v1));
        assert!(!record_is_newer(&v1, &v2));
        // Same version, different value: one direction wins, never both.
        let t1 = encode_record(5, Some(b"x"));
        let t2 = encode_record(5, Some(b"y"));
        assert_ne!(record_is_newer(&t1, &t2), record_is_newer(&t2, &t1));
        // Identical records never replace each other.
        assert!(!record_is_newer(&t1, &t1));
        // A versioned write beats a legacy unversioned value.
        assert!(record_is_newer(&v1, b"legacy-bytes"));
    }

    #[test]
    fn empty_value_is_not_a_tombstone() {
        let live_empty = encode_record(7, Some(b""));
        let record = decode_record(&live_empty);
        assert!(!record.tombstone);
        assert_eq!(record.value, b"");
    }
}
