//! Cross-ES consistency: hammer a single key with put/get/erase from
//! four threads (standing in for four execution streams) and check that
//! every read observes either nothing or a value that some prior write
//! actually produced. Exercises both backends through the same driver,
//! since the striped memory shards and the snapshot-read LSM have very
//! different lock structures but must present the same linearizable
//! single-key behaviour.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{LsmConfig, LsmDatabase};
use mochi_yokan::backend::memory::MemoryDatabase;
use mochi_yokan::backend::Database;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 500;
const KEY: &[u8] = b"contended-key";

/// Every writer tags its values `w-<thread>-<op>`; the legal set of
/// observable values is exactly the values written so far plus absence.
fn value_for(thread: usize, op: usize) -> Vec<u8> {
    format!("w-{thread}-{op}").into_bytes()
}

fn hammer(db: &dyn Database) {
    // All values any thread will ever write, precomputed so readers can
    // validate without synchronizing with writers.
    let legal: HashSet<Vec<u8>> = (0..THREADS)
        .flat_map(|t| (0..=OPS_PER_THREAD).map(move |i| value_for(t, i)))
        .collect();

    let barrier = Barrier::new(THREADS);
    let reads_checked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let barrier = &barrier;
            let legal = &legal;
            let reads_checked = &reads_checked;
            scope.spawn(move || {
                barrier.wait();
                for i in 0..OPS_PER_THREAD {
                    // Interleave the three op kinds differently per
                    // thread so puts, gets and erases genuinely overlap.
                    match (i + t) % 3 {
                        0 => db.put(KEY, &value_for(t, i)).unwrap(),
                        1 => {
                            if let Some(value) = db.get(KEY).unwrap() {
                                assert!(
                                    legal.contains(&value),
                                    "read a value no writer produced: {:?}",
                                    String::from_utf8_lossy(&value)
                                );
                                reads_checked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            db.erase(KEY).unwrap();
                        }
                    }
                }
                // Every thread signs off with a put, so the quiescent
                // state is deterministically present.
                db.put(KEY, &value_for(t, OPS_PER_THREAD)).unwrap();
            });
        }
    });

    // Quiescent state: every thread's last op was a put, so the key is
    // present, holds a legal value, and get/exists agree.
    let after = db.get(KEY).unwrap().expect("key present after final puts");
    assert!(legal.contains(&after), "quiescent value was never written");
    assert!(db.exists(KEY).unwrap());
    // With puts a third of the time, reads hit present values in
    // practice on every scheduler; zero would mean no overlap at all.
    assert!(reads_checked.load(Ordering::Relaxed) > 0, "no read ever observed a value");
}

#[test]
fn memory_backend_single_key_consistency_across_threads() {
    let db = MemoryDatabase::new();
    hammer(&db);
}

#[test]
fn memory_backend_single_shard_consistency_across_threads() {
    // The degenerate 1-shard layout shares the code path with the
    // historical global-lock design; keep it covered too.
    let db = MemoryDatabase::with_shards(1);
    hammer(&db);
}

#[test]
fn lsm_backend_single_key_consistency_across_threads() {
    let dir = TempDir::new("lsm-consistency").unwrap();
    // Tiny memtable budget so the hammer loop forces seals, flushes and
    // compactions while readers are in flight.
    let config = LsmConfig { memtable_bytes: 1024, max_tables: 3, ..LsmConfig::default() };
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    hammer(&db);
    // The surviving state must also be durable across reopen.
    let expected = db.get(KEY).unwrap();
    db.flush().unwrap();
    drop(db);
    let reopened = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(reopened.get(KEY).unwrap(), expected);
}

#[test]
fn multi_ops_and_single_ops_interleave_consistently() {
    // put_multi groups keys by shard and erase takes single shards;
    // batched and single-key paths must agree on the final state.
    let db = MemoryDatabase::new();
    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        let db = &db;
        let barrier = &barrier;
        scope.spawn(move || {
            barrier.wait();
            for round in 0..200u32 {
                let v = round.to_be_bytes();
                let pairs: Vec<(&[u8], &[u8])> =
                    vec![(b"m-a", &v[..]), (b"m-b", &v[..]), (b"m-c", &v[..])];
                db.put_multi(&pairs).unwrap();
            }
        });
        scope.spawn(move || {
            barrier.wait();
            for _ in 0..200 {
                let values = db.get_multi(&[b"m-a", b"m-b", b"m-c"]).unwrap();
                for value in values.into_iter().flatten() {
                    assert_eq!(value.len(), 4, "value from a torn batched write");
                }
            }
        });
    });
    let values = db.get_multi(&[b"m-a", b"m-b", b"m-c"]).unwrap();
    let last = 199u32.to_be_bytes().to_vec();
    for value in values {
        assert_eq!(value.unwrap(), last);
    }
}
