//! Client-side write coalescing (`CoalescingHandle`), over the fabric
//! against a real provider. The contract under test is the one in the
//! handle's doc comment: within-key ordering is strict, every non-put
//! operation is a read-your-writes barrier, batches ship on count, age
//! (background ticker) and Drop, and only idempotent RPCs ever ride the
//! runtime's transport retries.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric, LinkScript};
use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{LsmConfig, LsmDatabase};
use mochi_yokan::backend::Database;
use mochi_yokan::provider::rpc;
use mochi_yokan::{CoalescerConfig, DatabaseHandle, YokanProvider};

fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
    MargoRuntime::init_default(fabric, Address::tcp(host, 1)).unwrap()
}

/// Provider over the striped LSM — the coalescer's put_multi batches run
/// the same grouped-by-stripe path the tentpole optimizes.
fn lsm_provider(margo: &MargoRuntime, dir: &TempDir) -> Arc<YokanProvider> {
    let db = LsmDatabase::open(dir.path(), LsmConfig::default()).unwrap();
    YokanProvider::register(margo, 1, None, Arc::new(db)).unwrap()
}

/// Config that never ships on its own: every flush in the test is
/// attributable to the mechanism being exercised.
fn manual_config() -> CoalescerConfig {
    CoalescerConfig {
        max_pending: usize::MAX,
        max_bytes: usize::MAX,
        max_delay: Duration::from_secs(3600),
    }
}

#[test]
fn puts_buffer_locally_until_a_barrier() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-barrier").unwrap();
    let provider = lsm_provider(&server, &dir);
    let db = DatabaseHandle::new(&client, server.address(), 1).coalescing(manual_config());

    for i in 0..10u32 {
        db.put(format!("buf-{i}").as_bytes(), b"v").unwrap();
    }
    // Nothing shipped yet: the server has seen no write.
    assert_eq!(provider.database().len().unwrap(), 0);
    // Any read is a barrier: it observes every buffered put.
    assert_eq!(db.get(b"buf-7").unwrap().as_deref(), Some(b"v".as_slice()));
    assert_eq!(provider.database().len().unwrap(), 10);
    assert_eq!(db.len().unwrap(), 10);
    drop(db);
    server.finalize();
    client.finalize();
}

#[test]
fn within_key_ordering_is_strict() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-order").unwrap();
    let provider = lsm_provider(&server, &dir);
    let db = DatabaseHandle::new(&client, server.address(), 1).coalescing(manual_config());

    // Rewrites inside one batch collapse to the last value before the
    // batch ever leaves the client.
    db.put(b"k", b"v1").unwrap();
    db.put(b"k", b"v2").unwrap();
    db.put(b"other", b"x").unwrap();
    db.put(b"k", b"v3").unwrap();
    assert_eq!(db.get(b"k").unwrap().as_deref(), Some(b"v3".as_slice()));
    assert_eq!(provider.database().get(b"k").unwrap().as_deref(), Some(b"v3".as_slice()));

    // Across a barrier, later puts stay later: erase between two puts of
    // the same key must not see the second one.
    db.put(b"seq", b"first").unwrap();
    assert!(db.erase(b"seq").unwrap());
    db.put(b"seq", b"second").unwrap();
    assert_eq!(db.get(b"seq").unwrap().as_deref(), Some(b"second".as_slice()));
    drop(db);
    server.finalize();
    client.finalize();
}

#[test]
fn batch_ships_when_the_count_threshold_trips() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-count").unwrap();
    let provider = lsm_provider(&server, &dir);
    let config = CoalescerConfig { max_pending: 4, ..manual_config() };
    let db = DatabaseHandle::new(&client, server.address(), 1).coalescing(config);

    for i in 0..3u32 {
        db.put(format!("n-{i}").as_bytes(), b"v").unwrap();
    }
    assert_eq!(provider.database().len().unwrap(), 0, "below threshold: still buffered");
    db.put(b"n-3", b"v").unwrap();
    assert_eq!(provider.database().len().unwrap(), 4, "4th distinct key ships the batch");
    drop(db);
    server.finalize();
    client.finalize();
}

#[test]
fn ticker_ships_an_aged_batch_without_any_caller() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-age").unwrap();
    let provider = lsm_provider(&server, &dir);
    let config = CoalescerConfig { max_delay: Duration::from_millis(20), ..manual_config() };
    let db = DatabaseHandle::new(&client, server.address(), 1).coalescing(config);

    db.put(b"aged", b"out").unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while provider.database().len().unwrap() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        provider.database().get(b"aged").unwrap().as_deref(),
        Some(b"out".as_slice()),
        "ticker never shipped the aged batch"
    );
    drop(db);
    server.finalize();
    client.finalize();
}

#[test]
fn drop_flushes_the_remaining_batch() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-drop").unwrap();
    let provider = lsm_provider(&server, &dir);
    {
        let db = DatabaseHandle::new(&client, server.address(), 1).coalescing(manual_config());
        for i in 0..25u32 {
            db.put(format!("drop-{i:02}").as_bytes(), b"survives").unwrap();
        }
        assert_eq!(provider.database().len().unwrap(), 0);
        // Handle goes out of scope with the batch still pending.
    }
    assert_eq!(provider.database().len().unwrap(), 25);
    assert_eq!(
        provider.database().get(b"drop-13").unwrap().as_deref(),
        Some(b"survives".as_slice())
    );
    server.finalize();
    client.finalize();
}

#[test]
fn shipped_batches_survive_transport_retries_exactly_once() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-retry").unwrap();
    let provider = lsm_provider(&server, &dir);
    let db = DatabaseHandle::new(&client, server.address(), 1)
        .with_timeout(Duration::from_millis(200))
        .coalescing(manual_config());

    // The coalescer's only mutation RPC must be retry-safe; the erase it
    // delegates must not be.
    assert!(client.is_idempotent(rpc::PUT_MULTI), "coalesced batches must ride retries");
    assert!(!client.is_idempotent(rpc::ERASE), "erase must stay exactly-once");

    db.put(b"retried", b"once").unwrap();
    // First send on the client→server link vanishes; the runtime
    // re-sends the idempotent put_multi and the batch lands once.
    fabric.faults().push_script(Some("client"), Some("server"), LinkScript::FailFirst(1));
    db.sync().unwrap();
    assert_eq!(provider.database().len().unwrap(), 1);
    assert_eq!(
        provider.database().get(b"retried").unwrap().as_deref(),
        Some(b"once".as_slice())
    );

    // Same fault against erase: no retry happens, the caller gets the
    // failure, and the key is untouched — at-most-once, surfaced.
    fabric.faults().push_script(Some("client"), Some("server"), LinkScript::FailFirst(1));
    assert!(db.erase(b"retried").is_err(), "dropped erase must surface, not silently retry");
    assert_eq!(
        provider.database().get(b"retried").unwrap().as_deref(),
        Some(b"once".as_slice()),
        "erase executed despite the dropped request"
    );
    drop(db);
    server.finalize();
    client.finalize();
}

#[test]
fn concurrent_putters_share_one_handle_without_loss() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let dir = TempDir::new("coalesce-mt").unwrap();
    let provider = lsm_provider(&server, &dir);
    let config = CoalescerConfig { max_pending: 16, ..manual_config() };
    let db =
        Arc::new(DatabaseHandle::new(&client, server.address(), 1).coalescing(config));

    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for i in 0..100u32 {
                    db.put(format!("mt-{t}-{i:03}").as_bytes(), b"v").unwrap();
                }
            });
        }
    });
    db.sync().unwrap();
    assert_eq!(provider.database().len().unwrap(), 400);
    drop(db);
    server.finalize();
    client.finalize();
}
