//! Integration tests for Yokan: provider/client over the fabric, the
//! virtual replicated database (Observation 10), and the Bedrock module
//! (start/stop/migrate/checkpoint/restore).

use std::sync::Arc;
use std::time::Duration;

use mochi_bedrock::{BedrockServer, Client, ModuleCatalog, ProcessConfig};
use mochi_margo::MargoRuntime;
use mochi_mercury::{Address, Fabric};
use mochi_util::TempDir;
use mochi_yokan::backend::memory::MemoryDatabase;
use mochi_yokan::{DatabaseHandle, VirtualDatabaseProvider, YokanProvider};

fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
    MargoRuntime::init_default(fabric, Address::tcp(host, 1)).unwrap()
}

fn memory_provider(margo: &MargoRuntime, id: u16) -> Arc<YokanProvider> {
    YokanProvider::register(margo, id, None, Arc::new(MemoryDatabase::new())).unwrap()
}

#[test]
fn put_get_roundtrip_over_fabric() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let _provider = memory_provider(&server, 1);
    let db = DatabaseHandle::new(&client, server.address(), 1);

    db.put(b"key", b"value").unwrap();
    assert_eq!(db.get(b"key").unwrap().as_deref(), Some(b"value".as_slice()));
    assert_eq!(db.get(b"missing").unwrap(), None);
    assert!(db.exists(b"key").unwrap());
    assert_eq!(db.len().unwrap(), 1);
    assert!(db.erase(b"key").unwrap());
    assert!(!db.erase(b"key").unwrap());
    assert!(db.is_empty().unwrap());
    server.finalize();
    client.finalize();
}

#[test]
fn large_values_roundtrip() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let _provider = memory_provider(&server, 1);
    let db = DatabaseHandle::new(&client, server.address(), 1);
    let value: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    db.put(b"big", &value).unwrap();
    assert_eq!(db.get(b"big").unwrap().unwrap(), value);
    server.finalize();
    client.finalize();
}

#[test]
fn multi_ops_and_listing() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let _provider = memory_provider(&server, 1);
    let db = DatabaseHandle::new(&client, server.address(), 1);

    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..10u32)
        .map(|i| (format!("k/{i}").into_bytes(), format!("value-{i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    db.put_multi(&refs).unwrap();
    assert_eq!(db.len().unwrap(), 10);

    let keys: Vec<&[u8]> = vec![b"k/3", b"k/999", b"k/7"];
    let values = db.get_multi(&keys).unwrap();
    assert_eq!(values[0].as_deref(), Some(b"value-3".as_slice()));
    assert_eq!(values[1], None);
    assert_eq!(values[2].as_deref(), Some(b"value-7".as_slice()));

    let listed = db.list_keys(b"k/", None, 4).unwrap();
    assert_eq!(listed.len(), 4);
    let next = db.list_keys(b"k/", Some(&listed[3]), 100).unwrap();
    assert_eq!(listed.len() + next.len(), 10);
    server.finalize();
    client.finalize();
}

#[test]
fn two_providers_one_process_are_isolated() {
    let fabric = Fabric::new();
    let server = boot(&fabric, "server");
    let client = boot(&fabric, "client");
    let _p1 = memory_provider(&server, 1);
    let _p2 = memory_provider(&server, 2);
    let db1 = DatabaseHandle::new(&client, server.address(), 1);
    let db2 = DatabaseHandle::new(&client, server.address(), 2);
    db1.put(b"k", b"one").unwrap();
    db2.put(b"k", b"two").unwrap();
    assert_eq!(db1.get(b"k").unwrap().as_deref(), Some(b"one".as_slice()));
    assert_eq!(db2.get(b"k").unwrap().as_deref(), Some(b"two".as_slice()));
    server.finalize();
    client.finalize();
}

#[test]
fn virtual_database_replicates_transparently() {
    let fabric = Fabric::new();
    let rep1 = boot(&fabric, "rep1");
    let rep2 = boot(&fabric, "rep2");
    let front = boot(&fabric, "front");
    let client = boot(&fabric, "client");
    let p1 = memory_provider(&rep1, 1);
    let p2 = memory_provider(&rep2, 1);
    let _virtual_db = VirtualDatabaseProvider::register(
        &front,
        9,
        None,
        vec![(rep1.address(), 1), (rep2.address(), 1)],
        Duration::from_millis(500),
    )
    .unwrap();

    // The client talks to the virtual provider with a plain handle — it
    // cannot tell it is not a real database (Observation 10).
    let db = DatabaseHandle::new(&client, front.address(), 9);
    db.put(b"replicated", b"yes").unwrap();
    assert_eq!(db.get(b"replicated").unwrap().as_deref(), Some(b"yes".as_slice()));

    // Both replicas really hold the data.
    assert_eq!(p1.database().get(b"replicated").unwrap().as_deref(), Some(b"yes".as_slice()));
    assert_eq!(p2.database().get(b"replicated").unwrap().as_deref(), Some(b"yes".as_slice()));

    // Kill replica 1: reads fail over to replica 2.
    rep1.finalize();
    assert_eq!(db.get(b"replicated").unwrap().as_deref(), Some(b"yes".as_slice()));
    // Writes (write-all) now fail — data safety over availability.
    assert!(db.put(b"new", b"x").is_err());

    rep2.finalize();
    front.finalize();
    client.finalize();
}

#[test]
fn virtual_database_multi_and_erase_paths() {
    let fabric = Fabric::new();
    let rep1 = boot(&fabric, "rep1");
    let rep2 = boot(&fabric, "rep2");
    let front = boot(&fabric, "front");
    let client = boot(&fabric, "client");
    let _p1 = memory_provider(&rep1, 1);
    let _p2 = memory_provider(&rep2, 1);
    let _virtual_db = VirtualDatabaseProvider::register(
        &front,
        9,
        None,
        vec![(rep1.address(), 1), (rep2.address(), 1)],
        Duration::from_millis(500),
    )
    .unwrap();
    let db = DatabaseHandle::new(&client, front.address(), 9);
    db.put_multi(&[(b"a".as_slice(), b"1".as_slice()), (b"b", b"2")]).unwrap();
    let got = db.get_multi(&[b"a", b"b", b"c"]).unwrap();
    assert_eq!(got[0].as_deref(), Some(b"1".as_slice()));
    assert_eq!(got[2], None);
    assert!(db.erase(b"a").unwrap());
    assert_eq!(db.len().unwrap(), 1);
    assert_eq!(db.list_keys(b"", None, 10).unwrap(), vec![b"b".to_vec()]);
    rep1.finalize();
    rep2.finalize();
    front.finalize();
    client.finalize();
}

fn yokan_catalog() -> ModuleCatalog {
    let mut catalog = ModuleCatalog::new();
    catalog.install(mochi_yokan::bedrock::LIBRARY, mochi_yokan::bedrock::bedrock_module());
    catalog.install(
        mochi_yokan::bedrock::VIRTUAL_LIBRARY,
        mochi_yokan::bedrock::virtual_bedrock_module(),
    );
    catalog
}

fn yokan_process_config(backend: &str) -> ProcessConfig {
    ProcessConfig::from_json(&format!(
        r#"{{ "libraries": {{ "yokan": "libyokan.so" }},
             "providers": [ {{ "name": "db", "type": "yokan", "provider_id": 1,
                               "config": {{ "backend": "{backend}" }} }} ] }}"#
    ))
    .unwrap()
}

#[test]
fn bedrock_managed_yokan_lifecycle() {
    let fabric = Fabric::new();
    let dir = TempDir::new("yokan-bedrock").unwrap();
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &yokan_process_config("lsm"),
        yokan_catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let client_margo = boot(&fabric, "client");
    let db = DatabaseHandle::new(&client_margo, server.address(), 1);
    db.put(b"managed", b"yes").unwrap();
    assert_eq!(db.get(b"managed").unwrap().as_deref(), Some(b"yes".as_slice()));

    // get_config exposes component state.
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);
    let config = handle.get_config().unwrap();
    assert_eq!(config["providers"][0]["state"]["backend"], "lsm");

    handle.stop_provider("db").unwrap();
    assert!(db.get(b"managed").is_err());
    server.shutdown();
    client_margo.finalize();
}

#[test]
fn bedrock_migration_carries_lsm_data() {
    let fabric = Fabric::new();
    let dir = TempDir::new("yokan-migrate").unwrap();
    let n1 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &yokan_process_config("lsm"),
        yokan_catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let mut empty = ProcessConfig::default();
    empty.libraries.insert("yokan".into(), "libyokan.so".into());
    let n2 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n2", 1),
        &empty,
        yokan_catalog(),
        dir.path().join("n2"),
    )
    .unwrap();

    let client_margo = boot(&fabric, "client");
    let db = DatabaseHandle::new(&client_margo, n1.address(), 1);
    for i in 0..200u32 {
        db.put(format!("key-{i:04}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }

    let handle = Client::new(&client_margo).make_service_handle(n1.address(), 0);
    let reply = handle
        .migrate_provider("db", &n2.address(), mochi_remi::Strategy::chunked_default())
        .unwrap();
    assert!(reply.bytes > 0);

    // Same data now served from n2.
    let db2 = DatabaseHandle::new(&client_margo, n2.address(), 1);
    assert_eq!(db2.len().unwrap(), 200);
    assert_eq!(db2.get(b"key-0042").unwrap().as_deref(), Some(b"value-42".as_slice()));
    assert!(db.get(b"key-0042").is_err(), "old location must be gone");
    n1.shutdown();
    n2.shutdown();
    client_margo.finalize();
}

#[test]
fn bedrock_migration_of_map_backend_uses_dump() {
    let fabric = Fabric::new();
    let dir = TempDir::new("yokan-migrate-map").unwrap();
    let n1 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &yokan_process_config("map"),
        yokan_catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let mut empty = ProcessConfig::default();
    empty.libraries.insert("yokan".into(), "libyokan.so".into());
    let n2 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n2", 1),
        &empty,
        yokan_catalog(),
        dir.path().join("n2"),
    )
    .unwrap();
    let client_margo = boot(&fabric, "client");
    let db = DatabaseHandle::new(&client_margo, n1.address(), 1);
    db.put(b"in-memory", b"moves-too").unwrap();
    let handle = Client::new(&client_margo).make_service_handle(n1.address(), 0);
    handle.migrate_provider("db", &n2.address(), mochi_remi::Strategy::Rdma).unwrap();
    // NOTE: the map backend migrates its *files* (the dump); the fresh
    // provider starts from an empty map plus the dump file on disk — the
    // restore path is what re-imports it at the service layer. Here we
    // verify the dump arrived intact on n2's disk.
    let dump_path = dir.path().join("n2/providers/db/db/dump.ykn");
    assert!(dump_path.is_file(), "dump file migrated");
    let pairs = mochi_yokan::backend::read_dump(&dump_path).unwrap();
    assert_eq!(pairs, vec![(b"in-memory".to_vec(), b"moves-too".to_vec())]);
    n1.shutdown();
    n2.shutdown();
    client_margo.finalize();
}

#[test]
fn checkpoint_restore_roundtrip_through_bedrock() {
    let fabric = Fabric::new();
    let dir = TempDir::new("yokan-ckpt").unwrap();
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &yokan_process_config("map"),
        yokan_catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let client_margo = boot(&fabric, "client");
    let db = DatabaseHandle::new(&client_margo, server.address(), 1);
    db.put(b"saved", b"state").unwrap();

    let pfs = dir.path().join("pfs/ckpt");
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);
    handle.checkpoint_provider("db", pfs.to_str().unwrap()).unwrap();

    // Lose the data, then restore.
    db.clear().unwrap();
    assert!(db.is_empty().unwrap());
    handle.restore_provider("db", pfs.to_str().unwrap()).unwrap();
    assert_eq!(db.get(b"saved").unwrap().as_deref(), Some(b"state".as_slice()));
    server.shutdown();
    client_margo.finalize();
}
