//! Property-based tests: the LSM backend behaves exactly like a model
//! `BTreeMap` under arbitrary operation sequences, including flushes,
//! compaction-inducing churn, and reopen (crash-restart with a clean
//! WAL).

use std::collections::BTreeMap;

use proptest::prelude::*;

use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{LsmConfig, LsmDatabase};
use mochi_yokan::backend::Database;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Erase(Vec<u8>),
    Get(Vec<u8>),
    ListPrefix(Vec<u8>),
    Len,
    Flush,
    Reopen,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key space so operations collide often.
    prop::collection::vec(prop::num::u8::ANY, 0..4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (key_strategy(), prop::collection::vec(prop::num::u8::ANY, 0..64))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Erase),
        3 => key_strategy().prop_map(Op::Get),
        1 => prop::collection::vec(prop::num::u8::ANY, 0..2).prop_map(Op::ListPrefix),
        1 => Just(Op::Len),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

fn tiny_config() -> LsmConfig {
    // Default stripe count: the proptest then also exercises cross-stripe
    // routing stability across the Reopen op (manifest beats config).
    LsmConfig { memtable_bytes: 128, max_tables: 2, ..LsmConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lsm_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let dir = TempDir::new("lsm-prop").unwrap();
        let mut db = LsmDatabase::open(dir.path(), tiny_config()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Op::Erase(k) => {
                    let existed = db.erase(&k).unwrap();
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::Get(k) => {
                    prop_assert_eq!(db.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::ListPrefix(prefix) => {
                    let got = db.list_keys(&prefix, None, usize::MAX).unwrap();
                    let want: Vec<Vec<u8>> = model
                        .keys()
                        .filter(|k| k.starts_with(&prefix))
                        .cloned()
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Len => {
                    prop_assert_eq!(db.len().unwrap(), model.len() as u64);
                }
                Op::Flush => db.flush().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = LsmDatabase::open(dir.path(), tiny_config()).unwrap();
                }
            }
        }

        // Final full comparison, after one more reopen.
        drop(db);
        let db = LsmDatabase::open(dir.path(), tiny_config()).unwrap();
        let dump = db.dump().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(dump, want);
    }

    #[test]
    fn dump_load_roundtrip(pairs in prop::collection::btree_map(
        key_strategy(), prop::collection::vec(prop::num::u8::ANY, 0..32), 0..40)) {
        let dir = TempDir::new("lsm-dump").unwrap();
        let db = LsmDatabase::open(dir.path(), tiny_config()).unwrap();
        let list: Vec<(Vec<u8>, Vec<u8>)> =
            pairs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        db.load(&list).unwrap();
        prop_assert_eq!(db.dump().unwrap(), list);
    }
}
