//! Property tests for the Margo layer: the binary frame codec and the
//! JSON argument codec always round-trip; RPC ids are stable.

use proptest::prelude::*;

use mochi_margo::{decode, decode_framed, encode, encode_framed, rpc_id_for_name};

proptest! {
    #[test]
    fn frame_codec_round_trips(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        body in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let frame = encode_framed(&key, &body).unwrap();
        let (k2, b2): (Vec<u8>, &[u8]) = decode_framed(&frame).unwrap();
        prop_assert_eq!(k2, key);
        prop_assert_eq!(b2, &body[..]);
    }

    #[test]
    fn frame_decoding_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Must return Ok or Err, never panic or read out of bounds.
        let _ = decode_framed::<Vec<u8>>(&garbage);
    }

    #[test]
    fn json_codec_round_trips(
        text in ".*",
        numbers in proptest::collection::vec(any::<i64>(), 0..32),
        flag in any::<bool>(),
    ) {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Args { text: String, numbers: Vec<i64>, flag: bool }
        let args = Args { text, numbers, flag };
        let bytes = encode(&args).unwrap();
        let back: Args = decode(&bytes).unwrap();
        prop_assert_eq!(back, args);
    }

    #[test]
    fn rpc_ids_are_deterministic_and_u32(name in ".{0,64}") {
        let a = rpc_id_for_name(&name);
        let b = rpc_id_for_name(&name);
        prop_assert_eq!(a, b);
        prop_assert!(a <= u32::MAX as u64);
    }
}
