//! Retry policy for forwarded RPCs.
//!
//! Implements the per-call resilience patterns of Hukerikar & Engelmann's
//! pattern language that belong at the RPC layer: bounded retries with
//! exponential backoff, seeded jitter (replayable schedules), and a
//! global retry budget that caps retry amplification when a whole
//! destination degrades.
//!
//! Retries apply only to calls the runtime knows are safe to repeat:
//! the RPC must be declared idempotent (see
//! `MargoRuntime::declare_idempotent`) and the failure must be classified
//! retryable (`MargoError::is_retryable`). `Handler` errors are
//! application outcomes and are never retried; budget exhaustion
//! (`DeadlineExceeded`) and breaker rejections end the attempt loop
//! immediately.

use std::time::{Duration, Instant};

use mochi_util::ordered_lock::{rank, OrderedMutex};
use mochi_util::SeededRng;

use crate::config::RetryConfig;

/// Runtime state behind the retry policy: the jitter RNG and the sliding
/// one-second retry-budget window.
#[derive(Debug)]
struct RetryState {
    rng: SeededRng,
    /// Start of the current budget window.
    window_start: Instant,
    /// Retries spent in the current window.
    window_spent: u32,
}

/// Shared retry policy, consulted by the forward path on each failure.
#[derive(Debug)]
pub struct RetryPolicy {
    config: RetryConfig,
    state: OrderedMutex<RetryState>,
}

impl RetryPolicy {
    /// Builds a policy from its configuration.
    pub fn new(config: RetryConfig) -> Self {
        let rng = SeededRng::new(config.seed).child("margo-retry-jitter");
        Self {
            config,
            state: OrderedMutex::new(
                rank::MARGO_RETRY_RNG,
                "margo.retry.state",
                RetryState { rng, window_start: Instant::now(), window_spent: 0 },
            ),
        }
    }

    /// Total attempts allowed per logical call (1 = no retries).
    pub fn max_attempts(&self) -> u32 {
        self.config.max_attempts.max(1)
    }

    /// Decides whether one more retry may run, charging the budget if so.
    /// `attempt` is the number of attempts already made (≥ 1).
    pub fn admit_retry(&self, attempt: u32) -> bool {
        if attempt >= self.max_attempts() || self.config.budget_per_sec == 0 {
            return false;
        }
        let mut state = self.state.lock();
        let now = Instant::now();
        if now.duration_since(state.window_start) >= Duration::from_secs(1) {
            state.window_start = now;
            state.window_spent = 0;
        }
        if state.window_spent >= self.config.budget_per_sec {
            return false;
        }
        state.window_spent += 1;
        true
    }

    /// Backoff to sleep before retry number `retry` (1-based): exponential
    /// from `base_backoff_ms`, capped at `max_backoff_ms`, multiplied by a
    /// seeded jitter factor in `[1-jitter, 1+jitter]`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let base = self.config.base_backoff_ms.max(1);
        let exp = retry.saturating_sub(1).min(20);
        let raw = base.saturating_mul(1u64 << exp).min(self.config.max_backoff_ms.max(base));
        let jitter = self.config.jitter.clamp(0.0, 1.0);
        let factor = if jitter == 0.0 {
            1.0
        } else {
            let u = self.state.lock().rng.next_f64();
            1.0 - jitter + 2.0 * jitter * u
        };
        Duration::from_secs_f64((raw as f64 / 1000.0) * factor)
    }

    /// Retries spent in the current budget window (monitoring).
    pub fn budget_spent(&self) -> u32 {
        let mut state = self.state.lock();
        if Instant::now().duration_since(state.window_start) >= Duration::from_secs(1) {
            state.window_spent = 0;
        }
        state.window_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_attempts: u32, budget: u32) -> RetryConfig {
        RetryConfig {
            max_attempts,
            base_backoff_ms: 10,
            max_backoff_ms: 80,
            jitter: 0.0,
            seed: 7,
            budget_per_sec: budget,
        }
    }

    #[test]
    fn attempts_are_bounded() {
        let policy = RetryPolicy::new(config(3, 100));
        assert!(policy.admit_retry(1));
        assert!(policy.admit_retry(2));
        assert!(!policy.admit_retry(3), "attempt 3 of 3 is the last");
    }

    #[test]
    fn budget_caps_retries_per_window() {
        let policy = RetryPolicy::new(config(10, 2));
        assert!(policy.admit_retry(1));
        assert!(policy.admit_retry(1));
        assert!(!policy.admit_retry(1), "budget of 2 exhausted");
        assert_eq!(policy.budget_spent(), 2);
    }

    #[test]
    fn zero_budget_disables_retries() {
        let policy = RetryPolicy::new(config(10, 0));
        assert!(!policy.admit_retry(1));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy::new(config(10, 100));
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(4), Duration::from_millis(80));
        assert_eq!(policy.backoff(5), Duration::from_millis(80), "capped");
    }

    #[test]
    fn jittered_backoff_is_seeded_and_bounded() {
        let sample = |seed: u64| -> Vec<Duration> {
            let mut c = config(10, 100);
            c.jitter = 0.5;
            c.seed = seed;
            let policy = RetryPolicy::new(c);
            (1..=5).map(|r| policy.backoff(r)).collect()
        };
        assert_eq!(sample(1), sample(1), "same seed, same schedule");
        assert_ne!(sample(1), sample(2), "different seeds diverge");
        for (i, d) in sample(3).iter().enumerate() {
            let raw = Duration::from_millis((10u64 << i).min(80));
            assert!(*d >= raw / 2 && *d <= raw * 3 / 2, "retry {} out of range: {d:?}", i + 1);
        }
    }
}
