//! Binary framing for RPCs that carry raw data next to structured
//! arguments.
//!
//! The JSON argument codec ([`crate::codec`]) is convenient for control
//! messages but would inflate raw byte payloads (a JSON array of numbers
//! costs ~3.7 bytes per byte). Data-plane RPCs — Yokan values, Warabi
//! blob writes, REMI chunks — instead frame their payloads as
//! `[u32 LE header length][JSON header][raw body]`, so the network
//! model charges honest byte counts, mirroring how the real Mercury
//! serializers ship raw buffers.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::MargoError;

/// Encodes `header` + `body` into a framed payload.
pub fn encode_framed<H: Serialize>(header: &H, body: &[u8]) -> Result<Bytes, MargoError> {
    let header_json = serde_json::to_vec(header).map_err(|e| MargoError::Codec(e.to_string()))?;
    let mut frame = Vec::with_capacity(4 + header_json.len() + body.len());
    frame.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
    frame.extend_from_slice(&header_json);
    frame.extend_from_slice(body);
    Ok(Bytes::from(frame))
}

/// Decodes a framed payload into its header and body slice.
pub fn decode_framed<H: DeserializeOwned>(frame: &[u8]) -> Result<(H, &[u8]), MargoError> {
    if frame.len() < 4 {
        return Err(MargoError::Codec("frame shorter than header length".into()));
    }
    let header_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    let rest = &frame[4..];
    if rest.len() < header_len {
        return Err(MargoError::Codec(format!(
            "frame truncated: header {header_len} > {}",
            rest.len()
        )));
    }
    let header: H = serde_json::from_slice(&rest[..header_len])
        .map_err(|e| MargoError::Codec(e.to_string()))?;
    Ok((header, &rest[header_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Header {
        key: String,
        flag: bool,
    }

    #[test]
    fn round_trip() {
        let header = Header { key: "k".into(), flag: true };
        let body = vec![0u8, 1, 2, 255];
        let frame = encode_framed(&header, &body).unwrap();
        let (back, back_body): (Header, &[u8]) = decode_framed(&frame).unwrap();
        assert_eq!(back, header);
        assert_eq!(back_body, &body[..]);
    }

    #[test]
    fn empty_body() {
        let frame = encode_framed(&42u32, &[]).unwrap();
        let (n, body): (u32, &[u8]) = decode_framed(&frame).unwrap();
        assert_eq!(n, 42);
        assert!(body.is_empty());
    }

    #[test]
    fn overhead_is_small() {
        let body = vec![7u8; 4096];
        let frame = encode_framed(&(), &body).unwrap();
        assert!(frame.len() < body.len() + 16, "frame {} bytes", frame.len());
    }

    #[test]
    fn truncation_detected() {
        let frame = encode_framed(&Header { key: "x".into(), flag: false }, b"abc").unwrap();
        assert!(decode_framed::<Header>(&frame[..3]).is_err());
        assert!(decode_framed::<Header>(&frame[..5]).is_err());
    }
}
