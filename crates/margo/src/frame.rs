//! Binary framing for RPCs that carry raw data next to structured
//! arguments.
//!
//! The argument codec ([`crate::codec`]) handles control messages; data-plane
//! RPCs — Yokan values, Warabi blob writes, REMI chunks — frame their
//! payloads as `[u32 LE header length][wire header][raw body]`, so the
//! network model charges honest byte counts, mirroring how the real Mercury
//! serializers ship raw buffers.
//!
//! Framing is built for the hot path:
//!
//! - [`encode_framed`] serializes the header *directly into* a thread-local
//!   reusable [`BytesMut`] scratch (length prefix patched in place), then
//!   hands the frame off with `split().freeze()` — no intermediate header
//!   `Vec`, no copy-into-`Bytes`.
//! - [`decode_framed`] returns the body as a [`Bytes`] slice of the incoming
//!   frame (`Bytes::slice` is a refcount bump), so callers hold onto bodies
//!   without copying them out first.

use std::cell::RefCell;

use bytes::{BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::MargoError;

thread_local! {
    /// Per-thread frame assembly scratch. `split().freeze()` hands the
    /// filled prefix to the caller; once that `Bytes` is dropped, the next
    /// `reserve` reclaims the allocation instead of growing a fresh one.
    static SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::new());
}

/// Encodes `header` + `body` into a framed payload.
pub fn encode_framed<H: Serialize>(header: &H, body: &[u8]) -> Result<Bytes, MargoError> {
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        // A failed encode on a previous call may have left partial bytes.
        buf.clear();
        buf.reserve(4 + 32 + body.len());
        buf.put_u32_le(0);
        mochi_wire::encode_into(header, &mut *buf)
            .map_err(|e| MargoError::Codec(e.to_string()))?;
        let header_len = buf.len() - 4;
        buf[..4].copy_from_slice(&(header_len as u32).to_le_bytes());
        buf.put_slice(body);
        Ok(buf.split().freeze())
    })
}

/// Decodes a framed payload into its header and body.
///
/// The body is a zero-copy [`Bytes::slice`] of `frame`.
pub fn decode_framed<H: DeserializeOwned>(frame: &Bytes) -> Result<(H, Bytes), MargoError> {
    if frame.len() < 4 {
        return Err(MargoError::Codec("frame shorter than header length".into()));
    }
    let header_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    let rest = &frame[4..];
    if rest.len() < header_len {
        return Err(MargoError::Codec(format!(
            "frame truncated: header {header_len} > {}",
            rest.len()
        )));
    }
    let header: H = mochi_wire::from_slice(&rest[..header_len])
        .map_err(|e| MargoError::Codec(e.to_string()))?;
    Ok((header, frame.slice(4 + header_len..)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Header {
        key: String,
        flag: bool,
    }

    #[test]
    fn round_trip() {
        let header = Header { key: "k".into(), flag: true };
        let body = vec![0u8, 1, 2, 255];
        let frame = encode_framed(&header, &body).unwrap();
        let (back, back_body): (Header, Bytes) = decode_framed(&frame).unwrap();
        assert_eq!(back, header);
        assert_eq!(&back_body[..], &body[..]);
    }

    #[test]
    fn empty_body() {
        let frame = encode_framed(&42u32, &[]).unwrap();
        let (n, body): (u32, Bytes) = decode_framed(&frame).unwrap();
        assert_eq!(n, 42);
        assert!(body.is_empty());
    }

    #[test]
    fn overhead_is_small() {
        let body = vec![7u8; 4096];
        let frame = encode_framed(&(), &body).unwrap();
        assert!(frame.len() < body.len() + 16, "frame {} bytes", frame.len());
    }

    #[test]
    fn truncation_detected() {
        let frame = encode_framed(&Header { key: "x".into(), flag: false }, b"abc").unwrap();
        assert!(decode_framed::<Header>(&frame.slice(..3)).is_err());
        assert!(decode_framed::<Header>(&frame.slice(..5)).is_err());
    }

    #[test]
    fn scratch_reuse_keeps_frames_independent() {
        // Consecutive encodes on one thread share the scratch buffer;
        // split()/freeze() must leave each produced frame intact.
        let a = encode_framed(&Header { key: "a".into(), flag: true }, b"first").unwrap();
        let b = encode_framed(&Header { key: "b".into(), flag: false }, b"second").unwrap();
        let (ha, body_a): (Header, Bytes) = decode_framed(&a).unwrap();
        let (hb, body_b): (Header, Bytes) = decode_framed(&b).unwrap();
        assert_eq!(ha.key, "a");
        assert_eq!(&body_a[..], b"first");
        assert_eq!(hb.key, "b");
        assert_eq!(&body_b[..], b"second");
    }

    #[test]
    fn body_slice_is_zero_copy() {
        let body = vec![9u8; 64];
        let frame = encode_framed(&1u8, &body).unwrap();
        let (_, back_body): (u8, Bytes) = decode_framed(&frame).unwrap();
        // Zero-copy: the body points into the frame's buffer.
        let frame_range = frame.as_ptr() as usize..frame.as_ptr() as usize + frame.len();
        assert!(frame_range.contains(&(back_body.as_ptr() as usize)));
    }
}
