//! The default monitor: aggregates lifecycle events into the JSON shape
//! of the paper's Listing 1.
//!
//! Statistics are keyed by
//! `"<parent_rpc_id>:<parent_provider_id>:<rpc_id>:<provider_id>"`, with
//! `65535` standing in for "no parent" / "no provider", exactly as in the
//! listing. Under each key, the `origin` section groups per-destination
//! client-side statistics (`sent to <addr>`), and the `target` section
//! groups per-source server-side statistics (`received from <addr>`),
//! including the `ult.duration` block the listing shows.
//!
//! The accumulator is striped ([`Striped<State>`]): each thread updates
//! its own stripe, so concurrent RPC handlers never serialize on one
//! statistics mutex; [`StatisticsMonitor::to_json`] merges the stripes
//! with [`StreamStats::merge`] (the parallel Welford merge), which keeps
//! `{num, avg, min, max, var, sum}` exact for sequential pushes and
//! within floating-point roundoff of single-lock accumulation otherwise.

use std::collections::HashMap;
use std::sync::Arc;

use serde_json::{json, Value};

use mochi_mercury::{Address, CallContext};
use mochi_util::ordered_lock::rank;
use mochi_util::{StreamStats, Striped};

use super::{Monitor, MonitoringEvent, RpcIdentity};

/// Sentinel rendered for "no parent" ids, matching Listing 1.
const NONE_SENTINEL: u64 = 65_535;

/// Stripe count: comfortably above the ES counts the experiments drive
/// (≤ 8), cheap to merge at dump time.
const STRIPES: usize = 16;

fn render_parent_rpc(context: &CallContext) -> u64 {
    if context.parent_rpc_id == u64::MAX {
        NONE_SENTINEL
    } else {
        context.parent_rpc_id
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    parent_rpc_id: u64,
    parent_provider_id: u16,
    rpc_id: u64,
    provider_id: u16,
}

impl Key {
    fn from_identity(identity: &RpcIdentity) -> Self {
        Self {
            parent_rpc_id: render_parent_rpc(&identity.context),
            parent_provider_id: identity.context.parent_provider_id,
            rpc_id: identity.rpc_id,
            provider_id: identity.provider_id,
        }
    }

    fn render(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.parent_rpc_id, self.parent_provider_id, self.rpc_id, self.provider_id
        )
    }
}

#[derive(Default)]
struct OriginPeer {
    forward_duration: StreamStats,
    payload_size: StreamStats,
    failures: u64,
    /// Failures by fault-mode tag (timeout / handler / no-handler /
    /// breaker-open / deadline / …) so E1 dumps distinguish fault modes.
    errors: HashMap<&'static str, u64>,
    /// Extra transport attempts spent by the retry policy (attempts - 1,
    /// summed over calls).
    retries: u64,
}

impl OriginPeer {
    fn merge_from(&mut self, other: &OriginPeer) {
        self.forward_duration.merge(&other.forward_duration);
        self.payload_size.merge(&other.payload_size);
        self.failures += other.failures;
        for (kind, count) in &other.errors {
            *self.errors.entry(kind).or_default() += count;
        }
        self.retries += other.retries;
    }
}

#[derive(Default)]
struct TargetPeer {
    ult_duration: StreamStats,
    queue_wait: StreamStats,
    request_payload: StreamStats,
    response_payload: StreamStats,
    failures: u64,
}

impl TargetPeer {
    fn merge_from(&mut self, other: &TargetPeer) {
        self.ult_duration.merge(&other.ult_duration);
        self.queue_wait.merge(&other.queue_wait);
        self.request_payload.merge(&other.request_payload);
        self.response_payload.merge(&other.response_payload);
        self.failures += other.failures;
    }
}

#[derive(Default)]
struct RpcEntry {
    name: String,
    // Keyed by the Arc the runtime already holds: inserting a new peer
    // bumps a refcount instead of deep-cloning the address.
    origin: HashMap<Arc<Address>, OriginPeer>,
    target: HashMap<Arc<Address>, TargetPeer>,
}

#[derive(Default)]
struct BulkStats {
    pull_duration: StreamStats,
    pull_size: StreamStats,
    push_duration: StreamStats,
    push_size: StreamStats,
}

#[derive(Default)]
struct SampleStats {
    in_flight_client: StreamStats,
    in_flight_server: StreamStats,
    pool_sizes: HashMap<String, StreamStats>,
    samples_taken: u64,
}

#[derive(Default)]
struct State {
    rpcs: HashMap<Key, RpcEntry>,
    bulk: BulkStats,
    samples: SampleStats,
}

impl State {
    /// Folds another stripe's accumulators into this one.
    fn merge_from(&mut self, other: &State) {
        for (key, entry) in &other.rpcs {
            let target = self.rpcs.entry(key.clone()).or_default();
            if target.name.is_empty() {
                target.name = entry.name.clone();
            }
            for (addr, peer) in &entry.origin {
                target.origin.entry(Arc::clone(addr)).or_default().merge_from(peer);
            }
            for (addr, peer) in &entry.target {
                target.target.entry(Arc::clone(addr)).or_default().merge_from(peer);
            }
        }
        self.bulk.pull_duration.merge(&other.bulk.pull_duration);
        self.bulk.pull_size.merge(&other.bulk.pull_size);
        self.bulk.push_duration.merge(&other.bulk.push_duration);
        self.bulk.push_size.merge(&other.bulk.push_size);
        self.samples.in_flight_client.merge(&other.samples.in_flight_client);
        self.samples.in_flight_server.merge(&other.samples.in_flight_server);
        self.samples.samples_taken += other.samples.samples_taken;
        for (name, stats) in &other.samples.pool_sizes {
            self.samples.pool_sizes.entry(name.clone()).or_default().merge(stats);
        }
    }
}

/// The default statistics-collecting monitor (§4). Available "at no
/// engineering cost to any component": the runtime installs one unless
/// monitoring is disabled.
pub struct StatisticsMonitor {
    state: Striped<State>,
}

impl Default for StatisticsMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl StatisticsMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self { state: Striped::new(rank::MARGO_STATS, "margo.stats", STRIPES) }
    }

    /// Renders the accumulated statistics as Listing-1-shaped JSON. This
    /// is both the runtime query API and what Margo dumps at shutdown.
    pub fn to_json(&self) -> Value {
        let state = self.state.fold(State::default(), |mut merged, stripe| {
            merged.merge_from(stripe);
            merged
        });
        let mut rpcs = serde_json::Map::new();
        // Sort keys for reproducible output.
        let mut keys: Vec<&Key> = state.rpcs.keys().collect();
        keys.sort_by_key(|k| k.render());
        for key in keys {
            let entry = &state.rpcs[key];
            let mut origin = serde_json::Map::new();
            let mut origin_addrs: Vec<&Arc<Address>> = entry.origin.keys().collect();
            origin_addrs.sort();
            for addr in origin_addrs {
                let peer = &entry.origin[addr];
                let mut errors = serde_json::Map::new();
                let mut kinds: Vec<&&'static str> = peer.errors.keys().collect();
                kinds.sort();
                for kind in kinds {
                    errors.insert((*kind).to_string(), json!(peer.errors[*kind]));
                }
                origin.insert(
                    format!("sent to {addr}"),
                    json!({
                        "forward": { "duration": peer.forward_duration.to_json() },
                        "payload": { "size": peer.payload_size.to_json() },
                        "failures": peer.failures,
                        "errors": Value::Object(errors),
                        "retries": peer.retries,
                    }),
                );
            }
            let mut target = serde_json::Map::new();
            let mut target_addrs: Vec<&Arc<Address>> = entry.target.keys().collect();
            target_addrs.sort();
            for addr in target_addrs {
                let peer = &entry.target[addr];
                target.insert(
                    format!("received from {addr}"),
                    json!({
                        "ult": {
                            "duration": peer.ult_duration.to_json(),
                            "queue_wait": peer.queue_wait.to_json(),
                        },
                        "request_payload": { "size": peer.request_payload.to_json() },
                        "response_payload": { "size": peer.response_payload.to_json() },
                        "failures": peer.failures,
                    }),
                );
            }
            rpcs.insert(
                key.render(),
                json!({
                    "rpc_id": key.rpc_id,
                    "provider_id": key.provider_id,
                    "parent_rpc_id": key.parent_rpc_id,
                    "parent_provider_id": key.parent_provider_id,
                    "name": entry.name,
                    "origin": Value::Object(origin),
                    "target": Value::Object(target),
                }),
            );
        }

        let mut pool_sizes = serde_json::Map::new();
        let mut pool_names: Vec<&String> = state.samples.pool_sizes.keys().collect();
        pool_names.sort();
        for name in pool_names {
            pool_sizes.insert(name.clone(), state.samples.pool_sizes[name].to_json());
        }

        json!({
            "rpcs": Value::Object(rpcs),
            "bulk": {
                "pull": {
                    "duration": state.bulk.pull_duration.to_json(),
                    "size": state.bulk.pull_size.to_json(),
                },
                "push": {
                    "duration": state.bulk.push_duration.to_json(),
                    "size": state.bulk.push_size.to_json(),
                },
            },
            "progress": {
                "samples": state.samples.samples_taken,
                "in_flight_rpcs": {
                    "origin": state.samples.in_flight_client.to_json(),
                    "target": state.samples.in_flight_server.to_json(),
                },
                "pool_sizes": Value::Object(pool_sizes),
            },
        })
    }

    /// Resets all statistics (useful between benchmark phases).
    pub fn reset(&self) {
        self.state.for_each_mut(|state| *state = State::default());
    }
}

impl Monitor for StatisticsMonitor {
    fn observe(&self, event: &MonitoringEvent) {
        // Only the calling thread's stripe is locked: handlers on
        // different execution streams record concurrently.
        self.state.with(|state| match event {
            MonitoringEvent::ForwardStart { .. } => {
                // Per-call state is carried by the runtime; the duration
                // arrives with ForwardEnd. The arm documents that the
                // hook exists for custom monitors.
            }
            MonitoringEvent::ForwardEnd { identity, dest, duration_s, ok, error, attempts } => {
                let entry = state.rpcs.entry(Key::from_identity(identity)).or_default();
                entry.name = identity.rpc_name.to_string();
                let peer = entry.origin.entry(dest.clone()).or_default();
                peer.forward_duration.push(*duration_s);
                if !ok {
                    peer.failures += 1;
                }
                if let Some(kind) = error {
                    *peer.errors.entry(kind).or_default() += 1;
                }
                peer.retries += u64::from(attempts.saturating_sub(1));
            }
            MonitoringEvent::RequestReceived { identity, source, payload_size, .. } => {
                let entry = state.rpcs.entry(Key::from_identity(identity)).or_default();
                entry.name = identity.rpc_name.to_string();
                let peer = entry.target.entry(source.clone()).or_default();
                peer.request_payload.push(*payload_size as f64);
            }
            MonitoringEvent::HandlerStart { identity, source, queue_wait_s } => {
                let entry = state.rpcs.entry(Key::from_identity(identity)).or_default();
                let peer = entry.target.entry(source.clone()).or_default();
                peer.queue_wait.push(*queue_wait_s);
            }
            MonitoringEvent::HandlerEnd { identity, source, duration_s, ok } => {
                let entry = state.rpcs.entry(Key::from_identity(identity)).or_default();
                let peer = entry.target.entry(source.clone()).or_default();
                peer.ult_duration.push(*duration_s);
                if !ok {
                    peer.failures += 1;
                }
            }
            MonitoringEvent::ResponseSent { identity, dest, payload_size } => {
                let entry = state.rpcs.entry(Key::from_identity(identity)).or_default();
                let peer = entry.target.entry(dest.clone()).or_default();
                peer.response_payload.push(*payload_size as f64);
            }
            MonitoringEvent::Bulk { direction, size, duration_s, .. } => match direction {
                super::BulkDirection::Pull => {
                    state.bulk.pull_duration.push(*duration_s);
                    state.bulk.pull_size.push(*size as f64);
                }
                super::BulkDirection::Push => {
                    state.bulk.push_duration.push(*duration_s);
                    state.bulk.push_size.push(*size as f64);
                }
            },
            MonitoringEvent::Sample(sample) => {
                state.samples.samples_taken += 1;
                state.samples.in_flight_client.push(sample.in_flight_client as f64);
                state.samples.in_flight_server.push(sample.in_flight_server as f64);
                for pool in &sample.pools {
                    state
                        .samples
                        .pool_sizes
                        .entry(pool.name.clone())
                        .or_default()
                        .push(pool.size as f64);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BulkDirection, RuntimeSample};
    use super::*;
    use std::sync::Arc;

    fn identity(name: &str, rpc_id: u64, provider: u16, context: CallContext) -> RpcIdentity {
        RpcIdentity { rpc_id, rpc_name: Arc::from(name), provider_id: provider, context }
    }

    fn addr(host: &str) -> Address {
        Address::tcp(host, 1)
    }

    #[test]
    fn listing1_key_format_for_top_level_calls() {
        let monitor = StatisticsMonitor::new();
        let id = identity("echo", 2_924_675_071, 65_535, CallContext::TOP_LEVEL);
        monitor.observe(&MonitoringEvent::HandlerEnd {
            identity: id,
            source: Arc::new(addr("client")),
            duration_s: 0.083,
            ok: true,
        });
        let json = monitor.to_json();
        let rpcs = json["rpcs"].as_object().unwrap();
        assert!(rpcs.contains_key("65535:65535:2924675071:65535"), "keys: {:?}", rpcs.keys());
        let entry = &rpcs["65535:65535:2924675071:65535"];
        assert_eq!(entry["rpc_id"], 2_924_675_071u64);
        assert_eq!(entry["parent_rpc_id"], 65_535);
        assert_eq!(entry["parent_provider_id"], 65_535);
        let ult = &entry["target"]["received from ofi+tcp://client:1"]["ult"]["duration"];
        assert_eq!(ult["num"], 1);
        assert!((ult["avg"].as_f64().unwrap() - 0.083).abs() < 1e-9);
    }

    #[test]
    fn nested_context_creates_distinct_key() {
        let monitor = StatisticsMonitor::new();
        let nested = CallContext { parent_rpc_id: 42, parent_provider_id: 3, deadline: None };
        monitor.observe(&MonitoringEvent::ForwardEnd {
            identity: identity("get", 100, 1, nested),
            dest: Arc::new(addr("server")),
            duration_s: 0.01,
            ok: true,
            error: None,
            attempts: 1,
        });
        monitor.observe(&MonitoringEvent::ForwardEnd {
            identity: identity("get", 100, 1, CallContext::TOP_LEVEL),
            dest: Arc::new(addr("server")),
            duration_s: 0.02,
            ok: true,
            error: None,
            attempts: 1,
        });
        let json = monitor.to_json();
        let rpcs = json["rpcs"].as_object().unwrap();
        assert_eq!(rpcs.len(), 2);
        assert!(rpcs.contains_key("42:3:100:1"));
        assert!(rpcs.contains_key("65535:65535:100:1"));
    }

    #[test]
    fn per_peer_origin_stats_accumulate() {
        let monitor = StatisticsMonitor::new();
        for (host, duration) in [("s1", 0.01), ("s1", 0.03), ("s2", 0.5)] {
            monitor.observe(&MonitoringEvent::ForwardEnd {
                identity: identity("put", 7, 0, CallContext::TOP_LEVEL),
                dest: Arc::new(addr(host)),
                duration_s: duration,
                ok: true,
                error: None,
                attempts: 1,
            });
        }
        let json = monitor.to_json();
        let origin = &json["rpcs"]["65535:65535:7:0"]["origin"];
        let s1 = &origin["sent to ofi+tcp://s1:1"]["forward"]["duration"];
        assert_eq!(s1["num"], 2);
        assert!((s1["avg"].as_f64().unwrap() - 0.02).abs() < 1e-9);
        let s2 = &origin["sent to ofi+tcp://s2:1"]["forward"]["duration"];
        assert_eq!(s2["num"], 1);
    }

    #[test]
    fn failures_counted() {
        let monitor = StatisticsMonitor::new();
        monitor.observe(&MonitoringEvent::ForwardEnd {
            identity: identity("put", 7, 0, CallContext::TOP_LEVEL),
            dest: Arc::new(addr("s1")),
            duration_s: 1.0,
            ok: false,
            error: Some("timeout"),
            attempts: 3,
        });
        let json = monitor.to_json();
        let peer = &json["rpcs"]["65535:65535:7:0"]["origin"]["sent to ofi+tcp://s1:1"];
        assert_eq!(peer["failures"], 1);
        assert_eq!(peer["errors"]["timeout"], 1, "fault mode tagged: {peer}");
        assert_eq!(peer["retries"], 2, "two extra attempts recorded");
    }

    #[test]
    fn error_kinds_accumulate_separately() {
        let monitor = StatisticsMonitor::new();
        for kind in ["timeout", "timeout", "handler", "breaker-open"] {
            monitor.observe(&MonitoringEvent::ForwardEnd {
                identity: identity("put", 7, 0, CallContext::TOP_LEVEL),
                dest: Arc::new(addr("s1")),
                duration_s: 0.5,
                ok: false,
                error: Some(kind),
                attempts: 1,
            });
        }
        let json = monitor.to_json();
        let errors = &json["rpcs"]["65535:65535:7:0"]["origin"]["sent to ofi+tcp://s1:1"]["errors"];
        assert_eq!(errors["timeout"], 2);
        assert_eq!(errors["handler"], 1);
        assert_eq!(errors["breaker-open"], 1);
    }

    #[test]
    fn bulk_and_samples_sections() {
        let monitor = StatisticsMonitor::new();
        monitor.observe(&MonitoringEvent::Bulk {
            direction: BulkDirection::Pull,
            peer: addr("s"),
            size: 4096,
            duration_s: 0.001,
        });
        monitor.observe(&MonitoringEvent::Sample(RuntimeSample {
            time_s: 1.0,
            in_flight_client: 3,
            in_flight_server: 1,
            pools: vec![],
        }));
        let json = monitor.to_json();
        assert_eq!(json["bulk"]["pull"]["size"]["num"], 1);
        assert_eq!(json["progress"]["samples"], 1);
        assert_eq!(json["progress"]["in_flight_rpcs"]["origin"]["avg"], 3.0);
    }

    #[test]
    fn reset_clears_state() {
        let monitor = StatisticsMonitor::new();
        monitor.observe(&MonitoringEvent::ForwardEnd {
            identity: identity("x", 1, 0, CallContext::TOP_LEVEL),
            dest: Arc::new(addr("s")),
            duration_s: 0.1,
            ok: true,
            error: None,
            attempts: 1,
        });
        monitor.reset();
        assert!(monitor.to_json()["rpcs"].as_object().unwrap().is_empty());
    }

    #[test]
    fn events_from_concurrent_threads_merge_exactly() {
        let monitor = Arc::new(StatisticsMonitor::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let monitor = Arc::clone(&monitor);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        monitor.observe(&MonitoringEvent::ForwardEnd {
                            identity: identity("put", 7, 0, CallContext::TOP_LEVEL),
                            dest: Arc::new(addr("s1")),
                            duration_s: (t * 250 + i) as f64,
                            ok: i % 50 == 0,
                            error: (i % 50 != 0).then_some("timeout"),
                            attempts: 1,
                        });
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let json = monitor.to_json();
        let peer = &json["rpcs"]["65535:65535:7:0"]["origin"]["sent to ofi+tcp://s1:1"];
        let duration = &peer["forward"]["duration"];
        assert_eq!(duration["num"], 1000);
        assert_eq!(duration["min"], 0.0);
        assert_eq!(duration["max"], 999.0);
        // Sum of 0..1000 is exact in f64, and the Welford merge preserves
        // it bit-for-bit regardless of stripe layout.
        assert_eq!(duration["sum"], (0..1000u64).sum::<u64>() as f64);
        // `ok` only when i % 50 == 0 (5 of 250 per thread).
        assert_eq!(peer["failures"], 4 * 245);
        let name = &json["rpcs"]["65535:65535:7:0"]["name"];
        assert_eq!(name, "put");
    }
}
