//! Customizable performance-monitoring infrastructure (paper §4).
//!
//! Margo "has knowledge of all the RPCs being sent and received and all
//! the RDMA operations being carried out, as well as the context in which
//! they are performed"; this module is where that knowledge surfaces.
//! The runtime emits a [`MonitoringEvent`] at each step of an RPC's
//! lifetime — forward sent, request received, handler ULT scheduled,
//! handler start/stop, response sent, bulk transfer — plus periodic
//! samples of in-flight RPC counts and pool depths. Users "inject
//! callbacks" by installing any [`Monitor`]; the default
//! [`StatisticsMonitor`] aggregates everything into the Listing-1 JSON.

mod statistics;

pub use statistics::StatisticsMonitor;

use std::sync::Arc;

use mochi_argobots::PoolStats;
use mochi_mercury::{Address, CallContext};

/// Direction of a bulk (RDMA-model) transfer, from the caller's side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkDirection {
    /// Remote → local.
    Pull,
    /// Local → remote.
    Push,
}

/// Identity of one RPC observation: which RPC, which provider, and the
/// calling context it was issued from (Listing 1 keys stats by all four).
#[derive(Debug, Clone)]
pub struct RpcIdentity {
    /// Hashed RPC id.
    pub rpc_id: u64,
    /// Human-readable RPC name.
    pub rpc_name: Arc<str>,
    /// Target provider id.
    pub provider_id: u16,
    /// Context (parent RPC/provider) this call was issued from.
    pub context: CallContext,
}

/// A point-in-time sample of runtime load (§4: "periodically tracks the
/// number of in-flight RPCs and the sizes of user-level thread pools").
#[derive(Debug, Clone)]
pub struct RuntimeSample {
    /// Seconds since process start.
    pub time_s: f64,
    /// RPCs this process has forwarded and not yet seen complete.
    pub in_flight_client: i64,
    /// Handler ULTs received and not yet completed.
    pub in_flight_server: i64,
    /// Depth and counters of every pool.
    pub pools: Vec<PoolStats>,
}

/// One step in the lifetime of an RPC (or a runtime sample).
///
/// Peer addresses are `Arc`-shared with the runtime: several events fire per
/// RPC (forward start/end, request received, handler start/end, response
/// sent) and each used to deep-clone the address. An `Arc` bump per event
/// keeps monitoring overhead flat as address strings grow.
#[derive(Debug, Clone)]
pub enum MonitoringEvent {
    /// A client is about to forward a request.
    ForwardStart { identity: RpcIdentity, dest: Arc<Address>, payload_size: usize },
    /// A forwarded request completed (response received, or failed).
    /// `error` is `None` on success, or the fault-mode tag from
    /// [`crate::MargoError::kind`] (timeout / handler / no-handler /
    /// breaker-open / deadline / …) so E1 dumps distinguish fault modes.
    /// `attempts` counts the transport attempts of this logical call
    /// (> 1 when the retry policy re-sent it).
    ForwardEnd {
        identity: RpcIdentity,
        dest: Arc<Address>,
        duration_s: f64,
        ok: bool,
        error: Option<&'static str>,
        attempts: u32,
    },
    /// The progress loop received a request and is scheduling its ULT.
    RequestReceived {
        identity: RpcIdentity,
        source: Arc<Address>,
        payload_size: usize,
        pool: String,
    },
    /// A handler ULT started executing (after waiting in its pool).
    HandlerStart { identity: RpcIdentity, source: Arc<Address>, queue_wait_s: f64 },
    /// A handler ULT finished; `duration_s` is its execution time — the
    /// `ult.duration` statistic of Listing 1.
    HandlerEnd { identity: RpcIdentity, source: Arc<Address>, duration_s: f64, ok: bool },
    /// A response was sent back.
    ResponseSent { identity: RpcIdentity, dest: Arc<Address>, payload_size: usize },
    /// A bulk transfer completed.
    Bulk { direction: BulkDirection, peer: Address, size: usize, duration_s: f64 },
    /// Periodic load sample.
    Sample(RuntimeSample),
}

/// A monitoring callback sink. Implementations must be cheap and
/// non-blocking: events are emitted from the progress loop and from
/// handler ULTs.
pub trait Monitor: Send + Sync {
    /// Observes one event.
    fn observe(&self, event: &MonitoringEvent);
}

/// Monitor that discards everything (monitoring disabled).
#[derive(Debug, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {
    fn observe(&self, _event: &MonitoringEvent) {}
}

/// Fans events out to several monitors (e.g. the default statistics
/// monitor plus a user-injected one).
#[derive(Default)]
pub struct CompositeMonitor {
    sinks: Vec<Arc<dyn Monitor>>,
}

impl CompositeMonitor {
    /// Creates an empty composite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Arc<dyn Monitor>) {
        self.sinks.push(sink);
    }
}

impl Monitor for CompositeMonitor {
    fn observe(&self, event: &MonitoringEvent) {
        for sink in &self.sinks {
            sink.observe(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting(AtomicUsize);

    impl Monitor for Counting {
        fn observe(&self, _e: &MonitoringEvent) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn sample_event() -> MonitoringEvent {
        MonitoringEvent::Sample(RuntimeSample {
            time_s: 0.0,
            in_flight_client: 0,
            in_flight_server: 0,
            pools: vec![],
        })
    }

    #[test]
    fn composite_fans_out() {
        let a = Arc::new(Counting(AtomicUsize::new(0)));
        let b = Arc::new(Counting(AtomicUsize::new(0)));
        let mut composite = CompositeMonitor::new();
        composite.push(a.clone());
        composite.push(b.clone());
        composite.observe(&sample_event());
        composite.observe(&sample_event());
        assert_eq!(a.0.load(Ordering::SeqCst), 2);
        assert_eq!(b.0.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn null_monitor_is_inert() {
        NullMonitor.observe(&sample_event());
    }
}
