//! RPC argument (de)serialization.
//!
//! Mercury leaves argument encoding to per-RPC "proc" functions; Mochi
//! components describe their arguments declaratively. We use serde with a
//! JSON encoding: the encoding format is not under test anywhere in the
//! paper, and self-describing payloads make monitoring dumps and test
//! failures legible. Components that move *data* (not arguments) use bulk
//! transfers, which bypass this codec entirely — matching the original
//! stack, where large transfers never ride the RPC serializer.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::MargoError;

/// Serializes a value into an RPC payload.
pub fn encode<T: Serialize>(value: &T) -> Result<Bytes, MargoError> {
    serde_json::to_vec(value).map(Bytes::from).map_err(|e| MargoError::Codec(e.to_string()))
}

/// Deserializes an RPC payload.
pub fn decode<T: DeserializeOwned>(payload: &[u8]) -> Result<T, MargoError> {
    serde_json::from_slice(payload).map_err(|e| MargoError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Args {
        key: String,
        sizes: Vec<u32>,
        flag: bool,
    }

    #[test]
    fn round_trip() {
        let args = Args { key: "k".into(), sizes: vec![1, 2, 3], flag: true };
        let bytes = encode(&args).unwrap();
        let back: Args = decode(&bytes).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn unit_round_trip() {
        let bytes = encode(&()).unwrap();
        decode::<()>(&bytes).unwrap();
    }

    #[test]
    fn decode_error_is_reported() {
        let err = decode::<Args>(b"{not json").unwrap_err();
        assert!(matches!(err, MargoError::Codec(_)));
    }

    #[test]
    fn binary_data_via_serde_bytes_pattern() {
        // Raw Vec<u8> round-trips (as JSON arrays — fine for small args;
        // large data goes through bulk transfers instead).
        let blob: Vec<u8> = (0..=255).collect();
        let bytes = encode(&blob).unwrap();
        let back: Vec<u8> = decode(&bytes).unwrap();
        assert_eq!(back, blob);
    }
}
