//! RPC argument (de)serialization.
//!
//! Mercury leaves argument encoding to per-RPC "proc" functions; Mochi
//! components describe their arguments declaratively. We use serde with the
//! [`mochi_wire`] binary encoding: a compact self-describing format whose
//! data model mirrors JSON's, so every argument type that used to travel as
//! JSON travels unchanged — just smaller and without the number-to-text
//! round trip that dominated small-RPC latency. Observable JSON artifacts
//! (Listing 1 monitoring dumps, Bedrock configs, Jx9) are *not* produced by
//! this codec and stay JSON. Components that move *data* (not arguments)
//! use bulk transfers, which bypass this codec entirely — matching the
//! original stack, where large transfers never ride the RPC serializer.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::MargoError;

/// Serializes a value into an RPC payload.
pub fn encode<T: Serialize>(value: &T) -> Result<Bytes, MargoError> {
    mochi_wire::to_vec(value).map(Bytes::from).map_err(|e| MargoError::Codec(e.to_string()))
}

/// Deserializes an RPC payload.
pub fn decode<T: DeserializeOwned>(payload: &[u8]) -> Result<T, MargoError> {
    mochi_wire::from_slice(payload).map_err(|e| MargoError::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Args {
        key: String,
        sizes: Vec<u32>,
        flag: bool,
    }

    #[test]
    fn round_trip() {
        let args = Args { key: "k".into(), sizes: vec![1, 2, 3], flag: true };
        let bytes = encode(&args).unwrap();
        let back: Args = decode(&bytes).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn unit_round_trip() {
        let bytes = encode(&()).unwrap();
        decode::<()>(&bytes).unwrap();
    }

    #[test]
    fn decode_error_is_reported() {
        let err = decode::<Args>(b"{not json").unwrap_err();
        assert!(matches!(err, MargoError::Codec(_)));
    }

    #[test]
    fn binary_data_round_trips() {
        let blob: Vec<u8> = (0..=255).collect();
        let bytes = encode(&blob).unwrap();
        let back: Vec<u8> = decode(&bytes).unwrap();
        assert_eq!(back, blob);
    }

    #[test]
    fn binary_data_encodes_as_raw_byte_run() {
        // Byte blobs must ride the wire as length-prefixed raw runs, not
        // per-element lists (JSON cost ~3.7 bytes per byte; wire is 1 plus
        // a small constant header).
        for len in [1usize, 64, 4096] {
            let blob: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let encoded = encode(&blob).unwrap();
            assert!(
                encoded.len() <= blob.len() + 16,
                "{len}-byte blob encoded to {} bytes",
                encoded.len()
            );
            let back: Vec<u8> = decode(&encoded).unwrap();
            assert_eq!(back, blob);
        }
    }

    #[test]
    fn json_value_args_round_trip() {
        // Bedrock ships serde_json::Value arguments through this codec;
        // the self-describing wire format must carry them unchanged.
        let value = serde_json::json!({
            "pools": [{"name": "p1"}, {"name": "p2"}],
            "rates": [1, -2, 3.5],
            "enabled": true,
            "note": null,
        });
        let bytes = encode(&value).unwrap();
        let back: serde_json::Value = decode(&bytes).unwrap();
        assert_eq!(back, value);
    }
}
