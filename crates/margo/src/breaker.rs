//! Per-(address, provider) circuit breakers for the forward path.
//!
//! A breaker watches consecutive transport-class failures to one
//! destination and, once a threshold trips, rejects further calls locally
//! (fast, no network) until a probe interval elapses; then a single
//! half-open probe is admitted and its outcome decides between closing
//! the breaker and re-opening it. This is the circuit-breaker pattern
//! from Hukerikar & Engelmann's resilience catalog, scoped the way Margo
//! scopes everything else: per destination address and provider id.
//!
//! Only transport-class failures (timeout, unreachable peer) count
//! against the threshold. `Handler` errors are successful round-trips
//! from the transport's point of view, and `NoHandler` is expected during
//! reconfiguration — neither should isolate a healthy destination.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mochi_mercury::Address;
use mochi_util::ordered_lock::{rank, OrderedMutex};

use crate::config::BreakerConfig;

/// Breaker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Calls flow; counting consecutive failures.
    Closed,
    /// Calls rejected until the probe interval elapses.
    Open,
    /// One probe call is in flight; its outcome decides the next state.
    HalfOpen,
}

impl State {
    fn as_str(self) -> &'static str {
        match self {
            State::Closed => "closed",
            State::Open => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
struct Breaker {
    state: State,
    consecutive_failures: u32,
    /// Total times this breaker tripped open (monitoring).
    trips: u64,
    /// Calls rejected while open (monitoring).
    rejected: u64,
    /// When the open state may admit a half-open probe.
    probe_at: Instant,
}

impl Breaker {
    fn new(now: Instant) -> Self {
        Self {
            state: State::Closed,
            consecutive_failures: 0,
            trips: 0,
            rejected: 0,
            probe_at: now,
        }
    }
}

/// Outcome of asking the registry to admit a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Call may proceed (breaker closed, or breakers disabled).
    Allowed,
    /// Call may proceed as the single half-open probe.
    Probe,
    /// Call rejected: breaker open and the probe interval has not elapsed.
    Rejected,
}

/// Registry of breakers, one per (destination address, provider id).
#[derive(Debug)]
pub struct BreakerRegistry {
    config: BreakerConfig,
    breakers: OrderedMutex<HashMap<(Arc<Address>, u16), Breaker>>,
}

impl BreakerRegistry {
    /// Builds a registry from its configuration.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            breakers: OrderedMutex::new(rank::MARGO_BREAKERS, "margo.breakers", HashMap::new()),
        }
    }

    fn key(dest: &Arc<Address>, provider_id: u16) -> (Arc<Address>, u16) {
        (Arc::clone(dest), provider_id)
    }

    /// Asks to admit a call to `(dest, provider_id)`.
    pub fn admit(&self, dest: &Arc<Address>, provider_id: u16) -> Admission {
        if !self.config.enabled {
            return Admission::Allowed;
        }
        let now = Instant::now();
        let mut breakers = self.breakers.lock();
        let breaker =
            breakers.entry(Self::key(dest, provider_id)).or_insert_with(|| Breaker::new(now));
        match breaker.state {
            State::Closed => Admission::Allowed,
            State::HalfOpen => {
                // A probe is already in flight; reject concurrent calls.
                breaker.rejected += 1;
                Admission::Rejected
            }
            State::Open => {
                if now >= breaker.probe_at {
                    breaker.state = State::HalfOpen;
                    Admission::Probe
                } else {
                    breaker.rejected += 1;
                    Admission::Rejected
                }
            }
        }
    }

    /// Records a successful round-trip (including `Handler`/`NoHandler`
    /// responses — the network worked).
    pub fn record_success(&self, dest: &Arc<Address>, provider_id: u16) {
        if !self.config.enabled {
            return;
        }
        let mut breakers = self.breakers.lock();
        if let Some(breaker) = breakers.get_mut(&Self::key(dest, provider_id)) {
            breaker.state = State::Closed;
            breaker.consecutive_failures = 0;
        }
    }

    /// Records a transport-class failure; trips the breaker open when the
    /// threshold is reached, and re-opens it when a half-open probe fails.
    pub fn record_failure(&self, dest: &Arc<Address>, provider_id: u16) {
        if !self.config.enabled {
            return;
        }
        let now = Instant::now();
        let probe_after = Duration::from_millis(self.config.probe_interval_ms);
        let mut breakers = self.breakers.lock();
        let breaker =
            breakers.entry(Self::key(dest, provider_id)).or_insert_with(|| Breaker::new(now));
        breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
        match breaker.state {
            State::HalfOpen => {
                // Failed probe: straight back to open.
                breaker.state = State::Open;
                breaker.trips += 1;
                breaker.probe_at = now + probe_after;
            }
            State::Closed if breaker.consecutive_failures >= self.config.failure_threshold => {
                breaker.state = State::Open;
                breaker.trips += 1;
                breaker.probe_at = now + probe_after;
            }
            _ => {}
        }
    }

    /// True if every tracked breaker is closed (chaos tests assert this
    /// after faults heal). Breakers for addresses absent from `live` are
    /// ignored: a recovered member's *old* address stays dead forever, so
    /// its breaker can never observe a success again.
    pub fn all_closed_among(&self, live: impl Fn(&Address) -> bool) -> bool {
        self.breakers
            .lock()
            .iter()
            .all(|((addr, _), b)| !live(addr) || b.state == State::Closed)
    }

    /// Monitoring dump: the `breakers` section of the Listing-1 JSON.
    /// Keyed `"<address>:<provider_id>"`.
    pub fn to_json(&self) -> serde_json::Value {
        let breakers = self.breakers.lock();
        let mut map = serde_json::Map::new();
        for ((addr, provider_id), b) in breakers.iter() {
            map.insert(
                format!("{addr}:{provider_id}"),
                serde_json::json!({
                    "state": b.state.as_str(),
                    "consecutive_failures": b.consecutive_failures,
                    "trips": b.trips,
                    "rejected": b.rejected,
                }),
            );
        }
        serde_json::Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(threshold: u32, probe_ms: u64) -> BreakerRegistry {
        BreakerRegistry::new(BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            probe_interval_ms: probe_ms,
        })
    }

    fn dest(host: &str) -> Arc<Address> {
        Arc::new(Address::tcp(host, 1))
    }

    #[test]
    fn trips_after_threshold_and_rejects() {
        let reg = registry(3, 10_000);
        let d = dest("a");
        for _ in 0..2 {
            reg.record_failure(&d, 0);
            assert_eq!(reg.admit(&d, 0), Admission::Allowed);
        }
        reg.record_failure(&d, 0);
        assert_eq!(reg.admit(&d, 0), Admission::Rejected);
        // Other providers and destinations unaffected.
        assert_eq!(reg.admit(&d, 1), Admission::Allowed);
        assert_eq!(reg.admit(&dest("b"), 0), Admission::Allowed);
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let reg = registry(1, 0);
        let d = dest("a");
        reg.record_failure(&d, 0);
        // probe_interval 0: next admit is immediately a probe.
        assert_eq!(reg.admit(&d, 0), Admission::Probe);
        // While the probe is out, other calls are rejected.
        assert_eq!(reg.admit(&d, 0), Admission::Rejected);
        reg.record_success(&d, 0);
        assert_eq!(reg.admit(&d, 0), Admission::Allowed);
        assert!(reg.all_closed_among(|_| true));
    }

    #[test]
    fn failed_probe_reopens() {
        let reg = registry(1, 0);
        let d = dest("a");
        reg.record_failure(&d, 0);
        assert_eq!(reg.admit(&d, 0), Admission::Probe);
        reg.record_failure(&d, 0);
        // Re-opened with probe_at in the past (interval 0) — next admit
        // probes again rather than flat-out rejecting.
        assert_eq!(reg.admit(&d, 0), Admission::Probe);
        assert!(!reg.all_closed_among(|_| true));
        assert!(reg.all_closed_among(|_| false), "scoping to no live addresses ignores it");
    }

    #[test]
    fn open_respects_probe_interval() {
        let reg = registry(1, 60_000);
        let d = dest("a");
        reg.record_failure(&d, 0);
        assert_eq!(reg.admit(&d, 0), Admission::Rejected, "probe due only after a minute");
    }

    #[test]
    fn success_resets_failure_streak() {
        let reg = registry(3, 1000);
        let d = dest("a");
        reg.record_failure(&d, 0);
        reg.record_failure(&d, 0);
        reg.record_success(&d, 0);
        reg.record_failure(&d, 0);
        reg.record_failure(&d, 0);
        assert_eq!(reg.admit(&d, 0), Admission::Allowed, "streak broken by success");
    }

    #[test]
    fn disabled_breakers_never_reject() {
        let reg = BreakerRegistry::new(BreakerConfig {
            enabled: false,
            failure_threshold: 1,
            probe_interval_ms: 1000,
        });
        let d = dest("a");
        for _ in 0..10 {
            reg.record_failure(&d, 0);
        }
        assert_eq!(reg.admit(&d, 0), Admission::Allowed);
    }

    #[test]
    fn json_shape() {
        let reg = registry(1, 60_000);
        let d = dest("a");
        reg.record_failure(&d, 0);
        reg.admit(&d, 0);
        let json = reg.to_json();
        let entry = &json[format!("{}:0", d)];
        assert_eq!(entry["state"], "open");
        assert_eq!(entry["trips"], 1);
        assert_eq!(entry["rejected"], 1);
        assert_eq!(entry["consecutive_failures"], 1);
    }
}
