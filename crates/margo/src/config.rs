//! Margo configuration document.
//!
//! The JSON shape extends Listing 2 with the fields Margo adds around the
//! `argobots` section: which pool the progress loop is associated with,
//! the default handler pool, RPC timeout, and monitoring settings.

use serde::{Deserialize, Serialize};

use mochi_argobots::AbtConfig;

use crate::error::MargoError;

/// Monitoring settings (§4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitoringConfig {
    /// Master switch for the default statistics monitor.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Period of the in-flight/pool-size sampler, in milliseconds.
    /// `0` disables sampling.
    #[serde(default = "default_sampling_period")]
    pub sampling_period_ms: u64,
}

fn default_true() -> bool {
    true
}

fn default_sampling_period() -> u64 {
    100
}

impl Default for MonitoringConfig {
    fn default() -> Self {
        Self { enabled: true, sampling_period_ms: default_sampling_period() }
    }
}

/// Retry policy for forwarded RPCs (applied only to RPCs declared
/// idempotent, and only to retryable failures — see `MargoError::is_retryable`).
///
/// Not `Eq`: `jitter` is an `f64` (PartialEq is all the round-trip tests
/// need).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Total attempts per logical call (1 = no retries).
    #[serde(default = "default_max_attempts")]
    pub max_attempts: u32,
    /// First backoff delay; doubles each retry (before jitter).
    #[serde(default = "default_base_backoff")]
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    #[serde(default = "default_max_backoff")]
    pub max_backoff_ms: u64,
    /// Jitter fraction in `[0,1]`: each backoff is multiplied by a value
    /// drawn uniformly from `[1-jitter, 1+jitter]` with the seeded RNG.
    #[serde(default = "default_jitter")]
    pub jitter: f64,
    /// Seed for the jitter RNG (deterministic backoff schedules in tests).
    #[serde(default)]
    pub seed: u64,
    /// Retry budget: at most this many *retries* (attempts beyond the
    /// first) per sliding one-second window, across all RPCs. Protects
    /// against retry storms when a whole service degrades. `0` disables
    /// retries outright.
    #[serde(default = "default_retry_budget")]
    pub budget_per_sec: u32,
}

fn default_max_attempts() -> u32 {
    4
}

fn default_base_backoff() -> u64 {
    5
}

fn default_max_backoff() -> u64 {
    500
}

fn default_jitter() -> f64 {
    0.2
}

fn default_retry_budget() -> u32 {
    64
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: default_max_attempts(),
            base_backoff_ms: default_base_backoff(),
            max_backoff_ms: default_max_backoff(),
            jitter: default_jitter(),
            seed: 0,
            budget_per_sec: default_retry_budget(),
        }
    }
}

/// Circuit-breaker settings for the per-(address, provider) breakers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Master switch; disabled breakers never reject calls.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Consecutive transport-class failures that trip the breaker open.
    #[serde(default = "default_failure_threshold")]
    pub failure_threshold: u32,
    /// Time the breaker stays open before admitting one half-open probe,
    /// in milliseconds.
    #[serde(default = "default_probe_interval")]
    pub probe_interval_ms: u64,
}

fn default_failure_threshold() -> u32 {
    8
}

fn default_probe_interval() -> u64 {
    200
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            failure_threshold: default_failure_threshold(),
            probe_interval_ms: default_probe_interval(),
        }
    }
}

/// Full Margo configuration. Not `Eq` because [`RetryConfig`] carries an
/// `f64` jitter fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MargoConfig {
    /// Pool/xstream topology (Listing 2's `argobots` section). Defaults
    /// to the primary-only topology when omitted, like `margo_init`.
    #[serde(default = "AbtConfig::primary_only")]
    pub argobots: AbtConfig,
    /// Name of the pool associated with the network progress loop.
    #[serde(default = "default_progress_pool")]
    pub progress_pool: String,
    /// Pool used for RPC handlers registered without an explicit pool.
    #[serde(default = "default_rpc_pool")]
    pub default_rpc_pool: String,
    /// Default timeout for forwarded RPCs, in milliseconds.
    #[serde(default = "default_rpc_timeout")]
    pub rpc_timeout_ms: u64,
    /// Monitoring settings.
    #[serde(default)]
    pub monitoring: MonitoringConfig,
    /// Retry policy for idempotent forwards.
    #[serde(default)]
    pub retry: RetryConfig,
    /// Circuit-breaker settings.
    #[serde(default)]
    pub breaker: BreakerConfig,
}

fn default_progress_pool() -> String {
    "__primary__".into()
}

fn default_rpc_pool() -> String {
    "__primary__".into()
}

fn default_rpc_timeout() -> u64 {
    30_000
}

impl Default for MargoConfig {
    fn default() -> Self {
        Self {
            argobots: AbtConfig::primary_only(),
            progress_pool: default_progress_pool(),
            default_rpc_pool: default_rpc_pool(),
            rpc_timeout_ms: default_rpc_timeout(),
            monitoring: MonitoringConfig::default(),
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl MargoConfig {
    /// Parses and validates a JSON document.
    pub fn from_json(json: &str) -> Result<Self, MargoError> {
        let config: MargoConfig =
            serde_json::from_str(json).map_err(|e| MargoError::BadConfig(e.to_string()))?;
        config.validate()?;
        Ok(config)
    }

    /// Structural validation: delegate to Argobots, then check that the
    /// progress and default pools exist.
    pub fn validate(&self) -> Result<(), MargoError> {
        self.argobots.validate()?;
        for (role, pool) in
            [("progress_pool", &self.progress_pool), ("default_rpc_pool", &self.default_rpc_pool)]
        {
            if !self.argobots.pools.iter().any(|p| &p.name == pool) {
                return Err(MargoError::BadConfig(format!(
                    "{role} '{pool}' is not defined in the argobots section"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MargoConfig::default().validate().unwrap();
    }

    #[test]
    fn parses_listing2_style_document() {
        let json = r#"
        { "argobots": {
            "pools": [ { "name": "MyPoolX", "type": "fifo_wait", "access": "mpmc" },
                       { "name": "Z", "type": "fifo_wait" } ],
            "xstreams": [ { "name": "MyES0",
                            "scheduler": { "type": "basic", "pools": ["MyPoolX"] } },
                          { "name": "ES1",
                            "scheduler": { "type": "basic_wait", "pools": ["Z"] } } ] },
          "progress_pool": "Z",
          "default_rpc_pool": "MyPoolX" }
        "#;
        let config = MargoConfig::from_json(json).unwrap();
        assert_eq!(config.progress_pool, "Z");
        assert_eq!(config.default_rpc_pool, "MyPoolX");
        assert_eq!(config.rpc_timeout_ms, 30_000);
        assert!(config.monitoring.enabled);
    }

    #[test]
    fn rejects_missing_progress_pool() {
        let json = r#"
        { "argobots": { "pools": [ { "name": "p" } ],
                        "xstreams": [ { "name": "es", "scheduler": { "pools": ["p"] } } ] },
          "progress_pool": "ghost", "default_rpc_pool": "p" }
        "#;
        let err = MargoConfig::from_json(json).unwrap_err();
        assert!(matches!(err, MargoError::BadConfig(_)));
    }

    #[test]
    fn round_trips() {
        let config = MargoConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back = MargoConfig::from_json(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn retry_and_breaker_defaults() {
        let config = MargoConfig::from_json("{}").unwrap();
        assert_eq!(config.retry.max_attempts, 4);
        assert_eq!(config.retry.budget_per_sec, 64);
        assert!(config.breaker.enabled);
        assert_eq!(config.breaker.failure_threshold, 8);
        assert_eq!(config.breaker.probe_interval_ms, 200);
    }

    #[test]
    fn retry_and_breaker_sections_parse() {
        let json = r#"
        { "retry": { "max_attempts": 2, "base_backoff_ms": 1, "jitter": 0.0, "seed": 42 },
          "breaker": { "enabled": false, "failure_threshold": 3, "probe_interval_ms": 50 } }
        "#;
        let config = MargoConfig::from_json(json).unwrap();
        assert_eq!(config.retry.max_attempts, 2);
        assert_eq!(config.retry.seed, 42);
        assert!(!config.breaker.enabled);
        assert_eq!(config.breaker.failure_threshold, 3);
    }

    #[test]
    fn sampling_can_be_disabled() {
        let json = r#"{ "monitoring": { "enabled": false, "sampling_period_ms": 0 } }"#;
        let config = MargoConfig::from_json(json).unwrap();
        assert!(!config.monitoring.enabled);
        assert_eq!(config.monitoring.sampling_period_ms, 0);
    }
}
