//! Margo configuration document.
//!
//! The JSON shape extends Listing 2 with the fields Margo adds around the
//! `argobots` section: which pool the progress loop is associated with,
//! the default handler pool, RPC timeout, and monitoring settings.

use serde::{Deserialize, Serialize};

use mochi_argobots::AbtConfig;

use crate::error::MargoError;

/// Monitoring settings (§4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitoringConfig {
    /// Master switch for the default statistics monitor.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Period of the in-flight/pool-size sampler, in milliseconds.
    /// `0` disables sampling.
    #[serde(default = "default_sampling_period")]
    pub sampling_period_ms: u64,
}

fn default_true() -> bool {
    true
}

fn default_sampling_period() -> u64 {
    100
}

impl Default for MonitoringConfig {
    fn default() -> Self {
        Self { enabled: true, sampling_period_ms: default_sampling_period() }
    }
}

/// Full Margo configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MargoConfig {
    /// Pool/xstream topology (Listing 2's `argobots` section). Defaults
    /// to the primary-only topology when omitted, like `margo_init`.
    #[serde(default = "AbtConfig::primary_only")]
    pub argobots: AbtConfig,
    /// Name of the pool associated with the network progress loop.
    #[serde(default = "default_progress_pool")]
    pub progress_pool: String,
    /// Pool used for RPC handlers registered without an explicit pool.
    #[serde(default = "default_rpc_pool")]
    pub default_rpc_pool: String,
    /// Default timeout for forwarded RPCs, in milliseconds.
    #[serde(default = "default_rpc_timeout")]
    pub rpc_timeout_ms: u64,
    /// Monitoring settings.
    #[serde(default)]
    pub monitoring: MonitoringConfig,
}

fn default_progress_pool() -> String {
    "__primary__".into()
}

fn default_rpc_pool() -> String {
    "__primary__".into()
}

fn default_rpc_timeout() -> u64 {
    30_000
}

impl Default for MargoConfig {
    fn default() -> Self {
        Self {
            argobots: AbtConfig::primary_only(),
            progress_pool: default_progress_pool(),
            default_rpc_pool: default_rpc_pool(),
            rpc_timeout_ms: default_rpc_timeout(),
            monitoring: MonitoringConfig::default(),
        }
    }
}

impl MargoConfig {
    /// Parses and validates a JSON document.
    pub fn from_json(json: &str) -> Result<Self, MargoError> {
        let config: MargoConfig =
            serde_json::from_str(json).map_err(|e| MargoError::BadConfig(e.to_string()))?;
        config.validate()?;
        Ok(config)
    }

    /// Structural validation: delegate to Argobots, then check that the
    /// progress and default pools exist.
    pub fn validate(&self) -> Result<(), MargoError> {
        self.argobots.validate()?;
        for (role, pool) in
            [("progress_pool", &self.progress_pool), ("default_rpc_pool", &self.default_rpc_pool)]
        {
            if !self.argobots.pools.iter().any(|p| &p.name == pool) {
                return Err(MargoError::BadConfig(format!(
                    "{role} '{pool}' is not defined in the argobots section"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        MargoConfig::default().validate().unwrap();
    }

    #[test]
    fn parses_listing2_style_document() {
        let json = r#"
        { "argobots": {
            "pools": [ { "name": "MyPoolX", "type": "fifo_wait", "access": "mpmc" },
                       { "name": "Z", "type": "fifo_wait" } ],
            "xstreams": [ { "name": "MyES0",
                            "scheduler": { "type": "basic", "pools": ["MyPoolX"] } },
                          { "name": "ES1",
                            "scheduler": { "type": "basic_wait", "pools": ["Z"] } } ] },
          "progress_pool": "Z",
          "default_rpc_pool": "MyPoolX" }
        "#;
        let config = MargoConfig::from_json(json).unwrap();
        assert_eq!(config.progress_pool, "Z");
        assert_eq!(config.default_rpc_pool, "MyPoolX");
        assert_eq!(config.rpc_timeout_ms, 30_000);
        assert!(config.monitoring.enabled);
    }

    #[test]
    fn rejects_missing_progress_pool() {
        let json = r#"
        { "argobots": { "pools": [ { "name": "p" } ],
                        "xstreams": [ { "name": "es", "scheduler": { "pools": ["p"] } } ] },
          "progress_pool": "ghost", "default_rpc_pool": "p" }
        "#;
        let err = MargoConfig::from_json(json).unwrap_err();
        assert!(matches!(err, MargoError::BadConfig(_)));
    }

    #[test]
    fn round_trips() {
        let config = MargoConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back = MargoConfig::from_json(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn sampling_can_be_disabled() {
        let json = r#"{ "monitoring": { "enabled": false, "sampling_period_ms": 0 } }"#;
        let config = MargoConfig::from_json(json).unwrap();
        assert!(!config.monitoring.enabled);
        assert_eq!(config.monitoring.sampling_period_ms, 0);
    }
}
