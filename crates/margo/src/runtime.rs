//! The Margo runtime: one simulated Mochi process.
//!
//! Owns the process's endpoint, its Argobots topology, the RPC handler
//! registry, the progress loop, and the monitoring pipeline. The dynamic
//! capabilities of the paper live here:
//!
//! * §4 performance introspection: every RPC lifecycle step is emitted to
//!   the installed [`Monitor`]s; [`MargoRuntime::monitoring_json`] is the
//!   runtime query API and `finalize` returns the final dump;
//! * §5 online reconfiguration: [`MargoRuntime::add_pool_from_json`],
//!   [`MargoRuntime::remove_pool`], [`MargoRuntime::add_xstream_from_json`]
//!   and [`MargoRuntime::remove_xstream`] mutate the live topology under
//!   the validity rules the paper describes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use serde_json::Value;

use mochi_argobots::{AbtRuntime, Pool, PoolConfig, Ult, XstreamConfig};
use mochi_mercury::{
    Address, BulkAccess, BulkHandle, CallContext, Endpoint, Fabric, Incoming, RequestInfo,
    ResponseStatus,
};
use mochi_util::ordered_lock::{rank, OrderedMutex, OrderedRwLock};
use mochi_util::time::monotonic_seconds;

use crate::breaker::{Admission, BreakerRegistry};
use crate::config::MargoConfig;
use crate::error::MargoError;
use crate::retry::RetryPolicy;
use crate::monitoring::{
    BulkDirection, CompositeMonitor, Monitor, MonitoringEvent, RpcIdentity, RuntimeSample,
    StatisticsMonitor,
};
use crate::rpc::{rpc_id_for_name, RpcContext, RpcHandler};

/// How often the progress loop wakes to check for shutdown.
const PROGRESS_TICK: Duration = Duration::from_millis(10);

/// Interns an RPC name as an `Arc<str>` in a per-thread cache, so the
/// forward hot path does not allocate a fresh `Arc<str>` for every call of
/// the same RPC. Thread-local to stay lock-free (the lock-rank graph gains
/// no edges from this).
fn cached_rpc_name(rpc_name: &str) -> Arc<str> {
    thread_local! {
        static NAMES: std::cell::RefCell<HashMap<String, Arc<str>>> =
            std::cell::RefCell::new(HashMap::new());
    }
    NAMES.with(|cell| {
        let mut names = cell.borrow_mut();
        if let Some(name) = names.get(rpc_name) {
            Arc::clone(name)
        } else {
            let name: Arc<str> = Arc::from(rpc_name);
            names.insert(rpc_name.to_string(), Arc::clone(&name));
            name
        }
    })
}

struct Registration {
    name: Arc<str>,
    pool: String,
    handler: RpcHandler,
}

struct Meta {
    progress_pool: String,
    default_rpc_pool: String,
    rpc_timeout: Duration,
    monitoring_enabled: bool,
    sampling_period: Duration,
}

struct Inner {
    endpoint: Endpoint,
    fabric: Fabric,
    abt: AbtRuntime,
    meta: OrderedMutex<Meta>,
    handlers: OrderedRwLock<HashMap<(u64, u16), Arc<Registration>>>,
    monitor: OrderedRwLock<Arc<CompositeMonitor>>,
    stats: Option<Arc<StatisticsMonitor>>,
    retry: RetryPolicy,
    breakers: BreakerRegistry,
    /// RPC ids declared safe to retry (see
    /// [`MargoRuntime::declare_idempotent`]). Everything else is
    /// never auto-retried.
    idempotent: OrderedRwLock<HashSet<u64>>,
    in_flight_client: AtomicI64,
    in_flight_server: AtomicI64,
    finalized: AtomicBool,
    threads: OrderedMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Handle to a running Margo instance. Cheap to clone; all clones refer
/// to the same process.
#[derive(Clone)]
pub struct MargoRuntime {
    inner: Arc<Inner>,
}

impl MargoRuntime {
    /// Boots a Margo instance at `addr` on `fabric` with `config`
    /// (`margo_init_ext` equivalent).
    pub fn init(fabric: &Fabric, addr: Address, config: &MargoConfig) -> Result<Self, MargoError> {
        config.validate()?;
        let abt = AbtRuntime::from_config(&config.argobots)?;
        let endpoint = fabric.register(addr);
        let stats = config.monitoring.enabled.then(|| Arc::new(StatisticsMonitor::new()));
        let mut composite = CompositeMonitor::new();
        if let Some(stats) = &stats {
            composite.push(Arc::clone(stats) as Arc<dyn Monitor>);
        }
        let inner = Arc::new(Inner {
            endpoint,
            fabric: fabric.clone(),
            abt,
            meta: OrderedMutex::new(
                rank::MARGO_META,
                "margo.meta",
                Meta {
                    progress_pool: config.progress_pool.clone(),
                    default_rpc_pool: config.default_rpc_pool.clone(),
                    rpc_timeout: Duration::from_millis(config.rpc_timeout_ms),
                    monitoring_enabled: config.monitoring.enabled,
                    sampling_period: Duration::from_millis(config.monitoring.sampling_period_ms),
                },
            ),
            handlers: OrderedRwLock::new(rank::MARGO_HANDLERS, "margo.handlers", HashMap::new()),
            monitor: OrderedRwLock::new(rank::MARGO_MONITOR, "margo.monitor", Arc::new(composite)),
            stats,
            retry: RetryPolicy::new(config.retry.clone()),
            breakers: BreakerRegistry::new(config.breaker.clone()),
            idempotent: OrderedRwLock::new(
                rank::MARGO_IDEMPOTENT,
                "margo.idempotent",
                HashSet::new(),
            ),
            in_flight_client: AtomicI64::new(0),
            in_flight_server: AtomicI64::new(0),
            finalized: AtomicBool::new(false),
            threads: OrderedMutex::new(rank::MARGO_THREADS, "margo.threads", Vec::new()),
        });
        let runtime = Self { inner };
        runtime.spawn_progress_loop()?;
        runtime.spawn_sampler()?;
        Ok(runtime)
    }

    /// Boots with the default configuration.
    pub fn init_default(fabric: &Fabric, addr: Address) -> Result<Self, MargoError> {
        Self::init(fabric, addr, &MargoConfig::default())
    }

    fn spawn_progress_loop(&self) -> Result<(), MargoError> {
        let this = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("margo-progress-{}", self.address()))
            .spawn(move || {
                while !this.inner.finalized.load(Ordering::SeqCst) {
                    match this.inner.endpoint.progress(PROGRESS_TICK) {
                        Ok(Some(incoming)) => this.dispatch(incoming),
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| MargoError::Spawn(format!("progress loop: {e}")))?;
        self.inner.threads.lock().push(handle);
        Ok(())
    }

    fn spawn_sampler(&self) -> Result<(), MargoError> {
        let (enabled, period) = {
            let meta = self.inner.meta.lock();
            (meta.monitoring_enabled, meta.sampling_period)
        };
        if !enabled || period.is_zero() {
            return Ok(());
        }
        let this = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("margo-sampler-{}", self.address()))
            .spawn(move || {
                while !this.inner.finalized.load(Ordering::SeqCst) {
                    std::thread::sleep(period);
                    let sample = RuntimeSample {
                        time_s: monotonic_seconds(),
                        in_flight_client: this.inner.in_flight_client.load(Ordering::Relaxed),
                        in_flight_server: this.inner.in_flight_server.load(Ordering::Relaxed),
                        pools: this.inner.abt.pool_stats(),
                    };
                    this.emit(&MonitoringEvent::Sample(sample));
                }
            })
            .map_err(|e| MargoError::Spawn(format!("sampler: {e}")))?;
        self.inner.threads.lock().push(handle);
        Ok(())
    }

    /// This process's address.
    pub fn address(&self) -> Address {
        self.inner.endpoint.address().clone()
    }

    /// The fabric this process is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.inner.fabric
    }

    /// The underlying endpoint (advanced uses: raw bulk exposure).
    pub fn endpoint(&self) -> &Endpoint {
        &self.inner.endpoint
    }

    /// The Argobots runtime (read-mostly; use the `add_*`/`remove_*`
    /// methods on `MargoRuntime` for reconfiguration so Margo-level
    /// validity checks run).
    pub fn abt(&self) -> &AbtRuntime {
        &self.inner.abt
    }

    fn ensure_live(&self) -> Result<(), MargoError> {
        if self.inner.finalized.load(Ordering::SeqCst) {
            Err(MargoError::Finalized)
        } else {
            Ok(())
        }
    }

    pub(crate) fn identity_for(
        &self,
        rpc_id: u64,
        name: &Arc<str>,
        provider_id: u16,
        context: CallContext,
    ) -> RpcIdentity {
        RpcIdentity { rpc_id, rpc_name: Arc::clone(name), provider_id, context }
    }

    pub(crate) fn emit(&self, event: &MonitoringEvent) {
        if self.inner.meta.lock().monitoring_enabled {
            let monitor = Arc::clone(&*self.inner.monitor.read());
            monitor.observe(event);
        }
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a raw handler for `(rpc_name, provider_id)`, dispatching
    /// its ULTs into `pool` (or the configured default pool).
    pub fn register(
        &self,
        rpc_name: &str,
        provider_id: u16,
        pool: Option<&str>,
        handler: RpcHandler,
    ) -> Result<u64, MargoError> {
        self.ensure_live()?;
        let pool_name = match pool {
            Some(p) => p.to_string(),
            None => self.inner.meta.lock().default_rpc_pool.clone(),
        };
        if self.inner.abt.find_pool(&pool_name).is_none() {
            return Err(MargoError::PoolNotFound(pool_name));
        }
        let rpc_id = rpc_id_for_name(rpc_name);
        let mut handlers = self.inner.handlers.write();
        if handlers.contains_key(&(rpc_id, provider_id)) {
            return Err(MargoError::AlreadyRegistered {
                rpc: rpc_name.to_string(),
                provider_id,
            });
        }
        handlers.insert(
            (rpc_id, provider_id),
            Arc::new(Registration { name: Arc::from(rpc_name), pool: pool_name, handler }),
        );
        Ok(rpc_id)
    }

    /// Registers a typed handler: arguments are decoded, the closure's
    /// `Ok` output is encoded and sent back, `Err` becomes an
    /// application-level error response. This is the shape component
    /// providers use.
    pub fn register_typed<I, O, F>(
        &self,
        rpc_name: &str,
        provider_id: u16,
        pool: Option<&str>,
        f: F,
    ) -> Result<u64, MargoError>
    where
        I: DeserializeOwned,
        O: Serialize,
        F: Fn(I, &RpcContext) -> Result<O, String> + Send + Sync + 'static,
    {
        let handler: RpcHandler = Arc::new(move |ctx: RpcContext| {
            match ctx.args::<I>() {
                Ok(input) => match f(input, &ctx) {
                    Ok(output) => {
                        let _ = ctx.respond(&output);
                    }
                    Err(message) => {
                        let _ = ctx.respond_err(message);
                    }
                },
                Err(e) => {
                    let _ = ctx.respond_err(format!("argument decoding failed: {e}"));
                }
            }
        });
        self.register(rpc_name, provider_id, pool, handler)
    }

    /// Removes a registration.
    pub fn deregister(&self, rpc_name: &str, provider_id: u16) -> Result<(), MargoError> {
        let rpc_id = rpc_id_for_name(rpc_name);
        match self.inner.handlers.write().remove(&(rpc_id, provider_id)) {
            Some(_) => Ok(()),
            None => Err(MargoError::NotRegistered { rpc: rpc_name.to_string(), provider_id }),
        }
    }

    /// Names and pools of all registered RPCs: `(name, provider_id, pool)`.
    pub fn registrations(&self) -> Vec<(String, u16, String)> {
        let mut list: Vec<(String, u16, String)> = self
            .inner
            .handlers
            .read()
            .iter()
            .map(|((_, provider), reg)| (reg.name.to_string(), *provider, reg.pool.clone()))
            .collect();
        list.sort();
        list
    }

    // ------------------------------------------------------------------
    // Dispatch (server side)
    // ------------------------------------------------------------------

    fn dispatch(&self, incoming: Incoming) {
        let (request, oneway) = match incoming {
            Incoming::Request(request) => (request, false),
            Incoming::OneWay(ow) => (
                RequestInfo {
                    source: ow.source,
                    rpc_id: ow.rpc_id,
                    provider_id: ow.provider_id,
                    xid: 0,
                    context: CallContext::TOP_LEVEL,
                    payload: ow.payload,
                },
                true,
            ),
        };
        let registration = {
            let handlers = self.inner.handlers.read();
            handlers.get(&(request.rpc_id, request.provider_id)).cloned()
        };
        let Some(registration) = registration else {
            if !oneway {
                let _ = self.inner.endpoint.respond(
                    &request,
                    ResponseStatus::NoHandler,
                    Bytes::new(),
                );
            }
            return;
        };
        let identity = self.identity_for(
            request.rpc_id,
            &registration.name,
            request.provider_id,
            request.context,
        );
        self.emit(&MonitoringEvent::RequestReceived {
            identity: identity.clone(),
            source: request.source.clone(),
            payload_size: request.payload.len(),
            pool: registration.pool.clone(),
        });
        self.inner.in_flight_server.fetch_add(1, Ordering::Relaxed);
        let received_at = Instant::now();
        let this = self.clone();
        let reg = Arc::clone(&registration);
        let ult_name = registration.name.to_string();
        let ult = Ult::new(ult_name, move || {
            let source = request.source.clone();
            let queue_wait_s = received_at.elapsed().as_secs_f64();
            this.emit(&MonitoringEvent::HandlerStart {
                identity: identity.clone(),
                source: source.clone(),
                queue_wait_s,
            });
            let ctx = RpcContext {
                margo: this.clone(),
                request,
                rpc_name: Arc::clone(&reg.name),
                responded: AtomicBool::new(false),
                oneway,
            };
            let start = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (reg.handler)(ctx)
            }));
            // `ctx` moved into the handler; on panic we can no longer tell
            // whether it responded. Mercury's correlation map simply drops
            // duplicate xids, so a best-effort error response is safe: if
            // the handler already answered, the waiter is gone and the
            // response is ignored.
            let ok = outcome.is_ok();
            this.emit(&MonitoringEvent::HandlerEnd {
                identity,
                source,
                duration_s: start.elapsed().as_secs_f64(),
                ok,
            });
            this.inner.in_flight_server.fetch_sub(1, Ordering::Relaxed);
        });
        if self.inner.abt.submit(&registration.pool, ult).is_err() && !oneway {
            // The pool disappeared between registration and dispatch
            // (shutdown race): report rather than hang the caller.
            // The request was moved into the ULT; nothing to respond to.
            self.inner.in_flight_server.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // ------------------------------------------------------------------
    // Forward (client side)
    // ------------------------------------------------------------------

    /// Calls `(rpc_name, provider_id)` at `dest` with the default timeout
    /// from top-level context.
    pub fn forward<I: Serialize, O: DeserializeOwned>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
    ) -> Result<O, MargoError> {
        self.forward_with_context(dest, rpc_name, provider_id, input, CallContext::TOP_LEVEL)
    }

    /// Calls with an explicit calling context (used by [`RpcContext`] for
    /// nested RPCs so monitoring can attribute them to their parent).
    pub fn forward_with_context<I: Serialize, O: DeserializeOwned>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
        context: CallContext,
    ) -> Result<O, MargoError> {
        let timeout = self.inner.meta.lock().rpc_timeout;
        self.forward_full(dest, rpc_name, provider_id, input, context, timeout)
    }

    /// Calls with an explicit timeout.
    pub fn forward_timeout<I: Serialize, O: DeserializeOwned>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
        timeout: Duration,
    ) -> Result<O, MargoError> {
        self.forward_full(dest, rpc_name, provider_id, input, CallContext::TOP_LEVEL, timeout)
    }

    /// Fully explicit forward.
    pub fn forward_full<I: Serialize, O: DeserializeOwned>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
        context: CallContext,
        timeout: Duration,
    ) -> Result<O, MargoError> {
        self.ensure_live()?;
        let payload = crate::codec::encode(input)?;
        let response = self.forward_bytes(dest, rpc_name, provider_id, payload, context, timeout)?;
        crate::codec::decode(&response)
    }

    /// Raw-payload forward for data-plane RPCs using [`crate::frame`]
    /// encoding (or any custom encoding): sends `payload` verbatim and
    /// returns the raw response payload. Fully monitored like
    /// [`MargoRuntime::forward`].
    pub fn forward_raw(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        payload: Bytes,
        context: CallContext,
        timeout: Duration,
    ) -> Result<Bytes, MargoError> {
        self.forward_bytes(dest, rpc_name, provider_id, payload, context, timeout)
    }

    /// Shared forward core: one `ForwardStart`/`ForwardEnd` pair per
    /// *logical* call, with the transport attempt loop (retry policy,
    /// circuit breakers, deadline propagation) in between.
    fn forward_bytes(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        payload: Bytes,
        context: CallContext,
        timeout: Duration,
    ) -> Result<Bytes, MargoError> {
        self.ensure_live()?;
        let rpc_id = rpc_id_for_name(rpc_name);
        let name = cached_rpc_name(rpc_name);
        let identity = self.identity_for(rpc_id, &name, provider_id, context);
        // One shared destination for monitoring events and the breaker
        // key; the request itself borrows `dest`, so this is the only
        // deep clone per call.
        let dest_shared = Arc::new(dest.clone());
        self.emit(&MonitoringEvent::ForwardStart {
            identity: identity.clone(),
            dest: Arc::clone(&dest_shared),
            payload_size: payload.len(),
        });
        self.inner.in_flight_client.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let retryable_rpc = self.is_idempotent_rpc(rpc_id);
        let mut attempts = 0u32;
        let result = loop {
            attempts += 1;
            match self.forward_attempt(
                &dest_shared,
                rpc_id,
                rpc_name,
                provider_id,
                payload.clone(),
                context,
                timeout,
            ) {
                Ok(response) => break Ok(response),
                Err(err) => {
                    // Only idempotent RPCs may be re-sent, and only for
                    // failures where the request may not have executed
                    // (transport-class, or no handler registered yet).
                    // Handler errors are application outcomes; deadline
                    // and breaker rejections end the loop immediately.
                    if !(retryable_rpc
                        && err.is_retryable()
                        && self.inner.retry.admit_retry(attempts))
                    {
                        break Err(err);
                    }
                    let backoff = self.inner.retry.backoff(attempts);
                    if let Some(deadline) = context.deadline {
                        if Instant::now() + backoff >= deadline {
                            break Err(err);
                        }
                    }
                    std::thread::sleep(backoff);
                }
            }
        };
        self.inner.in_flight_client.fetch_sub(1, Ordering::Relaxed);
        self.emit(&MonitoringEvent::ForwardEnd {
            identity,
            dest: dest_shared,
            duration_s: start.elapsed().as_secs_f64(),
            ok: result.is_ok(),
            error: result.as_ref().err().map(MargoError::kind),
            attempts,
        });
        result
    }

    /// One transport attempt: breaker admission, deadline clamping, send,
    /// wait, breaker bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn forward_attempt(
        &self,
        dest: &Arc<Address>,
        rpc_id: u64,
        rpc_name: &str,
        provider_id: u16,
        payload: Bytes,
        context: CallContext,
        timeout: Duration,
    ) -> Result<Bytes, MargoError> {
        let now = Instant::now();
        // Clamp the wait to the remaining deadline budget, so a nested
        // chain with a 100 ms top-level deadline can never take
        // 3 × 100 ms: each hop inherits only what its parent has left.
        let effective = match context.deadline {
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(now);
                if remaining.is_zero() {
                    return Err(MargoError::DeadlineExceeded);
                }
                timeout.min(remaining)
            }
            None => timeout,
        };
        match self.inner.breakers.admit(dest, provider_id) {
            Admission::Allowed | Admission::Probe => {}
            Admission::Rejected => {
                return Err(MargoError::BreakerOpen { dest: dest.to_string(), provider_id });
            }
        }
        // Propagate the *absolute* deadline so handlers issuing nested
        // RPCs (via `RpcContext::nested_context`) inherit the remaining
        // budget rather than restarting the clock.
        let attempt_deadline = now + effective;
        let wire_context = context
            .with_deadline(Some(context.deadline.map_or(attempt_deadline, |d| d.min(attempt_deadline))));
        let outcome = (|| {
            let pending = self.inner.endpoint.send_request(
                dest,
                rpc_id,
                provider_id,
                wire_context,
                payload,
            )?;
            pending.wait(effective)
        })();
        match outcome {
            Ok(response) => {
                // The network round-tripped: the breaker closes whatever
                // the application-level status says.
                self.inner.breakers.record_success(dest, provider_id);
                match response.status {
                    ResponseStatus::Ok => Ok(response.payload),
                    ResponseStatus::Error(message) => Err(MargoError::Handler(message)),
                    ResponseStatus::NoHandler => {
                        Err(MargoError::NoHandler { rpc: rpc_name.to_string(), provider_id })
                    }
                }
            }
            Err(err) => {
                let err = MargoError::from(err);
                if err.is_retryable() {
                    // Transport-class failure (timeout / unreachable):
                    // counts against the breaker threshold.
                    self.inner.breakers.record_failure(dest, provider_id);
                }
                // A wait that timed out because the *deadline* clipped it
                // is a budget exhaustion, not a transport verdict.
                if err.is_timeout() {
                    if let Some(deadline) = context.deadline {
                        if Instant::now() >= deadline {
                            return Err(MargoError::DeadlineExceeded);
                        }
                    }
                }
                Err(err)
            }
        }
    }

    /// Declares an RPC idempotent: safe for the runtime to re-send on
    /// transport-class failures. RPCs never declared are never
    /// auto-retried — a non-idempotent call observes exactly one
    /// server-side invocation per forward.
    pub fn declare_idempotent(&self, rpc_name: &str) {
        self.inner.idempotent.write().insert(rpc_id_for_name(rpc_name));
    }

    /// Whether `rpc_name` has been declared idempotent.
    pub fn is_idempotent(&self, rpc_name: &str) -> bool {
        self.is_idempotent_rpc(rpc_id_for_name(rpc_name))
    }

    fn is_idempotent_rpc(&self, rpc_id: u64) -> bool {
        self.inner.idempotent.read().contains(&rpc_id)
    }

    /// The circuit-breaker registry (chaos tests assert convergence on
    /// it; the monitoring JSON embeds its dump as the `breakers` section).
    pub fn breakers(&self) -> &BreakerRegistry {
        &self.inner.breakers
    }

    /// Fire-and-forget notification to `(rpc_name, provider_id)` at `dest`.
    pub fn notify<I: Serialize>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
    ) -> Result<(), MargoError> {
        self.ensure_live()?;
        let payload = crate::codec::encode(input)?;
        let rpc_id = rpc_id_for_name(rpc_name);
        self.inner.endpoint.send_oneway(dest, rpc_id, provider_id, payload)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk transfers
    // ------------------------------------------------------------------

    /// Exposes an in-memory buffer for remote bulk access.
    pub fn expose_bulk(&self, buffer: Arc<Mutex<Vec<u8>>>, access: BulkAccess) -> BulkHandle {
        self.inner.endpoint.expose_bulk(buffer, access)
    }

    /// Exposes a file region for remote bulk access (REMI's mmap path).
    pub fn expose_bulk_file(
        &self,
        path: impl Into<std::path::PathBuf>,
        size: usize,
        access: BulkAccess,
    ) -> std::io::Result<BulkHandle> {
        self.inner.endpoint.expose_bulk_file(path, size, access)
    }

    /// Revokes a bulk registration.
    pub fn unexpose_bulk(&self, handle: &BulkHandle) {
        self.inner.endpoint.unexpose_bulk(handle);
    }

    /// Pulls remote bulk data; records the transfer in monitoring.
    pub fn bulk_pull(
        &self,
        remote: &BulkHandle,
        remote_offset: usize,
        local: &BulkHandle,
        local_offset: usize,
        len: usize,
    ) -> Result<(), MargoError> {
        let start = Instant::now();
        let result = self.inner.endpoint.bulk_pull(remote, remote_offset, local, local_offset, len);
        self.emit(&MonitoringEvent::Bulk {
            direction: BulkDirection::Pull,
            peer: remote.owner.clone(),
            size: len,
            duration_s: start.elapsed().as_secs_f64(),
        });
        result.map_err(MargoError::from)
    }

    /// Pushes local bulk data; records the transfer in monitoring.
    pub fn bulk_push(
        &self,
        local: &BulkHandle,
        local_offset: usize,
        remote: &BulkHandle,
        remote_offset: usize,
        len: usize,
    ) -> Result<(), MargoError> {
        let start = Instant::now();
        let result = self.inner.endpoint.bulk_push(local, local_offset, remote, remote_offset, len);
        self.emit(&MonitoringEvent::Bulk {
            direction: BulkDirection::Push,
            peer: remote.owner.clone(),
            size: len,
            duration_s: start.elapsed().as_secs_f64(),
        });
        result.map_err(MargoError::from)
    }

    // ------------------------------------------------------------------
    // Online reconfiguration (§5, Observation 2)
    // ------------------------------------------------------------------

    /// `margo_find_pool_by_name`.
    pub fn find_pool_by_name(&self, name: &str) -> Option<Arc<Pool>> {
        self.inner.abt.find_pool(name)
    }

    /// `margo_add_pool_from_json`: adds a pool described by a JSON object
    /// (`{"name": …, "type": …, "access": …}`).
    pub fn add_pool_from_json(&self, json: &str) -> Result<(), MargoError> {
        let config: PoolConfig =
            serde_json::from_str(json).map_err(|e| MargoError::BadConfig(e.to_string()))?;
        self.add_pool(config)
    }

    /// Adds a pool from a parsed configuration.
    pub fn add_pool(&self, config: PoolConfig) -> Result<(), MargoError> {
        self.ensure_live()?;
        self.inner.abt.add_pool(config)?;
        Ok(())
    }

    /// Removes a pool, enforcing Margo-level validity on top of the
    /// Argobots rules: the progress pool and pools with registered RPC
    /// handlers cannot be removed.
    pub fn remove_pool(&self, name: &str) -> Result<(), MargoError> {
        self.ensure_live()?;
        {
            let meta = self.inner.meta.lock();
            if meta.progress_pool == name {
                return Err(MargoError::PoolBusy {
                    pool: name.to_string(),
                    reason: "it is the progress pool".into(),
                });
            }
        }
        let users: Vec<String> = self
            .inner
            .handlers
            .read()
            .values()
            .filter(|r| r.pool == name)
            .map(|r| r.name.to_string())
            .collect();
        if !users.is_empty() {
            return Err(MargoError::PoolBusy {
                pool: name.to_string(),
                reason: format!("RPC handler(s) {users:?} dispatch into it"),
            });
        }
        self.inner.abt.remove_pool(name)?;
        Ok(())
    }

    /// Adds and starts an xstream described by a JSON object
    /// (`{"name": …, "scheduler": {"type": …, "pools": […]}}`).
    pub fn add_xstream_from_json(&self, json: &str) -> Result<(), MargoError> {
        let config: XstreamConfig =
            serde_json::from_str(json).map_err(|e| MargoError::BadConfig(e.to_string()))?;
        self.add_xstream(config)
    }

    /// Adds and starts an xstream from a parsed configuration.
    pub fn add_xstream(&self, config: XstreamConfig) -> Result<(), MargoError> {
        self.ensure_live()?;
        self.inner.abt.add_xstream(config)?;
        Ok(())
    }

    /// Stops and removes an xstream.
    pub fn remove_xstream(&self, name: &str) -> Result<(), MargoError> {
        self.ensure_live()?;
        self.inner.abt.remove_xstream(name)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Snapshot of the full configuration as JSON (what Bedrock reports).
    pub fn config_json(&self) -> Value {
        let meta = self.inner.meta.lock();
        serde_json::json!({
            "argobots": self.inner.abt.config(),
            "progress_pool": meta.progress_pool,
            "default_rpc_pool": meta.default_rpc_pool,
            "rpc_timeout_ms": meta.rpc_timeout.as_millis() as u64,
            "monitoring": {
                "enabled": meta.monitoring_enabled,
                "sampling_period_ms": meta.sampling_period.as_millis() as u64,
            },
            "rpcs": self.registrations().iter().map(|(name, provider, pool)| {
                serde_json::json!({"name": name, "provider_id": provider, "pool": pool})
            }).collect::<Vec<_>>(),
        })
    }

    /// The monitoring statistics accumulated so far (the runtime query
    /// API of §4), or `None` when monitoring is disabled. On top of the
    /// Listing-1 sections, the dump carries a `breakers` section with the
    /// live circuit-breaker states (additive; existing consumers that key
    /// into `rpcs`/`progress` are unaffected).
    pub fn monitoring_json(&self) -> Option<Value> {
        self.inner.stats.as_ref().map(|s| {
            let mut json = s.to_json();
            if let Some(map) = json.as_object_mut() {
                map.insert("breakers".to_string(), self.inner.breakers.to_json());
            }
            json
        })
    }

    /// Installs an additional user monitor alongside the default
    /// statistics monitor ("this infrastructure lets users inject
    /// callbacks to be invoked at various points in the lifetime of an
    /// RPC").
    pub fn add_monitor(&self, monitor: Arc<dyn Monitor>) {
        let mut guard = self.inner.monitor.write();
        let mut composite = CompositeMonitor::new();
        if let Some(stats) = &self.inner.stats {
            composite.push(Arc::clone(stats) as Arc<dyn Monitor>);
        }
        // Rebuild: composite is immutable once installed (cheap, rare op).
        // Existing extra monitors are preserved by chaining the old one.
        composite.push(Arc::clone(&*guard) as Arc<dyn Monitor>);
        composite.push(monitor);
        *guard = Arc::new(composite);
    }

    /// Name of the pool used for handlers registered without an explicit
    /// pool.
    pub fn default_rpc_pool(&self) -> String {
        self.inner.meta.lock().default_rpc_pool.clone()
    }

    /// Default timeout applied to forwarded RPCs.
    pub fn rpc_timeout(&self) -> Duration {
        self.inner.meta.lock().rpc_timeout
    }

    /// Number of RPCs this process forwarded that are still in flight.
    pub fn in_flight_client(&self) -> i64 {
        self.inner.in_flight_client.load(Ordering::Relaxed)
    }

    /// Number of handler ULTs received and not yet completed.
    pub fn in_flight_server(&self) -> i64 {
        self.inner.in_flight_server.load(Ordering::Relaxed)
    }

    /// Whether the runtime has been finalized.
    pub fn is_finalized(&self) -> bool {
        self.inner.finalized.load(Ordering::SeqCst)
    }

    /// Shuts the process down: the endpoint closes (peers see a dead
    /// node), the progress loop and sampler exit, all xstreams join, and
    /// the final monitoring dump is returned ("outputs them as JSON when
    /// shutting down the service").
    pub fn finalize(&self) -> Option<Value> {
        if self.inner.finalized.swap(true, Ordering::SeqCst) {
            return self.monitoring_json();
        }
        self.inner.endpoint.shutdown();
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for handle in threads {
            let _ = handle.join();
        }
        self.inner.abt.shutdown();
        self.monitoring_json()
    }
}

impl std::fmt::Debug for MargoRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MargoRuntime")
            .field("address", &self.inner.endpoint.address())
            .field("finalized", &self.is_finalized())
            .finish_non_exhaustive()
    }
}

/// Double-checked shutdown: finalizing an already-finalized runtime is a
/// no-op, and dropping the last handle finalizes implicitly.
impl Drop for Inner {
    fn drop(&mut self) {
        self.finalized.store(true, Ordering::SeqCst);
        self.endpoint.shutdown();
        self.abt.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochi_mercury::Fabric;

    fn boot(fabric: &Fabric, host: &str) -> MargoRuntime {
        MargoRuntime::init_default(fabric, Address::tcp(host, 1)).unwrap()
    }

    fn register_echo(server: &MargoRuntime, provider_id: u16) {
        server
            .register_typed(
                "echo",
                provider_id,
                None,
                |input: String, _ctx| Ok(input),
            )
            .unwrap();
    }

    #[test]
    fn echo_roundtrip() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        register_echo(&server, 0);
        let out: String =
            client.forward(&server.address(), "echo", 0, &"hello".to_string()).unwrap();
        assert_eq!(out, "hello");
        server.finalize();
        client.finalize();
    }

    #[test]
    fn provider_ids_route_independently() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        server
            .register_typed("whoami", 1, None, |_: (), _| Ok("provider-1".to_string()))
            .unwrap();
        server
            .register_typed("whoami", 2, None, |_: (), _| Ok("provider-2".to_string()))
            .unwrap();
        let a: String = client.forward(&server.address(), "whoami", 1, &()).unwrap();
        let b: String = client.forward(&server.address(), "whoami", 2, &()).unwrap();
        assert_eq!(a, "provider-1");
        assert_eq!(b, "provider-2");
        let err = client.forward::<(), String>(&server.address(), "whoami", 3, &()).unwrap_err();
        assert!(matches!(err, MargoError::NoHandler { .. }));
        server.finalize();
        client.finalize();
    }

    #[test]
    fn handler_error_propagates() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        server
            .register_typed::<(), (), _>("fail", 0, None, |_, _| Err("nope".into()))
            .unwrap();
        let err = client.forward::<(), ()>(&server.address(), "fail", 0, &()).unwrap_err();
        assert_eq!(err, MargoError::Handler("nope".into()));
        server.finalize();
        client.finalize();
    }

    #[test]
    fn self_forward_works() {
        let fabric = Fabric::new();
        let node = boot(&fabric, "solo");
        register_echo(&node, 0);
        let out: String = node.forward(&node.address(), "echo", 0, &"loop".to_string()).unwrap();
        assert_eq!(out, "loop");
        node.finalize();
    }

    #[test]
    fn nested_rpc_carries_parent_context() {
        let fabric = Fabric::new();
        let front = boot(&fabric, "front");
        let back = boot(&fabric, "back");
        register_echo(&back, 0);
        let back_addr = back.address();
        front
            .register_typed("relay", 5, None, move |input: String, ctx| {
                ctx.forward::<String, String>(&back_addr, "echo", 0, &input)
                    .map_err(|e| e.to_string())
            })
            .unwrap();
        let client = boot(&fabric, "client");
        let out: String =
            client.forward(&front.address(), "relay", 5, &"via".to_string()).unwrap();
        assert_eq!(out, "via");
        // The nested call shows up in back's monitoring keyed by its
        // parent (relay's rpc_id, provider 5).
        let stats = back.monitoring_json().unwrap();
        let relay_id = rpc_id_for_name("relay");
        let echo_id = rpc_id_for_name("echo");
        let key = format!("{relay_id}:5:{echo_id}:0");
        assert!(
            stats["rpcs"].as_object().unwrap().contains_key(&key),
            "expected nested key {key} in {:?}",
            stats["rpcs"].as_object().unwrap().keys()
        );
        front.finalize();
        back.finalize();
        client.finalize();
    }

    #[test]
    fn monitoring_reports_listing1_shape() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        register_echo(&server, 0);
        for _ in 0..3 {
            let _: String =
                client.forward(&server.address(), "echo", 0, &"x".to_string()).unwrap();
        }
        let stats = server.monitoring_json().unwrap();
        let echo_id = rpc_id_for_name("echo");
        let key = format!("65535:65535:{echo_id}:0");
        let entry = &stats["rpcs"][&key];
        assert_eq!(entry["name"], "echo");
        let target = entry["target"].as_object().unwrap();
        let peer_key = format!("received from {}", client.address());
        let ult = &target[&peer_key]["ult"]["duration"];
        assert_eq!(ult["num"], 3);
        assert!(ult["avg"].as_f64().unwrap() >= 0.0);
        // Client-side origin stats too.
        let client_stats = client.monitoring_json().unwrap();
        let origin = &client_stats["rpcs"][&key]["origin"];
        let sent = &origin[format!("sent to {}", server.address())]["forward"]["duration"];
        assert_eq!(sent["num"], 3);
        server.finalize();
        client.finalize();
    }

    #[test]
    fn online_pool_and_xstream_reconfiguration() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        // Listing-2-style additions at run time.
        server.add_pool_from_json(r#"{"name": "MyPoolX", "type": "fifo_wait"}"#).unwrap();
        server
            .add_xstream_from_json(
                r#"{"name": "MyES1", "scheduler": {"type": "basic_wait", "pools": ["MyPoolX"]}}"#,
            )
            .unwrap();
        assert!(server.find_pool_by_name("MyPoolX").is_some());
        // Route an RPC through the new pool.
        server
            .register_typed("work", 0, Some("MyPoolX"), |n: u64, _| Ok(n * 2))
            .unwrap();
        let client = boot(&fabric, "client");
        let out: u64 = client.forward(&server.address(), "work", 0, &21u64).unwrap();
        assert_eq!(out, 42);
        // Removing the pool while its handler exists must fail...
        let err = server.remove_pool("MyPoolX").unwrap_err();
        assert!(matches!(err, MargoError::PoolBusy { .. }));
        // ...as must removing the progress pool.
        let err = server.remove_pool("__primary__").unwrap_err();
        assert!(matches!(err, MargoError::PoolBusy { .. }));
        // Deregister, stop the ES, then removal succeeds.
        server.deregister("work", 0).unwrap();
        server.remove_xstream("MyES1").unwrap();
        server.remove_pool("MyPoolX").unwrap();
        assert!(server.find_pool_by_name("MyPoolX").is_none());
        server.finalize();
        client.finalize();
    }

    #[test]
    fn rpcs_keep_flowing_during_reconfiguration() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        register_echo(&server, 0);
        let stop = Arc::new(AtomicBool::new(false));
        let client2 = client.clone();
        let server_addr = server.address();
        let stop2 = Arc::clone(&stop);
        let traffic = std::thread::spawn(move || {
            let mut count = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                let out: String = client2
                    .forward(&server_addr, "echo", 0, &"live".to_string())
                    .expect("echo during reconfig");
                assert_eq!(out, "live");
                count += 1;
            }
            count
        });
        for i in 0..10 {
            let pool = format!("dyn-{i}");
            server
                .add_pool_from_json(&format!(r#"{{"name": "{pool}", "type": "fifo_wait"}}"#))
                .unwrap();
            let es = format!("dyn-es-{i}");
            server
                .add_xstream_from_json(&format!(
                    r#"{{"name": "{es}", "scheduler": {{"type": "basic_wait", "pools": ["{pool}"]}}}}"#
                ))
                .unwrap();
            server.remove_xstream(&es).unwrap();
            server.remove_pool(&pool).unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        let count = traffic.join().unwrap();
        assert!(count > 0);
        server.finalize();
        client.finalize();
    }

    #[test]
    fn notify_oneway_reaches_handler() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        let seen = Arc::new(AtomicBool::new(false));
        let seen2 = Arc::clone(&seen);
        server
            .register(
                "event",
                0,
                None,
                Arc::new(move |ctx: RpcContext| {
                    let value: String = ctx.args().unwrap();
                    assert_eq!(value, "fire");
                    seen2.store(true, Ordering::SeqCst);
                }),
            )
            .unwrap();
        client.notify(&server.address(), "event", 0, &"fire".to_string()).unwrap();
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || seen.load(Ordering::SeqCst)
        ));
        server.finalize();
        client.finalize();
    }

    #[test]
    fn finalize_makes_peers_time_out() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        register_echo(&server, 0);
        server.finalize();
        let err = client
            .forward_timeout::<String, String>(
                &server.address(),
                "echo",
                0,
                &"x".to_string(),
                Duration::from_millis(50),
            )
            .unwrap_err();
        assert!(err.is_timeout());
        client.finalize();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        register_echo(&server, 0);
        let err = server
            .register_typed::<String, String, _>("echo", 0, None, |s, _| Ok(s))
            .unwrap_err();
        assert!(matches!(err, MargoError::AlreadyRegistered { .. }));
        server.finalize();
    }

    #[test]
    fn registration_into_unknown_pool_rejected() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let err = server
            .register_typed::<(), (), _>("x", 0, Some("ghost"), |_, _| Ok(()))
            .unwrap_err();
        assert_eq!(err, MargoError::PoolNotFound("ghost".into()));
        server.finalize();
    }

    #[test]
    fn config_json_reflects_runtime() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        register_echo(&server, 9);
        let config = server.config_json();
        assert_eq!(config["progress_pool"], "__primary__");
        let rpcs = config["rpcs"].as_array().unwrap();
        assert_eq!(rpcs.len(), 1);
        assert_eq!(rpcs[0]["name"], "echo");
        assert_eq!(rpcs[0]["provider_id"], 9);
        server.finalize();
    }

    #[test]
    fn handler_panic_reported_as_failure_not_crash() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        server
            .register(
                "boom",
                0,
                None,
                Arc::new(|_ctx: RpcContext| panic!("intentional")),
            )
            .unwrap();
        // The panic is contained; the client times out (no response was
        // sent) rather than the whole process dying.
        let err = client
            .forward_timeout::<(), ()>(
                &server.address(),
                "boom",
                0,
                &(),
                Duration::from_millis(100),
            )
            .unwrap_err();
        assert!(err.is_timeout());
        // Server still alive and serving.
        register_echo(&server, 0);
        let out: String = client.forward(&server.address(), "echo", 0, &"ok".to_string()).unwrap();
        assert_eq!(out, "ok");
        server.finalize();
        client.finalize();
    }

    #[test]
    fn sampler_populates_progress_section() {
        let fabric = Fabric::new();
        let mut config = MargoConfig::default();
        config.monitoring.sampling_period_ms = 5;
        let server =
            MargoRuntime::init(&fabric, Address::tcp("sampled", 1), &config).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let stats = server.monitoring_json().unwrap();
        assert!(stats["progress"]["samples"].as_u64().unwrap() >= 2);
        assert!(stats["progress"]["pool_sizes"].as_object().unwrap().contains_key("__primary__"));
        server.finalize();
    }

    #[test]
    fn nested_calls_inherit_remaining_deadline() {
        let fabric = Fabric::new();
        let dead = boot(&fabric, "dead");
        register_echo(&dead, 0);
        let dead_addr = dead.address();
        // Finalized endpoint: requests to it vanish (no response).
        dead.finalize();
        let relay = boot(&fabric, "relay");
        let observed: Arc<Mutex<Option<(Duration, MargoError)>>> = Arc::new(Mutex::new(None));
        let observed2 = Arc::clone(&observed);
        relay
            .register_typed("relay", 0, None, move |input: String, ctx| {
                // The nested forward uses the *default* 30 s timeout; the
                // deadline inherited from the parent must clamp it to the
                // parent's remaining budget, so a chain under a 100 ms
                // top-level deadline can never take 3 × 100 ms.
                let start = Instant::now();
                let err =
                    ctx.forward::<String, String>(&dead_addr, "echo", 0, &input).unwrap_err();
                *observed2.lock() = Some((start.elapsed(), err));
                Err("upstream dead".into())
            })
            .unwrap();
        let client = boot(&fabric, "client");
        let err = client
            .forward_timeout::<String, String>(
                &relay.address(),
                "relay",
                0,
                &"x".to_string(),
                Duration::from_millis(100),
            )
            .unwrap_err();
        // The client either times out (relay answered after its wait) or
        // sees the relay's handler error, depending on scheduling.
        assert!(err.is_timeout() || matches!(err, MargoError::Handler(_)), "got {err}");
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || observed.lock().is_some()
        ));
        let (elapsed, child_err) = observed.lock().take().unwrap();
        assert!(
            elapsed < Duration::from_millis(1000),
            "child waited {elapsed:?}, not the parent's ≤100 ms remaining budget"
        );
        assert_eq!(child_err, MargoError::DeadlineExceeded);
        assert!(!child_err.is_timeout(), "deadline exhaustion is not a transport timeout");
        relay.finalize();
        client.finalize();
    }

    #[test]
    fn expired_deadline_fails_before_sending() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        let hits = Arc::new(AtomicI64::new(0));
        let hits2 = Arc::clone(&hits);
        server
            .register_typed("count", 0, None, move |_: (), _| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .unwrap();
        let past = Instant::now().checked_sub(Duration::from_millis(10)).unwrap_or_else(Instant::now);
        let context = CallContext::TOP_LEVEL.with_deadline(Some(past));
        let err = client
            .forward_full::<(), ()>(&server.address(), "count", 0, &(), context, Duration::from_secs(1))
            .unwrap_err();
        assert_eq!(err, MargoError::DeadlineExceeded);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "request must never reach the server");
        server.finalize();
        client.finalize();
    }

    #[test]
    fn idempotent_rpc_survives_transient_drops() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        let hits = Arc::new(AtomicI64::new(0));
        let hits2 = Arc::clone(&hits);
        server
            .register_typed("get", 0, None, move |k: String, _| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(k)
            })
            .unwrap();
        client.declare_idempotent("get");
        assert!(client.is_idempotent("get"));
        // First two request sends on the client→server link vanish; the
        // third gets through.
        fabric.faults().push_script(
            Some("client"),
            Some("server"),
            mochi_mercury::LinkScript::FailFirst(2),
        );
        let out: String = client
            .forward_timeout(&server.address(), "get", 0, &"k".to_string(), Duration::from_millis(100))
            .unwrap();
        assert_eq!(out, "k");
        assert_eq!(hits.load(Ordering::SeqCst), 1, "only the delivered attempt executed");
        // Monitoring sees one logical call with two retries.
        let stats = client.monitoring_json().unwrap();
        let key = format!("65535:65535:{}:0", rpc_id_for_name("get"));
        let peer = &stats["rpcs"][&key]["origin"][format!("sent to {}", server.address())];
        assert_eq!(peer["retries"], 2);
        assert_eq!(peer["forward"]["duration"]["num"], 1);
        server.finalize();
        client.finalize();
    }

    #[test]
    fn non_idempotent_rpc_is_never_retried() {
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        let hits = Arc::new(AtomicI64::new(0));
        let hits2 = Arc::clone(&hits);
        server
            .register_typed("inc", 0, None, move |_: (), _| {
                hits2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .unwrap();
        // The first send is dropped. A retry *would* succeed — which is
        // exactly what must not happen for an undeclared RPC.
        fabric.faults().push_script(
            Some("client"),
            Some("server"),
            mochi_mercury::LinkScript::FailFirst(1),
        );
        let err = client
            .forward_timeout::<(), ()>(&server.address(), "inc", 0, &(), Duration::from_millis(50))
            .unwrap_err();
        assert!(err.is_timeout());
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "non-idempotent call was silently re-sent");
        let stats = client.monitoring_json().unwrap();
        let key = format!("65535:65535:{}:0", rpc_id_for_name("inc"));
        let peer = &stats["rpcs"][&key]["origin"][format!("sent to {}", server.address())];
        assert_eq!(peer["retries"], 0);
        assert_eq!(peer["errors"]["timeout"], 1);
        server.finalize();
        client.finalize();
    }

    #[test]
    fn breaker_trips_and_recovers_with_monitoring() {
        let fabric = Fabric::new();
        let mut config = MargoConfig::default();
        config.breaker.failure_threshold = 2;
        config.breaker.probe_interval_ms = 50;
        let client = MargoRuntime::init(&fabric, Address::tcp("client", 1), &config).unwrap();
        let target = Address::tcp("target", 1);
        // Two transport failures (address never registered) trip the
        // breaker…
        for _ in 0..2 {
            let err = client
                .forward_timeout::<(), ()>(&target, "echo", 0, &(), Duration::from_millis(50))
                .unwrap_err();
            assert_eq!(err.kind(), "transport");
        }
        // …after which calls are rejected locally without touching the
        // network, with a distinct error kind.
        let err = client
            .forward_timeout::<(), ()>(&target, "echo", 0, &(), Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err.kind(), "breaker-open");
        assert!(matches!(err, MargoError::BreakerOpen { provider_id: 0, .. }));
        let json = client.monitoring_json().unwrap();
        assert_eq!(json["breakers"][format!("{target}:0")]["state"], "open");
        // The destination comes up at the same address; once the probe
        // interval elapses a single probe is admitted and re-closes the
        // breaker.
        let server = boot(&fabric, "target");
        register_echo(&server, 0);
        std::thread::sleep(Duration::from_millis(60));
        let out: String = client.forward(&target, "echo", 0, &"back".to_string()).unwrap();
        assert_eq!(out, "back");
        assert!(client.breakers().all_closed_among(|_| true));
        let json = client.monitoring_json().unwrap();
        let entry = &json["breakers"][format!("{target}:0")];
        assert_eq!(entry["state"], "closed");
        assert_eq!(entry["trips"], 1);
        server.finalize();
        client.finalize();
    }

    #[test]
    fn user_monitor_receives_events() {
        use crate::monitoring::{Monitor, MonitoringEvent};
        struct CountForwards(AtomicI64);
        impl Monitor for CountForwards {
            fn observe(&self, event: &MonitoringEvent) {
                if matches!(event, MonitoringEvent::ForwardEnd { .. }) {
                    self.0.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let fabric = Fabric::new();
        let server = boot(&fabric, "server");
        let client = boot(&fabric, "client");
        register_echo(&server, 0);
        let counter = Arc::new(CountForwards(AtomicI64::new(0)));
        client.add_monitor(counter.clone());
        for _ in 0..4 {
            let _: String =
                client.forward(&server.address(), "echo", 0, &"m".to_string()).unwrap();
        }
        assert_eq!(counter.0.load(Ordering::SeqCst), 4);
        server.finalize();
        client.finalize();
    }
}
