//! Error type for the Margo layer.

use std::fmt;

use mochi_argobots::AbtError;
use mochi_mercury::MercuryError;

/// Errors surfaced by Margo operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MargoError {
    /// Transport-level failure.
    Transport(MercuryError),
    /// Threading/topology failure.
    Threading(AbtError),
    /// Argument (de)serialization failed.
    Codec(String),
    /// The remote handler reported an application error.
    Handler(String),
    /// No handler registered for (rpc, provider) at the destination.
    NoHandler { rpc: String, provider_id: u16 },
    /// An RPC with this (name, provider) is already registered locally.
    AlreadyRegistered { rpc: String, provider_id: u16 },
    /// Local registration not found.
    NotRegistered { rpc: String, provider_id: u16 },
    /// The referenced pool does not exist.
    PoolNotFound(String),
    /// Refusing to remove a pool that registered handlers dispatch into,
    /// or the progress pool.
    PoolBusy { pool: String, reason: String },
    /// A configuration document was invalid.
    BadConfig(String),
    /// A background OS thread (progress loop, sampler) could not be
    /// spawned.
    Spawn(String),
    /// The runtime is finalized.
    Finalized,
    /// The call chain's absolute deadline expired (the parent's remaining
    /// budget ran out) — distinct from a transport timeout, which means a
    /// single attempt's wait elapsed with budget possibly left.
    DeadlineExceeded,
    /// The circuit breaker for (address, provider) is open: recent calls
    /// failed and the probe interval has not elapsed, so the call was
    /// rejected without touching the network.
    BreakerOpen {
        /// Destination address string the breaker guards.
        dest: String,
        /// Provider id the breaker guards.
        provider_id: u16,
    },
}

impl fmt::Display for MargoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MargoError::Transport(e) => write!(f, "transport: {e}"),
            MargoError::Threading(e) => write!(f, "threading: {e}"),
            MargoError::Codec(msg) => write!(f, "codec: {msg}"),
            MargoError::Handler(msg) => write!(f, "handler error: {msg}"),
            MargoError::NoHandler { rpc, provider_id } => {
                write!(f, "no handler for rpc '{rpc}' provider {provider_id}")
            }
            MargoError::AlreadyRegistered { rpc, provider_id } => {
                write!(f, "rpc '{rpc}' provider {provider_id} already registered")
            }
            MargoError::NotRegistered { rpc, provider_id } => {
                write!(f, "rpc '{rpc}' provider {provider_id} not registered")
            }
            MargoError::PoolNotFound(p) => write!(f, "pool '{p}' not found"),
            MargoError::PoolBusy { pool, reason } => {
                write!(f, "pool '{pool}' cannot be removed: {reason}")
            }
            MargoError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            MargoError::Spawn(msg) => write!(f, "spawning background thread: {msg}"),
            MargoError::Finalized => write!(f, "margo runtime is finalized"),
            MargoError::DeadlineExceeded => write!(f, "call deadline exceeded"),
            MargoError::BreakerOpen { dest, provider_id } => {
                write!(f, "circuit breaker open for {dest} provider {provider_id}")
            }
        }
    }
}

impl std::error::Error for MargoError {}

impl From<MercuryError> for MargoError {
    fn from(e: MercuryError) -> Self {
        MargoError::Transport(e)
    }
}

impl From<AbtError> for MargoError {
    fn from(e: AbtError) -> Self {
        MargoError::Threading(e)
    }
}

impl MargoError {
    /// True if the failure is a timeout (common check in retry loops).
    pub fn is_timeout(&self) -> bool {
        matches!(self, MargoError::Transport(MercuryError::Timeout))
    }

    /// True if retrying the call might succeed: transient transport
    /// failures (timeout, unknown/unreachable peer) and `NoHandler`
    /// (providers reappear during reconfiguration/migration). `Handler`
    /// errors are application outcomes and never retryable; deadline and
    /// breaker rejections mean retrying locally is pointless.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            MargoError::Transport(
                MercuryError::Timeout
                    | MercuryError::AddressUnknown(_)
                    | MercuryError::EndpointDown(_)
            ) | MargoError::NoHandler { .. }
        )
    }

    /// Short stable tag for monitoring: which fault mode a failed forward
    /// hit. `"ok"` is never returned here — callers tag successes
    /// themselves.
    pub fn kind(&self) -> &'static str {
        match self {
            MargoError::Transport(MercuryError::Timeout) => "timeout",
            MargoError::Transport(_) => "transport",
            MargoError::Handler(_) => "handler",
            MargoError::NoHandler { .. } => "no-handler",
            MargoError::DeadlineExceeded => "deadline",
            MargoError::BreakerOpen { .. } => "breaker-open",
            MargoError::Codec(_) => "codec",
            _ => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_timeout_check() {
        let e: MargoError = MercuryError::Timeout.into();
        assert!(e.is_timeout());
        let e: MargoError = AbtError::Shutdown.into();
        assert!(!e.is_timeout());
        assert!(e.to_string().contains("threading"));
    }

    #[test]
    fn deadline_is_not_a_transport_timeout() {
        let deadline = MargoError::DeadlineExceeded;
        assert!(!deadline.is_timeout());
        assert!(!deadline.is_retryable());
        assert_eq!(deadline.kind(), "deadline");
        let timeout: MargoError = MercuryError::Timeout.into();
        assert!(timeout.is_timeout());
        assert_ne!(deadline, timeout);
    }

    #[test]
    fn retryable_classification() {
        assert!(MargoError::Transport(MercuryError::Timeout).is_retryable());
        assert!(MargoError::NoHandler { rpc: "x".into(), provider_id: 1 }.is_retryable());
        assert!(!MargoError::Handler("boom".into()).is_retryable());
        assert!(!MargoError::Codec("bad".into()).is_retryable());
        assert!(
            !MargoError::BreakerOpen { dest: "tcp://a:1".into(), provider_id: 0 }.is_retryable()
        );
    }

    #[test]
    fn kinds_are_stable_tags() {
        assert_eq!(MargoError::Transport(MercuryError::Timeout).kind(), "timeout");
        assert_eq!(MargoError::Handler("e".into()).kind(), "handler");
        assert_eq!(MargoError::NoHandler { rpc: "r".into(), provider_id: 0 }.kind(), "no-handler");
        assert_eq!(
            MargoError::BreakerOpen { dest: "d".into(), provider_id: 0 }.kind(),
            "breaker-open"
        );
    }
}
