//! Error type for the Margo layer.

use std::fmt;

use mochi_argobots::AbtError;
use mochi_mercury::MercuryError;

/// Errors surfaced by Margo operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MargoError {
    /// Transport-level failure.
    Transport(MercuryError),
    /// Threading/topology failure.
    Threading(AbtError),
    /// Argument (de)serialization failed.
    Codec(String),
    /// The remote handler reported an application error.
    Handler(String),
    /// No handler registered for (rpc, provider) at the destination.
    NoHandler { rpc: String, provider_id: u16 },
    /// An RPC with this (name, provider) is already registered locally.
    AlreadyRegistered { rpc: String, provider_id: u16 },
    /// Local registration not found.
    NotRegistered { rpc: String, provider_id: u16 },
    /// The referenced pool does not exist.
    PoolNotFound(String),
    /// Refusing to remove a pool that registered handlers dispatch into,
    /// or the progress pool.
    PoolBusy { pool: String, reason: String },
    /// A configuration document was invalid.
    BadConfig(String),
    /// A background OS thread (progress loop, sampler) could not be
    /// spawned.
    Spawn(String),
    /// The runtime is finalized.
    Finalized,
}

impl fmt::Display for MargoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MargoError::Transport(e) => write!(f, "transport: {e}"),
            MargoError::Threading(e) => write!(f, "threading: {e}"),
            MargoError::Codec(msg) => write!(f, "codec: {msg}"),
            MargoError::Handler(msg) => write!(f, "handler error: {msg}"),
            MargoError::NoHandler { rpc, provider_id } => {
                write!(f, "no handler for rpc '{rpc}' provider {provider_id}")
            }
            MargoError::AlreadyRegistered { rpc, provider_id } => {
                write!(f, "rpc '{rpc}' provider {provider_id} already registered")
            }
            MargoError::NotRegistered { rpc, provider_id } => {
                write!(f, "rpc '{rpc}' provider {provider_id} not registered")
            }
            MargoError::PoolNotFound(p) => write!(f, "pool '{p}' not found"),
            MargoError::PoolBusy { pool, reason } => {
                write!(f, "pool '{pool}' cannot be removed: {reason}")
            }
            MargoError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            MargoError::Spawn(msg) => write!(f, "spawning background thread: {msg}"),
            MargoError::Finalized => write!(f, "margo runtime is finalized"),
        }
    }
}

impl std::error::Error for MargoError {}

impl From<MercuryError> for MargoError {
    fn from(e: MercuryError) -> Self {
        MargoError::Transport(e)
    }
}

impl From<AbtError> for MargoError {
    fn from(e: AbtError) -> Self {
        MargoError::Threading(e)
    }
}

impl MargoError {
    /// True if the failure is a timeout (common check in retry loops).
    pub fn is_timeout(&self) -> bool {
        matches!(self, MargoError::Transport(MercuryError::Timeout))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_timeout_check() {
        let e: MargoError = MercuryError::Timeout.into();
        assert!(e.is_timeout());
        let e: MargoError = AbtError::Shutdown.into();
        assert!(!e.is_timeout());
        assert!(e.to_string().contains("threading"));
    }
}
