//! RPC identifiers, handler types, and the handler-side context.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use mochi_mercury::{Address, BulkAccess, BulkHandle, CallContext, RequestInfo, ResponseStatus};
use mochi_util::crc32;

use crate::codec;
use crate::error::MargoError;
use crate::monitoring::MonitoringEvent;
use crate::runtime::MargoRuntime;

/// Derives the numeric RPC id from its name, Mercury-style (a CRC of the
/// name string). `echo`-like names land in the u32 range, matching the
/// `rpc_id` values of Listing 1.
pub fn rpc_id_for_name(name: &str) -> u64 {
    crc32(name.as_bytes()) as u64
}

/// A registered RPC handler. Runs inside a ULT in the pool chosen at
/// registration time; must eventually call [`RpcContext::respond`] or
/// [`RpcContext::respond_err`] (requests a caller waits on), unless the
/// message was one-way.
pub type RpcHandler = Arc<dyn Fn(RpcContext) + Send + Sync>;

/// Everything a handler needs: the request, the runtime (for nested calls
/// and bulk transfers), and the response channel.
pub struct RpcContext {
    pub(crate) margo: MargoRuntime,
    pub(crate) request: RequestInfo,
    pub(crate) rpc_name: Arc<str>,
    pub(crate) responded: AtomicBool,
    pub(crate) oneway: bool,
}

impl RpcContext {
    /// Deserializes the request payload.
    pub fn args<T: DeserializeOwned>(&self) -> Result<T, MargoError> {
        codec::decode(&self.request.payload)
    }

    /// Raw request payload.
    pub fn payload(&self) -> &[u8] {
        &self.request.payload
    }

    /// Raw request payload as a shared [`Bytes`] handle — providers that
    /// frame their payloads ([`crate::frame::decode_framed`]) use this so
    /// body slices stay zero-copy views of the request buffer.
    pub fn payload_bytes(&self) -> &Bytes {
        &self.request.payload
    }

    /// Address of the requester.
    pub fn source(&self) -> &Address {
        &self.request.source
    }

    /// Name of this RPC.
    pub fn rpc_name(&self) -> &str {
        &self.rpc_name
    }

    /// Hashed id of this RPC.
    pub fn rpc_id(&self) -> u64 {
        self.request.rpc_id
    }

    /// Provider id this request targets.
    pub fn provider_id(&self) -> u16 {
        self.request.provider_id
    }

    /// The runtime this handler runs in.
    pub fn margo(&self) -> &MargoRuntime {
        &self.margo
    }

    /// The calling context to use for RPCs issued *from* this handler:
    /// this RPC becomes the parent, which is how Listing 1's
    /// `parent_rpc_id`/`parent_provider_id` fields get populated.
    pub fn nested_context(&self) -> CallContext {
        CallContext {
            parent_rpc_id: self.request.rpc_id,
            parent_provider_id: self.request.provider_id,
            deadline: self.request.context.deadline,
        }
    }

    /// Whether a response has been sent.
    pub fn has_responded(&self) -> bool {
        self.responded.load(Ordering::SeqCst)
    }

    /// Serializes `output` and answers the request. Subsequent calls (and
    /// calls for one-way messages) are no-ops returning `Ok`.
    pub fn respond<T: Serialize>(&self, output: &T) -> Result<(), MargoError> {
        let payload = codec::encode(output)?;
        self.respond_raw(ResponseStatus::Ok, payload)
    }

    /// Answers the request with an application-level error.
    pub fn respond_err(&self, message: impl Into<String>) -> Result<(), MargoError> {
        self.respond_raw(ResponseStatus::Error(message.into()), Bytes::new())
    }

    /// Answers the request with a raw payload (no JSON encoding) — the
    /// data-plane counterpart of [`RpcContext::respond`], used with
    /// [`crate::frame`] framing.
    pub fn respond_bytes(&self, payload: Bytes) -> Result<(), MargoError> {
        self.respond_raw(ResponseStatus::Ok, payload)
    }

    fn respond_raw(&self, status: ResponseStatus, payload: Bytes) -> Result<(), MargoError> {
        if self.oneway || self.responded.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let payload_size = payload.len();
        self.margo.endpoint().respond(&self.request, status, payload)?;
        self.margo.emit(&MonitoringEvent::ResponseSent {
            identity: self.margo.identity_for(
                self.request.rpc_id,
                &self.rpc_name,
                self.request.provider_id,
                self.request.context,
            ),
            dest: self.request.source.clone(),
            payload_size,
        });
        Ok(())
    }

    /// Exposes a local buffer for the requester (or anyone) to bulk-access.
    pub fn expose_bulk(&self, buffer: Arc<Mutex<Vec<u8>>>, access: BulkAccess) -> BulkHandle {
        self.margo.endpoint().expose_bulk(buffer, access)
    }

    /// Pulls data described by a remote bulk handle into a local buffer,
    /// recording the transfer in the monitoring stream.
    pub fn bulk_pull(
        &self,
        remote: &BulkHandle,
        remote_offset: usize,
        local: &BulkHandle,
        local_offset: usize,
        len: usize,
    ) -> Result<(), MargoError> {
        self.margo.bulk_pull(remote, remote_offset, local, local_offset, len)
    }

    /// Pushes local data into a remote bulk region, recording the transfer.
    pub fn bulk_push(
        &self,
        local: &BulkHandle,
        local_offset: usize,
        remote: &BulkHandle,
        remote_offset: usize,
        len: usize,
    ) -> Result<(), MargoError> {
        self.margo.bulk_push(local, local_offset, remote, remote_offset, len)
    }

    /// Issues a nested RPC, tagging it with this handler's context.
    pub fn forward<I: Serialize, O: DeserializeOwned>(
        &self,
        dest: &Address,
        rpc_name: &str,
        provider_id: u16,
        input: &I,
    ) -> Result<O, MargoError> {
        self.margo.forward_with_context(dest, rpc_name, provider_id, input, self.nested_context())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_id_is_stable_and_u32_ranged() {
        let a = rpc_id_for_name("echo");
        let b = rpc_id_for_name("echo");
        let c = rpc_id_for_name("echo2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a <= u32::MAX as u64);
    }

    #[test]
    fn distinct_names_rarely_collide() {
        use std::collections::HashSet;
        let names: Vec<String> = (0..1000).map(|i| format!("component_{i}_op")).collect();
        let ids: HashSet<u64> = names.iter().map(|n| rpc_id_for_name(n)).collect();
        assert_eq!(ids.len(), names.len());
    }
}
