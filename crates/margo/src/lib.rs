//! `mochi-margo` — the shared runtime of every Mochi component.
//!
//! Margo combines Mercury (networking) and Argobots (threading) into the
//! runtime all components of a Mochi process share (paper §3.2): it
//! registers RPCs, dispatches incoming requests into user-level threads
//! pulled from configurable pools, and provides the two capabilities this
//! paper adds for dynamic services:
//!
//! * **performance introspection** (§4): a customizable [`monitoring`]
//!   infrastructure with callbacks across the RPC lifecycle, a default
//!   statistics monitor that renders Listing-1-shaped JSON, a runtime
//!   query API, and periodic sampling of in-flight RPCs and pool sizes;
//! * **online reconfiguration** (§5, Observation 2): pools and execution
//!   streams can be added/removed at run time via
//!   [`MargoRuntime::add_pool_from_json`] and friends, with validity
//!   enforced at both the Argobots level (no duplicate names, no removing
//!   a pool an ES uses) and the Margo level (no removing the progress pool
//!   or a pool that registered RPC handlers run in).
//!
//! RPC arguments travel in the compact `mochi-wire` binary format (the
//! [`codec`] and [`frame`] modules); JSON survives only on the
//! observability and configuration surfaces, whose Listing-shaped
//! artifacts must stay human-readable.
//!
//! A [`MargoRuntime`] is one simulated process. Many runtimes share one
//! [`mochi_mercury::Fabric`], which plays the role of the machine's
//! interconnect.

pub mod breaker;
pub mod codec;
pub mod config;
pub mod error;
pub mod frame;
pub mod monitoring;
pub mod retry;
pub mod rpc;
pub mod runtime;

pub use breaker::{Admission, BreakerRegistry};
pub use codec::{decode, encode};
pub use frame::{decode_framed, encode_framed};
pub use config::{BreakerConfig, MargoConfig, MonitoringConfig, RetryConfig};
pub use error::MargoError;
pub use retry::RetryPolicy;
pub use monitoring::{Monitor, MonitoringEvent, StatisticsMonitor};
pub use mochi_mercury::CallContext;
pub use rpc::{rpc_id_for_name, RpcContext, RpcHandler};
pub use runtime::MargoRuntime;

/// The provider id Margo uses for "no particular provider" — `u16::MAX`,
/// which renders as the `65535` sentinels in Listing 1.
pub const ANONYMOUS_PROVIDER: u16 = u16::MAX;
