//! Error type for runtime topology operations.

use std::fmt;

/// Errors raised by topology changes and submissions. These are exactly
/// the validity conditions the paper says Margo must enforce during online
/// reconfiguration (§5, Observation 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbtError {
    /// A pool with this name already exists.
    PoolExists(String),
    /// No pool with this name.
    PoolNotFound(String),
    /// The pool is referenced by one or more execution streams.
    PoolInUse { pool: String, xstreams: Vec<String> },
    /// The pool still holds pending ULTs.
    PoolNotEmpty { pool: String, pending: usize },
    /// An xstream with this name already exists.
    XstreamExists(String),
    /// No xstream with this name.
    XstreamNotFound(String),
    /// An xstream's scheduler referenced no pools.
    EmptyScheduler(String),
    /// A configuration document was structurally invalid.
    BadConfig(String),
    /// The runtime is shutting down.
    Shutdown,
}

impl fmt::Display for AbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbtError::PoolExists(n) => write!(f, "pool '{n}' already exists"),
            AbtError::PoolNotFound(n) => write!(f, "pool '{n}' not found"),
            AbtError::PoolInUse { pool, xstreams } => {
                write!(f, "pool '{pool}' is in use by xstream(s) {xstreams:?}")
            }
            AbtError::PoolNotEmpty { pool, pending } => {
                write!(f, "pool '{pool}' still holds {pending} pending ULT(s)")
            }
            AbtError::XstreamExists(n) => write!(f, "xstream '{n}' already exists"),
            AbtError::XstreamNotFound(n) => write!(f, "xstream '{n}' not found"),
            AbtError::EmptyScheduler(n) => write!(f, "xstream '{n}' has no pools"),
            AbtError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            AbtError::Shutdown => write!(f, "runtime is shut down"),
        }
    }
}

impl std::error::Error for AbtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_names() {
        let e = AbtError::PoolInUse { pool: "p".into(), xstreams: vec!["es0".into()] };
        assert!(e.to_string().contains('p'));
        assert!(e.to_string().contains("es0"));
    }
}
