//! Pools: named ULT queues shared between providers and xstreams.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

use mochi_util::ordered_lock::{rank, OrderedMutex};
use mochi_util::{StreamStats, Striped};

use crate::config::{PoolConfig, PoolKind};
use crate::ult::Ult;

/// Wakes sleeping schedulers when work arrives anywhere. One notifier is
/// shared by all pools of a runtime: an xstream may serve several pools,
/// so per-pool condition variables would force it to pick one to sleep on.
///
/// The generation mutex stays a plain `parking_lot::Mutex` rather than an
/// `OrderedMutex`: `Condvar::wait_for` needs the raw guard, and the lock
/// is a strict leaf (nothing is ever acquired while it is held).
#[derive(Default)]
pub struct Notifier {
    mutex: Mutex<u64>,
    cv: Condvar,
}

impl Notifier {
    /// Creates a notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes all sleeping schedulers.
    pub fn notify_all(&self) {
        let mut generation = self.mutex.lock();
        *generation += 1;
        self.cv.notify_all();
    }

    /// Current notification generation. Read it *before* checking for
    /// work, then pass it to [`Notifier::wait_if_unchanged`]: if a
    /// notification slipped in between, the wait returns immediately,
    /// closing the lost-wakeup window.
    pub fn generation(&self) -> u64 {
        *self.mutex.lock()
    }

    /// Sleeps until the next notification or `timeout`, unless the
    /// generation already moved past `seen`.
    pub fn wait_if_unchanged(&self, seen: u64, timeout: Duration) {
        let mut generation = self.mutex.lock();
        if *generation == seen {
            self.cv.wait_for(&mut generation, timeout);
        }
    }
}

struct PrioUlt {
    ult: Ult,
    seq: u64,
}

impl PartialEq for PrioUlt {
    fn eq(&self, other: &Self) -> bool {
        self.ult.priority == other.ult.priority && self.seq == other.seq
    }
}
impl Eq for PrioUlt {}
impl PartialOrd for PrioUlt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PrioUlt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, FIFO (lower seq) among equals.
        self.ult
            .priority
            .cmp(&other.ult.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Queue {
    Fifo(VecDeque<Ult>),
    Prio(BinaryHeap<PrioUlt>),
}

impl Queue {
    fn len(&self) -> usize {
        match self {
            Queue::Fifo(q) => q.len(),
            Queue::Prio(q) => q.len(),
        }
    }
}

/// Per-stripe timing accumulators; push/pop totals live in atomics on
/// the [`Pool`] itself.
#[derive(Default)]
struct StatsInner {
    /// Time ULTs spent queued, in seconds.
    wait: StreamStats,
    /// Time ULTs spent executing, in seconds (reported by xstreams).
    exec: StreamStats,
}

/// Stripe count for the timing accumulators: one per plausible xstream,
/// so concurrent pops on different execution streams never share a lock.
const STAT_STRIPES: usize = 8;

/// Point-in-time statistics snapshot of one pool; part of the monitoring
/// output (§4: "the sizes of user-level thread pools").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolStats {
    /// Pool name.
    pub name: String,
    /// Current queue depth.
    pub size: usize,
    /// ULTs ever pushed.
    pub total_pushed: u64,
    /// ULTs ever popped.
    pub total_popped: u64,
    /// Queue-wait time statistics (seconds).
    pub wait: StreamStats,
    /// Execution time statistics (seconds).
    pub exec: StreamStats,
}

/// A named ULT queue.
pub struct Pool {
    config: PoolConfig,
    queue: OrderedMutex<Queue>,
    total_pushed: AtomicU64,
    total_popped: AtomicU64,
    stats: Striped<StatsInner>,
    seq: AtomicU64,
    notifier: Arc<Notifier>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("name", &self.config.name)
            .field("kind", &self.config.kind)
            .field("size", &self.len())
            .finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool from its configuration, wired to `notifier`.
    pub fn new(config: PoolConfig, notifier: Arc<Notifier>) -> Self {
        let queue = match config.kind {
            PoolKind::Fifo | PoolKind::FifoWait => Queue::Fifo(VecDeque::new()),
            PoolKind::PrioWait => Queue::Prio(BinaryHeap::new()),
        };
        Self {
            config,
            queue: OrderedMutex::new(rank::POOL_QUEUE, "pool.queue", queue),
            total_pushed: AtomicU64::new(0),
            total_popped: AtomicU64::new(0),
            stats: Striped::new(rank::POOL_STATS, "pool.stats", STAT_STRIPES),
            seq: AtomicU64::new(0),
            notifier,
        }
    }

    /// Standalone pool with a private notifier (tests, simple uses).
    pub fn standalone(config: PoolConfig) -> Self {
        Self::new(config, Arc::new(Notifier::new()))
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Pool kind.
    pub fn kind(&self) -> PoolKind {
        self.config.kind
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Enqueues a ULT and wakes schedulers.
    pub fn push(&self, ult: Ult) {
        {
            let mut queue = self.queue.lock();
            match &mut *queue {
                Queue::Fifo(q) => q.push_back(ult),
                Queue::Prio(q) => {
                    let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                    q.push(PrioUlt { ult, seq });
                }
            }
        }
        self.total_pushed.fetch_add(1, Ordering::Relaxed);
        self.notifier.notify_all();
    }

    /// Dequeues the next ULT, if any, recording its queue-wait time.
    pub fn try_pop(&self) -> Option<Ult> {
        let ult = {
            let mut queue = self.queue.lock();
            match &mut *queue {
                Queue::Fifo(q) => q.pop_front(),
                Queue::Prio(q) => q.pop().map(|p| p.ult),
            }
        }?;
        self.total_popped.fetch_add(1, Ordering::Relaxed);
        let waited = ult.submitted_at.elapsed().as_secs_f64();
        self.stats.with(|stats| stats.wait.push(waited));
        Some(ult)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reports the execution duration of a ULT popped from this pool
    /// (called by xstreams after running it).
    pub fn record_execution(&self, seconds: f64) {
        self.stats.with(|stats| stats.exec.push(seconds));
    }

    /// Snapshot of the pool's statistics. `queue` (rank below the stat
    /// stripes) is read before the stripes are folded, one stripe at a
    /// time, keeping the acquisition order consistent with `try_pop`.
    pub fn stats(&self) -> PoolStats {
        let size = self.len();
        let (wait, exec) = self.stats.fold(
            (StreamStats::new(), StreamStats::new()),
            |(mut wait, mut exec), stripe| {
                wait.merge(&stripe.wait);
                exec.merge(&stripe.exec);
                (wait, exec)
            },
        );
        PoolStats {
            name: self.config.name.clone(),
            size,
            total_pushed: self.total_pushed.load(Ordering::Relaxed),
            total_popped: self.total_popped.load(Ordering::Relaxed),
            wait,
            exec,
        }
    }

    /// The notifier shared with the runtime (exposed for schedulers
    /// and tests).
    pub fn notifier(&self) -> &Arc<Notifier> {
        &self.notifier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn fifo() -> Pool {
        Pool::standalone(PoolConfig::named("p"))
    }

    #[test]
    fn fifo_order_preserved() {
        let pool = fifo();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = Arc::clone(&log);
            pool.push(Ult::new(format!("u{i}"), move || log.lock().push(i)));
        }
        while let Some(ult) = pool.try_pop() {
            ult.run();
        }
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn prio_pool_runs_high_priority_first() {
        let config = PoolConfig {
            name: "prio".into(),
            kind: PoolKind::PrioWait,
            access: Default::default(),
        };
        let pool = Pool::standalone(config);
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, prio) in [(0, 1), (1, 5), (2, 5), (3, -1)] {
            let log = Arc::clone(&log);
            pool.push(Ult::with_priority(format!("u{i}"), prio, move || log.lock().push(i)));
        }
        while let Some(ult) = pool.try_pop() {
            ult.run();
        }
        // priority 5 (FIFO between equals), then 1, then -1.
        assert_eq!(*log.lock(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn stats_track_push_pop_and_wait() {
        let pool = fifo();
        pool.push(Ult::new("u", || {}));
        std::thread::sleep(Duration::from_millis(5));
        let ult = pool.try_pop().unwrap();
        ult.run();
        pool.record_execution(0.5);
        let stats = pool.stats();
        assert_eq!(stats.total_pushed, 1);
        assert_eq!(stats.total_popped, 1);
        assert_eq!(stats.size, 0);
        assert!(stats.wait.avg() >= 0.004, "wait avg = {}", stats.wait.avg());
        assert_eq!(stats.exec.num(), 1);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        assert!(fifo().try_pop().is_none());
    }

    #[test]
    fn stats_merge_across_threads() {
        let pool = Arc::new(fifo());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    pool.push(Ult::new(format!("u{i}"), || {}));
                    // 4 pushes total, so each thread eventually gets one.
                    let ult = loop {
                        match pool.try_pop() {
                            Some(ult) => break ult,
                            None => std::thread::yield_now(),
                        }
                    };
                    ult.run();
                    pool.record_execution(0.25);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.total_pushed, 4);
        assert_eq!(stats.total_popped, 4);
        assert_eq!(stats.size, 0);
        assert_eq!(stats.wait.num(), 4);
        assert_eq!(stats.exec.num(), 4);
        assert!((stats.exec.avg() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn notifier_wakes_waiters() {
        let pool = Arc::new(fifo());
        let woke = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let woke = Arc::clone(&woke);
                std::thread::spawn(move || {
                    let generation = pool.notifier().generation();
                    pool.notifier().wait_if_unchanged(generation, Duration::from_secs(5));
                    woke.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        pool.push(Ult::new("wake", || {}));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 2);
    }
}
