//! User-level threads: named units of work submitted to pools.

use std::time::Instant;

use mochi_util::unique_u64;

/// The work carried by a ULT.
pub type UltTask = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work. Created with [`Ult::new`] and submitted to a
/// [`crate::pool::Pool`]; an execution stream eventually runs it to
/// completion.
pub struct Ult {
    /// Unique id (diagnostics).
    pub id: u64,
    /// Human-readable label (e.g. the RPC name it serves).
    pub name: String,
    /// Priority for `prio_wait` pools; higher runs first. FIFO pools
    /// ignore it.
    pub priority: i32,
    /// When the ULT was created (used for queue-wait statistics).
    pub submitted_at: Instant,
    pub(crate) task: UltTask,
}

impl Ult {
    /// Creates a ULT with priority 0.
    pub fn new(name: impl Into<String>, task: impl FnOnce() + Send + 'static) -> Self {
        Self {
            id: unique_u64(),
            name: name.into(),
            priority: 0,
            submitted_at: Instant::now(),
            task: Box::new(task),
        }
    }

    /// Creates a ULT with an explicit priority.
    pub fn with_priority(
        name: impl Into<String>,
        priority: i32,
        task: impl FnOnce() + Send + 'static,
    ) -> Self {
        let mut ult = Self::new(name, task);
        ult.priority = priority;
        ult
    }

    /// Consumes the ULT and runs its task.
    pub fn run(self) {
        (self.task)();
    }
}

impl std::fmt::Debug for Ult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ult")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn run_executes_task() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let ult = Ult::new("t", move || f2.store(true, Ordering::SeqCst));
        ult.run();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn ids_differ() {
        let a = Ult::new("a", || {});
        let b = Ult::new("b", || {});
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn priority_recorded() {
        let u = Ult::with_priority("p", 7, || {});
        assert_eq!(u.priority, 7);
    }
}
