//! Execution streams: OS threads running a scheduler over pools.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::config::{SchedulerKind, XstreamConfig};
use crate::pool::{Notifier, Pool};

/// How long a `basic_wait` scheduler sleeps per idle round; the notifier
/// cuts this short whenever work arrives, so it only bounds how quickly an
/// ES notices its own shutdown flag.
const IDLE_WAIT: Duration = Duration::from_millis(50);

/// Point-in-time statistics of one execution stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XstreamStats {
    /// Xstream name.
    pub name: String,
    /// ULTs executed so far.
    pub ults_executed: u64,
    /// Cumulative busy time in seconds.
    pub busy_seconds: f64,
}

struct Shared {
    stop: AtomicBool,
    ults_executed: AtomicU64,
    /// Busy nanoseconds, accumulated.
    busy_nanos: AtomicU64,
}

/// A running execution stream. Dropping the handle without calling
/// [`ExecutionStream::stop`] detaches the thread; the runtime always stops
/// streams explicitly.
pub struct ExecutionStream {
    config: XstreamConfig,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
    notifier: Arc<Notifier>,
}

impl ExecutionStream {
    /// Spawns an ES executing ULTs from `pools` (ordered: earlier pools
    /// win). `pools` must match `config.scheduler.pools`; the runtime
    /// guarantees this.
    pub fn spawn(config: XstreamConfig, pools: Vec<Arc<Pool>>, notifier: Arc<Notifier>) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            ults_executed: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_notifier = Arc::clone(&notifier);
        let kind = config.scheduler.kind;
        let name = config.name.clone();
        let thread = std::thread::Builder::new()
            .name(format!("abt-es-{name}"))
            .spawn(move || scheduler_loop(kind, pools, thread_shared, thread_notifier))
            .expect("spawn execution stream");
        Self { config, shared, thread: Some(thread), notifier }
    }

    /// Xstream name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The xstream's configuration.
    pub fn config(&self) -> &XstreamConfig {
        &self.config
    }

    /// Names of the pools this ES serves, in scheduler order.
    pub fn pool_names(&self) -> &[String] {
        &self.config.scheduler.pools
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> XstreamStats {
        XstreamStats {
            name: self.config.name.clone(),
            ults_executed: self.shared.ults_executed.load(Ordering::Relaxed),
            busy_seconds: self.shared.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Signals the scheduler to exit after the current ULT and joins the
    /// thread. Pending ULTs stay in their pools (another ES — possibly a
    /// replacement — can drain them; this is what makes remapping
    /// providers to new ESs lossless).
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.notifier.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ExecutionStream {
    fn drop(&mut self) {
        self.stop();
    }
}

fn scheduler_loop(kind: SchedulerKind, pools: Vec<Arc<Pool>>, shared: Arc<Shared>, notifier: Arc<Notifier>) {
    while !shared.stop.load(Ordering::SeqCst) {
        // Read the generation before scanning, so a push racing with the
        // scan makes the subsequent wait return immediately.
        let generation = notifier.generation();
        let mut ran = false;
        for pool in &pools {
            if let Some(ult) = pool.try_pop() {
                let start = std::time::Instant::now();
                ult.run();
                let elapsed = start.elapsed();
                pool.record_execution(elapsed.as_secs_f64());
                shared.ults_executed.fetch_add(1, Ordering::Relaxed);
                shared.busy_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                ran = true;
                break; // restart from the highest-priority pool
            }
        }
        if !ran {
            match kind {
                SchedulerKind::Basic => std::thread::yield_now(),
                SchedulerKind::BasicWait => notifier.wait_if_unchanged(generation, IDLE_WAIT),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PoolConfig, SchedulerConfig};
    use crate::ult::Ult;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;

    fn setup(kind: SchedulerKind, pool_names: &[&str]) -> (Vec<Arc<Pool>>, ExecutionStream) {
        let notifier = Arc::new(Notifier::new());
        let pools: Vec<Arc<Pool>> = pool_names
            .iter()
            .map(|n| Arc::new(Pool::new(PoolConfig::named(*n), Arc::clone(&notifier))))
            .collect();
        let config = XstreamConfig {
            name: "es0".into(),
            scheduler: SchedulerConfig {
                kind,
                pools: pool_names.iter().map(|s| s.to_string()).collect(),
            },
        };
        let es = ExecutionStream::spawn(config, pools.clone(), notifier);
        (pools, es)
    }

    #[test]
    fn executes_submitted_ults() {
        let (pools, mut es) = setup(SchedulerKind::BasicWait, &["p"]);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pools[0].push(Ult::new("inc", move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || counter.load(Ordering::SeqCst) == 100
        ));
        es.stop();
        assert_eq!(es.stats().ults_executed, 100);
        assert!(es.stats().busy_seconds >= 0.0);
    }

    #[test]
    fn earlier_pools_have_priority() {
        let (pools, mut es) = setup(SchedulerKind::BasicWait, &["high", "low"]);
        let order = Arc::new(Mutex::new(Vec::new()));
        // Block the ES so both submissions queue up before any runs.
        let gate = Arc::new(Mutex::new(()));
        let guard = gate.lock();
        let g2 = Arc::clone(&gate);
        pools[1].push(Ult::new("block", move || {
            drop(g2.lock());
        }));
        std::thread::sleep(Duration::from_millis(20)); // let the ES pick it up
        for (pool_idx, label) in [(1usize, "low"), (0usize, "high")] {
            let order = Arc::clone(&order);
            pools[pool_idx].push(Ult::new(label, move || order.lock().push(label)));
        }
        drop(guard); // release the ES
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || order.lock().len() == 2
        ));
        assert_eq!(*order.lock(), vec!["high", "low"]);
        es.stop();
    }

    #[test]
    fn stop_leaves_pending_ults_in_pool() {
        let (pools, mut es) = setup(SchedulerKind::BasicWait, &["p"]);
        // Occupy the ES with a slow ULT, then queue more.
        pools[0].push(Ult::new("slow", || std::thread::sleep(Duration::from_millis(50))));
        std::thread::sleep(Duration::from_millis(10));
        for _ in 0..5 {
            pools[0].push(Ult::new("queued", || {}));
        }
        es.stop();
        // The slow ULT completed; queued ones may remain.
        assert!(pools[0].len() <= 5);
        let executed = es.stats().ults_executed;
        assert_eq!(executed + pools[0].len() as u64, 6);
    }

    #[test]
    fn basic_scheduler_also_works() {
        let (pools, mut es) = setup(SchedulerKind::Basic, &["p"]);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pools[0].push(Ult::new("u", move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || done.load(Ordering::SeqCst) == 1
        ));
        es.stop();
    }

    #[test]
    fn two_xstreams_share_one_pool() {
        let notifier = Arc::new(Notifier::new());
        let pool = Arc::new(Pool::new(PoolConfig::named("shared"), Arc::clone(&notifier)));
        let mk = |name: &str| {
            ExecutionStream::spawn(
                XstreamConfig {
                    name: name.into(),
                    scheduler: SchedulerConfig {
                        kind: SchedulerKind::BasicWait,
                        pools: vec!["shared".into()],
                    },
                },
                vec![Arc::clone(&pool)],
                Arc::clone(&notifier),
            )
        };
        let mut es1 = mk("es1");
        let mut es2 = mk("es2");
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let c = Arc::clone(&counter);
            pool.push(Ult::new("inc", move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || counter.load(Ordering::SeqCst) == 200
        ));
        es1.stop();
        es2.stop();
        assert_eq!(es1.stats().ults_executed + es2.stats().ults_executed, 200);
    }
}
