//! JSON configuration schema for pools and execution streams.
//!
//! This is the `"argobots"` section of a Margo configuration document
//! (the paper's Listing 2):
//!
//! ```json
//! { "pools": [ { "name": "MyPoolX", "type": "fifo_wait", "access": "mpmc" } ],
//!   "xstreams": [ { "name": "MyES0",
//!                   "scheduler": { "type": "basic", "pools": ["MyPoolX"] } } ] }
//! ```

use serde::{Deserialize, Serialize};

/// Queueing discipline of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PoolKind {
    /// FIFO; schedulers poll it.
    Fifo,
    /// FIFO; schedulers sleep until work arrives (the common default).
    #[default]
    FifoWait,
    /// Priority queue; higher [`crate::ult::Ult::priority`] runs first.
    PrioWait,
}

/// Concurrency mode of a pool. Real Argobots offers several single-
/// producer/consumer variants as lock-avoidance optimizations; all Mochi
/// configurations in the paper use `mpmc`, which is what we implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PoolAccess {
    /// Multi-producer multi-consumer.
    #[default]
    Mpmc,
}

/// Configuration of one pool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Unique pool name.
    pub name: String,
    /// Queueing discipline.
    #[serde(rename = "type", default)]
    pub kind: PoolKind,
    /// Concurrency mode.
    #[serde(default)]
    pub access: PoolAccess,
}

impl PoolConfig {
    /// A `fifo_wait`/`mpmc` pool with the given name.
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into(), kind: PoolKind::FifoWait, access: PoolAccess::Mpmc }
    }
}

/// Scheduler algorithm run by an execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SchedulerKind {
    /// Round-robin over the pool list, polling.
    Basic,
    /// Round-robin over the pool list, sleeping when all pools are empty.
    #[default]
    BasicWait,
}

/// Scheduler configuration of one execution stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Algorithm.
    #[serde(rename = "type", default)]
    pub kind: SchedulerKind,
    /// Ordered pool names; earlier pools have priority.
    pub pools: Vec<String>,
}

/// Configuration of one execution stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XstreamConfig {
    /// Unique xstream name.
    pub name: String,
    /// Scheduler over an ordered pool list.
    pub scheduler: SchedulerConfig,
}

impl XstreamConfig {
    /// A `basic_wait` xstream pulling from a single pool.
    pub fn named(name: impl Into<String>, pool: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            scheduler: SchedulerConfig { kind: SchedulerKind::BasicWait, pools: vec![pool.into()] },
        }
    }
}

/// The full `"argobots"` document: pools plus xstreams.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AbtConfig {
    /// Pool definitions.
    #[serde(default)]
    pub pools: Vec<PoolConfig>,
    /// Execution stream definitions.
    #[serde(default)]
    pub xstreams: Vec<XstreamConfig>,
}

impl AbtConfig {
    /// The default topology used when no configuration is supplied: one
    /// `__primary__` pool served by one `__primary__` xstream.
    pub fn primary_only() -> Self {
        Self {
            pools: vec![PoolConfig::named("__primary__")],
            xstreams: vec![XstreamConfig::named("__primary__", "__primary__")],
        }
    }

    /// Structural validation: unique names, schedulers non-empty and
    /// referring to defined pools.
    pub fn validate(&self) -> Result<(), crate::error::AbtError> {
        use crate::error::AbtError;
        let mut pool_names = std::collections::HashSet::new();
        for p in &self.pools {
            if !pool_names.insert(p.name.as_str()) {
                return Err(AbtError::BadConfig(format!("duplicate pool '{}'", p.name)));
            }
        }
        let mut es_names = std::collections::HashSet::new();
        for x in &self.xstreams {
            if !es_names.insert(x.name.as_str()) {
                return Err(AbtError::BadConfig(format!("duplicate xstream '{}'", x.name)));
            }
            if x.scheduler.pools.is_empty() {
                return Err(AbtError::EmptyScheduler(x.name.clone()));
            }
            for pool in &x.scheduler.pools {
                if !pool_names.contains(pool.as_str()) {
                    return Err(AbtError::BadConfig(format!(
                        "xstream '{}' references undefined pool '{pool}'",
                        x.name
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING_2: &str = r#"
    { "pools": [ { "name": "MyPoolX",
                   "type": "fifo_wait",
                   "access": "mpmc" } ],
      "xstreams": [ { "name": "MyES0",
                      "scheduler": {
                          "type": "basic",
                          "pools": ["MyPoolX"] } } ] }
    "#;

    #[test]
    fn parses_listing_2() {
        let cfg: AbtConfig = serde_json::from_str(LISTING_2).unwrap();
        assert_eq!(cfg.pools.len(), 1);
        assert_eq!(cfg.pools[0].name, "MyPoolX");
        assert_eq!(cfg.pools[0].kind, PoolKind::FifoWait);
        assert_eq!(cfg.pools[0].access, PoolAccess::Mpmc);
        assert_eq!(cfg.xstreams[0].name, "MyES0");
        assert_eq!(cfg.xstreams[0].scheduler.kind, SchedulerKind::Basic);
        assert_eq!(cfg.xstreams[0].scheduler.pools, vec!["MyPoolX"]);
        cfg.validate().unwrap();
    }

    #[test]
    fn round_trips_through_json() {
        let cfg: AbtConfig = serde_json::from_str(LISTING_2).unwrap();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AbtConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn defaults_applied_when_fields_missing() {
        let cfg: AbtConfig =
            serde_json::from_str(r#"{"pools": [{"name": "p"}], "xstreams": []}"#).unwrap();
        assert_eq!(cfg.pools[0].kind, PoolKind::FifoWait);
        assert_eq!(cfg.pools[0].access, PoolAccess::Mpmc);
    }

    #[test]
    fn validate_rejects_duplicates() {
        let cfg = AbtConfig {
            pools: vec![PoolConfig::named("p"), PoolConfig::named("p")],
            xstreams: vec![],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_pool_reference() {
        let cfg = AbtConfig {
            pools: vec![PoolConfig::named("p")],
            xstreams: vec![XstreamConfig::named("es", "ghost")],
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_scheduler() {
        let cfg = AbtConfig {
            pools: vec![PoolConfig::named("p")],
            xstreams: vec![XstreamConfig {
                name: "es".into(),
                scheduler: SchedulerConfig { kind: SchedulerKind::Basic, pools: vec![] },
            }],
        };
        assert!(matches!(cfg.validate(), Err(crate::error::AbtError::EmptyScheduler(_))));
    }

    #[test]
    fn primary_only_is_valid() {
        AbtConfig::primary_only().validate().unwrap();
    }
}
