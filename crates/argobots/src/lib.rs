//! `mochi-argobots` — a user-level task runtime in the shape of Argobots.
//!
//! Argobots (Seo et al., TPDS'18) gives Mochi its threading model: *pools*
//! hold user-level threads (ULTs), *execution streams* (ESs — OS threads)
//! run schedulers that pull ULTs from an ordered list of pools, and
//! arbitrarily complex provider→pool→ES mappings can be configured (the
//! paper's Figure 2) and — crucially for this paper — **changed at run
//! time** (§5, Observation 2).
//!
//! We model a ULT as a boxed task executed to completion by an ES. Real
//! Argobots ULTs can yield mid-execution via stack switching; none of the
//! dynamic-service machinery in the paper depends on that, while all of it
//! depends on the pool/ES topology, which this crate reproduces:
//!
//! * [`pool::Pool`] — named ULT queues (`fifo`, `fifo_wait`, `prio_wait`)
//!   with the `mpmc` access mode,
//! * [`xstream::ExecutionStream`] — OS threads running a `basic` or
//!   `basic_wait` scheduler over an ordered pool list,
//! * [`runtime::AbtRuntime`] — the dynamic registry: pools and ESs can be
//!   added and removed online, with the validity rules the paper gives
//!   Margo ("not allowing adding multiple pools with the same name or
//!   removing a pool that is in use by an ES"),
//! * [`config`] — the `{"pools": …, "xstreams": …}` JSON schema of
//!   Listing 2.

pub mod config;
pub mod error;
pub mod pool;
pub mod runtime;
pub mod ult;
pub mod xstream;

pub use config::{
    AbtConfig, PoolAccess, PoolConfig, PoolKind, SchedulerConfig, SchedulerKind, XstreamConfig,
};
pub use error::AbtError;
pub use pool::{Pool, PoolStats};
pub use runtime::AbtRuntime;
pub use ult::Ult;
