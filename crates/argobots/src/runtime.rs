//! The dynamic pool/xstream registry.
//!
//! [`AbtRuntime`] owns the topology the paper's Figure 2 depicts and §5
//! makes dynamic: pools and execution streams can be added and removed at
//! run time, with validity enforced ("Margo ensures that the changes are
//! always valid, such as not allowing adding multiple pools with the same
//! name or removing a pool that is in use by an ES").

use std::collections::HashMap;
use std::sync::Arc;

use mochi_util::ordered_lock::{rank, OrderedMutex};

use crate::config::{AbtConfig, PoolConfig, XstreamConfig};
use crate::error::AbtError;
use crate::pool::{Notifier, Pool, PoolStats};
use crate::ult::Ult;
use crate::xstream::{ExecutionStream, XstreamStats};

struct Inner {
    pools: HashMap<String, Arc<Pool>>,
    xstreams: HashMap<String, ExecutionStream>,
    /// Insertion order for reproducible config dumps.
    pool_order: Vec<String>,
    xstream_order: Vec<String>,
    shutdown: bool,
}

/// The runtime: a registry of pools and execution streams with dynamic,
/// validity-checked reconfiguration. Cheap to clone.
#[derive(Clone)]
pub struct AbtRuntime {
    inner: Arc<OrderedMutex<Inner>>,
    notifier: Arc<Notifier>,
}

impl Default for AbtRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl AbtRuntime {
    /// Creates an empty runtime (no pools, no xstreams).
    pub fn new() -> Self {
        Self {
            inner: Arc::new(OrderedMutex::new(
                rank::ABT_RUNTIME,
                "abt.runtime",
                Inner {
                    pools: HashMap::new(),
                    xstreams: HashMap::new(),
                    pool_order: Vec::new(),
                    xstream_order: Vec::new(),
                    shutdown: false,
                },
            )),
            notifier: Arc::new(Notifier::new()),
        }
    }

    /// Creates a runtime from a configuration document (Listing 2 shape).
    pub fn from_config(config: &AbtConfig) -> Result<Self, AbtError> {
        config.validate()?;
        let runtime = Self::new();
        for pool in &config.pools {
            runtime.add_pool(pool.clone())?;
        }
        for xstream in &config.xstreams {
            runtime.add_xstream(xstream.clone())?;
        }
        Ok(runtime)
    }

    fn check_open(inner: &Inner) -> Result<(), AbtError> {
        if inner.shutdown {
            Err(AbtError::Shutdown)
        } else {
            Ok(())
        }
    }

    /// Adds a pool. Fails if the name is taken.
    pub fn add_pool(&self, config: PoolConfig) -> Result<Arc<Pool>, AbtError> {
        let mut inner = self.inner.lock();
        Self::check_open(&inner)?;
        if inner.pools.contains_key(&config.name) {
            return Err(AbtError::PoolExists(config.name));
        }
        let name = config.name.clone();
        let pool = Arc::new(Pool::new(config, Arc::clone(&self.notifier)));
        inner.pools.insert(name.clone(), Arc::clone(&pool));
        inner.pool_order.push(name);
        Ok(pool)
    }

    /// Removes a pool. Fails if any xstream's scheduler references it or
    /// if it still holds pending ULTs (removing it would strand them).
    pub fn remove_pool(&self, name: &str) -> Result<(), AbtError> {
        let mut inner = self.inner.lock();
        Self::check_open(&inner)?;
        if !inner.pools.contains_key(name) {
            return Err(AbtError::PoolNotFound(name.to_string()));
        }
        let users: Vec<String> = inner
            .xstreams
            .values()
            .filter(|es| es.pool_names().iter().any(|p| p == name))
            .map(|es| es.name().to_string())
            .collect();
        if !users.is_empty() {
            return Err(AbtError::PoolInUse { pool: name.to_string(), xstreams: users });
        }
        let pending = inner.pools[name].len();
        if pending > 0 {
            return Err(AbtError::PoolNotEmpty { pool: name.to_string(), pending });
        }
        inner.pools.remove(name);
        inner.pool_order.retain(|n| n != name);
        Ok(())
    }

    /// Adds and starts an execution stream. All pools referenced by its
    /// scheduler must already exist.
    pub fn add_xstream(&self, config: XstreamConfig) -> Result<(), AbtError> {
        let mut inner = self.inner.lock();
        Self::check_open(&inner)?;
        if inner.xstreams.contains_key(&config.name) {
            return Err(AbtError::XstreamExists(config.name));
        }
        if config.scheduler.pools.is_empty() {
            return Err(AbtError::EmptyScheduler(config.name));
        }
        let mut pools = Vec::with_capacity(config.scheduler.pools.len());
        for pool_name in &config.scheduler.pools {
            let pool = inner
                .pools
                .get(pool_name)
                .ok_or_else(|| AbtError::PoolNotFound(pool_name.clone()))?;
            pools.push(Arc::clone(pool));
        }
        let name = config.name.clone();
        let es = ExecutionStream::spawn(config, pools, Arc::clone(&self.notifier));
        inner.xstreams.insert(name.clone(), es);
        inner.xstream_order.push(name);
        Ok(())
    }

    /// Stops and removes an execution stream. Blocks until its thread
    /// joins; pending ULTs stay in their pools.
    pub fn remove_xstream(&self, name: &str) -> Result<(), AbtError> {
        let mut es = {
            let mut inner = self.inner.lock();
            Self::check_open(&inner)?;
            let es = inner
                .xstreams
                .remove(name)
                .ok_or_else(|| AbtError::XstreamNotFound(name.to_string()))?;
            inner.xstream_order.retain(|n| n != name);
            es
        };
        // Join outside the lock: the ES may be running a ULT that itself
        // touches the runtime.
        es.stop();
        Ok(())
    }

    /// Looks up a pool by name (the paper's `margo_find_pool_by_name`).
    pub fn find_pool(&self, name: &str) -> Option<Arc<Pool>> {
        self.inner.lock().pools.get(name).cloned()
    }

    /// Submits a ULT to a named pool.
    pub fn submit(&self, pool: &str, ult: Ult) -> Result<(), AbtError> {
        let pool = self.find_pool(pool).ok_or_else(|| AbtError::PoolNotFound(pool.to_string()))?;
        pool.push(ult);
        Ok(())
    }

    /// Names of all pools, in creation order.
    pub fn pool_names(&self) -> Vec<String> {
        self.inner.lock().pool_order.clone()
    }

    /// Names of all xstreams, in creation order.
    pub fn xstream_names(&self) -> Vec<String> {
        self.inner.lock().xstream_order.clone()
    }

    /// Names of xstreams whose schedulers reference `pool`.
    pub fn xstreams_using_pool(&self, pool: &str) -> Vec<String> {
        let inner = self.inner.lock();
        inner
            .xstream_order
            .iter()
            .filter(|name| {
                inner.xstreams[name.as_str()].pool_names().iter().any(|p| p == pool)
            })
            .cloned()
            .collect()
    }

    /// Snapshot of the current topology as a configuration document —
    /// what Bedrock serves when asked for a process's configuration.
    pub fn config(&self) -> AbtConfig {
        let inner = self.inner.lock();
        AbtConfig {
            pools: inner.pool_order.iter().map(|n| inner.pools[n].config().clone()).collect(),
            xstreams: inner
                .xstream_order
                .iter()
                .map(|n| inner.xstreams[n].config().clone())
                .collect(),
        }
    }

    /// Statistics snapshot of every pool.
    pub fn pool_stats(&self) -> Vec<PoolStats> {
        let inner = self.inner.lock();
        inner.pool_order.iter().map(|n| inner.pools[n].stats()).collect()
    }

    /// Statistics snapshot of every xstream.
    pub fn xstream_stats(&self) -> Vec<XstreamStats> {
        let inner = self.inner.lock();
        inner.xstream_order.iter().map(|n| inner.xstreams[n].stats()).collect()
    }

    /// Stops all execution streams and rejects further topology changes.
    /// Pools (and any pending ULTs) are dropped.
    pub fn shutdown(&self) {
        let mut streams = {
            let mut inner = self.inner.lock();
            if inner.shutdown {
                return;
            }
            inner.shutdown = true;
            inner.xstream_order.clear();
            inner.pool_order.clear();
            inner.pools.clear();
            std::mem::take(&mut inner.xstreams)
        };
        for es in streams.values_mut() {
            es.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PoolKind, SchedulerConfig, SchedulerKind};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn basic_runtime() -> AbtRuntime {
        AbtRuntime::from_config(&AbtConfig::primary_only()).unwrap()
    }

    #[test]
    fn from_config_builds_topology() {
        let rt = basic_runtime();
        assert_eq!(rt.pool_names(), vec!["__primary__"]);
        assert_eq!(rt.xstream_names(), vec!["__primary__"]);
        assert!(rt.find_pool("__primary__").is_some());
    }

    #[test]
    fn submit_executes_work() {
        let rt = basic_runtime();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            rt.submit("__primary__", Ult::new("w", move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || counter.load(Ordering::SeqCst) == 50
        ));
        rt.shutdown();
    }

    #[test]
    fn duplicate_pool_rejected() {
        let rt = basic_runtime();
        let err = rt.add_pool(PoolConfig::named("__primary__")).unwrap_err();
        assert_eq!(err, AbtError::PoolExists("__primary__".into()));
    }

    #[test]
    fn cannot_remove_pool_in_use() {
        let rt = basic_runtime();
        let err = rt.remove_pool("__primary__").unwrap_err();
        assert!(matches!(err, AbtError::PoolInUse { .. }));
    }

    #[test]
    fn cannot_remove_nonempty_pool() {
        let rt = basic_runtime();
        rt.add_pool(PoolConfig::named("idle")).unwrap();
        rt.submit("idle", Ult::new("stuck", || {})).unwrap(); // no ES serves it
        let err = rt.remove_pool("idle").unwrap_err();
        assert!(matches!(err, AbtError::PoolNotEmpty { pending: 1, .. }));
    }

    #[test]
    fn online_add_then_remove_pool_and_xstream() {
        let rt = basic_runtime();
        rt.add_pool(PoolConfig::named("extra")).unwrap();
        rt.add_xstream(XstreamConfig::named("extra-es", "extra")).unwrap();
        // Work flows through the new pair.
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        rt.submit("extra", Ult::new("w", move || {
            c.fetch_add(1, Ordering::SeqCst);
        }))
        .unwrap();
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || counter.load(Ordering::SeqCst) == 1
        ));
        // Tear down in the valid order: ES first, then pool.
        assert!(rt.remove_pool("extra").is_err());
        rt.remove_xstream("extra-es").unwrap();
        rt.remove_pool("extra").unwrap();
        assert_eq!(rt.pool_names(), vec!["__primary__"]);
    }

    #[test]
    fn xstream_referencing_missing_pool_rejected() {
        let rt = basic_runtime();
        let err = rt.add_xstream(XstreamConfig::named("es", "ghost")).unwrap_err();
        assert_eq!(err, AbtError::PoolNotFound("ghost".into()));
    }

    #[test]
    fn config_snapshot_round_trips() {
        let rt = basic_runtime();
        rt.add_pool(PoolConfig {
            name: "prio".into(),
            kind: PoolKind::PrioWait,
            access: Default::default(),
        })
        .unwrap();
        rt.add_xstream(XstreamConfig {
            name: "es2".into(),
            scheduler: SchedulerConfig {
                kind: SchedulerKind::BasicWait,
                pools: vec!["prio".into(), "__primary__".into()],
            },
        })
        .unwrap();
        let snapshot = rt.config();
        snapshot.validate().unwrap();
        let rt2 = AbtRuntime::from_config(&snapshot).unwrap();
        assert_eq!(rt2.config(), snapshot);
        rt.shutdown();
        rt2.shutdown();
    }

    #[test]
    fn xstreams_using_pool_reports_users() {
        let rt = basic_runtime();
        assert_eq!(rt.xstreams_using_pool("__primary__"), vec!["__primary__"]);
        assert!(rt.xstreams_using_pool("ghost").is_empty());
    }

    #[test]
    fn shutdown_blocks_further_changes() {
        let rt = basic_runtime();
        rt.shutdown();
        assert_eq!(rt.add_pool(PoolConfig::named("x")).unwrap_err(), AbtError::Shutdown);
        assert!(rt.find_pool("__primary__").is_none());
        // Idempotent.
        rt.shutdown();
    }

    #[test]
    fn remapping_providers_pool_to_new_xstream_drains_backlog() {
        // Scenario from §5: remove the ES serving a pool, pending work
        // stays queued, a replacement ES drains it.
        let rt = basic_runtime();
        rt.add_pool(PoolConfig::named("work")).unwrap();
        rt.add_xstream(XstreamConfig::named("es-a", "work")).unwrap();
        // Occupy es-a, then queue a backlog.
        let gate = Arc::new(parking_lot::Mutex::new(()));
        let guard = gate.lock();
        let g = Arc::clone(&gate);
        rt.submit("work", Ult::new("block", move || {
            drop(g.lock());
        }))
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            rt.submit("work", Ult::new("queued", move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        drop(guard);
        rt.remove_xstream("es-a").unwrap();
        let drained_before = counter.load(Ordering::SeqCst);
        rt.add_xstream(XstreamConfig::named("es-b", "work")).unwrap();
        assert!(mochi_util::time::wait_until(
            Duration::from_secs(5),
            Duration::from_millis(1),
            || counter.load(Ordering::SeqCst) == 10
        ));
        assert!(drained_before <= 10);
        rt.shutdown();
    }
}
