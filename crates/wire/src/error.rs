//! Error type shared by the wire serializer and deserializer.

use std::fmt;

/// Failure while encoding to or decoding from the mochi wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended in the middle of a value.
    Eof,
    /// A complete value was decoded but bytes remain after it.
    TrailingBytes,
    /// An unknown type tag was encountered.
    InvalidTag(u8),
    /// A string run was not valid UTF-8.
    InvalidUtf8,
    /// A varint did not terminate within ten bytes or overflowed `u64`.
    VarintOverflow,
    /// An integer does not fit the representable range (e.g. `u128` above
    /// `u64::MAX`, or a negative run below `i64::MIN`).
    IntOutOfRange,
    /// The data model feature is not representable on the wire.
    Unsupported(&'static str),
    /// Error reported by a `Serialize`/`Deserialize` implementation.
    Message(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
            WireError::InvalidTag(tag) => write!(f, "invalid wire tag 0x{tag:02x}"),
            WireError::InvalidUtf8 => write!(f, "string run is not valid UTF-8"),
            WireError::VarintOverflow => write!(f, "varint overflows u64"),
            WireError::IntOutOfRange => write!(f, "integer out of representable range"),
            WireError::Unsupported(what) => write!(f, "unsupported: {what}"),
            WireError::Message(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}
