//! Deserializer from the mochi wire format back into the serde data model.
//!
//! The format is fully self-describing, so `deserialize_any` drives almost
//! everything (this is what lets `serde_json::Value` RPC arguments — Bedrock
//! configs in flight — travel over the wire codec unchanged). The two places
//! that need the caller's hint:
//!
//! - `deserialize_seq` accepts a `Bytes` run and replays it one `u8` at a
//!   time, so `Vec<u8>` decodes from the compact blob layout,
//! - `deserialize_option` maps `Null` to `None` without consuming a visitor
//!   hint.
//!
//! Strings and byte runs are handed to visitors as borrowed slices of the
//! input (`visit_borrowed_str` / `visit_borrowed_bytes`), so zero-copy
//! targets like `&str` or `Bytes`-backed bodies never reallocate.

use crate::error::WireError;
use crate::tag;
use crate::varint;
use serde::de::{self, Deserializer as _, IntoDeserializer, Visitor};

/// Deserializer reading from a borrowed byte slice.
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    /// Bytes not yet consumed (used by `from_slice` to reject trailing data).
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    fn peek_tag(&self) -> Result<u8, WireError> {
        self.input.first().copied().ok_or(WireError::Eof)
    }

    fn read_tag(&mut self) -> Result<u8, WireError> {
        let tag = self.peek_tag()?;
        self.input = &self.input[1..];
        Ok(tag)
    }

    fn read_varint(&mut self) -> Result<u64, WireError> {
        let (value, used) = varint::read_u64(self.input)?;
        self.input = &self.input[used..];
        Ok(value)
    }

    fn read_len(&mut self) -> Result<usize, WireError> {
        let len = self.read_varint()?;
        usize::try_from(len).map_err(|_| WireError::IntOutOfRange)
    }

    fn read_exact(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError::Eof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn read_str(&mut self) -> Result<&'de str, WireError> {
        let len = self.read_len()?;
        let raw = self.read_exact(len)?;
        std::str::from_utf8(raw).map_err(|_| WireError::InvalidUtf8)
    }

    fn read_nint(&mut self) -> Result<i64, WireError> {
        let n = self.read_varint()?;
        // Stored as -1 - v, so anything above i64::MAX as u64 would
        // underflow i64::MIN.
        if n > i64::MAX as u64 {
            return Err(WireError::IntOutOfRange);
        }
        Ok(-1i64 - n as i64)
    }

    /// Consume one complete value without materializing it.
    fn skip_value(&mut self) -> Result<(), WireError> {
        match self.read_tag()? {
            tag::NULL | tag::FALSE | tag::TRUE => Ok(()),
            tag::UINT | tag::NINT => self.read_varint().map(|_| ()),
            tag::F32 => self.read_exact(4).map(|_| ()),
            tag::F64 => self.read_exact(8).map(|_| ()),
            tag::STR | tag::BYTES => {
                let len = self.read_len()?;
                self.read_exact(len).map(|_| ())
            }
            tag::SEQ => {
                let count = self.read_len()?;
                for _ in 0..count {
                    self.skip_value()?;
                }
                Ok(())
            }
            tag::MAP => {
                let count = self.read_len()?;
                for _ in 0..count {
                    self.skip_value()?;
                    self.skip_value()?;
                }
                Ok(())
            }
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut Deserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.read_tag()? {
            tag::NULL => visitor.visit_unit(),
            tag::FALSE => visitor.visit_bool(false),
            tag::TRUE => visitor.visit_bool(true),
            tag::UINT => visitor.visit_u64(self.read_varint()?),
            tag::NINT => visitor.visit_i64(self.read_nint()?),
            tag::F32 => {
                let raw: [u8; 4] = self.read_exact(4)?.try_into().map_err(|_| WireError::Eof)?;
                visitor.visit_f32(f32::from_le_bytes(raw))
            }
            tag::F64 => {
                let raw: [u8; 8] = self.read_exact(8)?.try_into().map_err(|_| WireError::Eof)?;
                visitor.visit_f64(f64::from_le_bytes(raw))
            }
            tag::STR => visitor.visit_borrowed_str(self.read_str()?),
            tag::BYTES => {
                let len = self.read_len()?;
                visitor.visit_borrowed_bytes(self.read_exact(len)?)
            }
            tag::SEQ => {
                let count = self.read_len()?;
                visitor.visit_seq(SeqAccess { de: self, remaining: count })
            }
            tag::MAP => {
                let count = self.read_len()?;
                visitor.visit_map(MapAccess { de: self, remaining: count })
            }
            other => Err(WireError::InvalidTag(other)),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        if self.peek_tag()? == tag::NULL {
            self.input = &self.input[1..];
            visitor.visit_none()
        } else {
            visitor.visit_some(self)
        }
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        // `Vec<u8>`'s visitor only understands sequences; replay a compact
        // byte run as one `u8` element at a time.
        if self.peek_tag()? == tag::BYTES {
            self.input = &self.input[1..];
            let len = self.read_len()?;
            let bytes = self.read_exact(len)?;
            return visitor.visit_seq(ByteRunAccess { bytes });
        }
        self.deserialize_any(visitor)
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_seq(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        match self.peek_tag()? {
            // Unit variant: bare variant-name string.
            tag::STR => visitor.visit_enum(EnumAccess { de: self, unit: true }),
            // Externally tagged: single-entry map { variant: content }.
            tag::MAP => {
                self.input = &self.input[1..];
                let count = self.read_len()?;
                if count != 1 {
                    return Err(de::Error::invalid_length(count, &"map of length 1 for enum"));
                }
                visitor.visit_enum(EnumAccess { de: self, unit: false })
            }
            other => Err(WireError::InvalidTag(other)),
        }
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.skip_value()?;
        visitor.visit_unit()
    }

    serde::forward_to_deserialize_any! {
        bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 f64 char str string
        bytes byte_buf unit unit_struct map struct identifier
    }

    fn is_human_readable(&self) -> bool {
        true
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for SeqAccess<'a, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::MapAccess<'de> for MapAccess<'a, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Replays a `Bytes` run as a sequence of `u8` elements.
struct ByteRunAccess<'de> {
    bytes: &'de [u8],
}

impl<'de> de::SeqAccess<'de> for ByteRunAccess<'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        let Some((&byte, rest)) = self.bytes.split_first() else {
            return Ok(None);
        };
        self.bytes = rest;
        seed.deserialize(byte.into_deserializer()).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.bytes.len())
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    /// True when the wire form is a bare variant-name string (unit variant).
    unit: bool,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), WireError> {
        let variant = seed.deserialize(&mut *self.de)?;
        Ok((variant, VariantAccess { de: self.de, unit: self.unit }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    unit: bool,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        if self.unit {
            Ok(())
        } else {
            // Tolerate `{ variant: null }` for a unit variant.
            self.de.skip_value()
        }
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        if self.unit {
            return Err(de::Error::invalid_type(
                de::Unexpected::UnitVariant,
                &"newtype variant content",
            ));
        }
        seed.deserialize(&mut *self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, WireError> {
        if self.unit {
            return Err(de::Error::invalid_type(
                de::Unexpected::UnitVariant,
                &"tuple variant content",
            ));
        }
        self.de.deserialize_seq(visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        if self.unit {
            return Err(de::Error::invalid_type(
                de::Unexpected::UnitVariant,
                &"struct variant content",
            ));
        }
        self.de.deserialize_any(visitor)
    }
}
