//! LEB128 variable-length integers.
//!
//! Unsigned values are emitted little-endian, seven bits per byte, with the
//! high bit of each byte set while more bytes follow. `u64::MAX` takes ten
//! bytes; values below 128 take one.

use crate::error::WireError;
use bytes::BufMut;

/// Maximum encoded length of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Append `value` as a LEB128 varint.
pub fn write_u64<B: BufMut>(out: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Decode a LEB128 varint from the front of `input`, returning the value and
/// the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate().take(MAX_LEN) {
        let chunk = u64::from(byte & 0x7f);
        // The tenth byte supplies bits 63.. — anything above bit 63 overflows.
        if shift == 63 && chunk > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if input.len() < MAX_LEN {
        Err(WireError::Eof)
    } else {
        Err(WireError::VarintOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_edges() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, value);
            assert!(buf.len() <= MAX_LEN);
            let (decoded, used) = read_u64(&buf).unwrap();
            assert_eq!(decoded, value);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for value in 0u64..128 {
            let mut buf = Vec::new();
            write_u64(&mut buf, value);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(read_u64(&buf[..buf.len() - 1]), Err(WireError::Eof));
        assert_eq!(read_u64(&[]), Err(WireError::Eof));
    }

    #[test]
    fn overlong_varint_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let buf = [0xffu8; 11];
        assert_eq!(read_u64(&buf), Err(WireError::VarintOverflow));
    }
}
