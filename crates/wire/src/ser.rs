//! Serializer from the serde data model to the mochi wire format.
//!
//! The encoding mirrors JSON's data model so the JSON and wire codecs are
//! interchangeable for every type that crosses an RPC boundary:
//!
//! - structs serialize as maps keyed by field-name strings,
//! - enums are externally tagged (`Str(variant)` for unit variants,
//!   `Map(1) { variant: content }` otherwise),
//! - `Option` collapses to `Null` / the bare value,
//! - `()` and unit structs are `Null`.
//!
//! The one deliberate departure from JSON: a sequence whose elements all
//! serialize as `u8` (e.g. `Vec<u8>`) is emitted as a raw length-prefixed
//! byte run (`Bytes` tag) rather than a per-element list. This is what turns
//! ~3.7 bytes per payload byte of JSON into 1 byte per byte plus a small
//! constant header.

use crate::error::WireError;
use crate::tag;
use crate::varint;
use bytes::BufMut;
use serde::ser::{self, Serialize};

/// Serializer writing wire bytes into any [`BufMut`] (a `Vec<u8>`, or the
/// framing layer's reusable `BytesMut` scratch).
pub struct Serializer<'a, B: BufMut> {
    out: &'a mut B,
}

impl<'a, B: BufMut> Serializer<'a, B> {
    pub fn new(out: &'a mut B) -> Self {
        Serializer { out }
    }

    fn put_str(&mut self, v: &str) {
        self.out.put_u8(tag::STR);
        varint::write_u64(self.out, v.len() as u64);
        self.out.put_slice(v.as_bytes());
    }

    fn put_uint(&mut self, v: u64) {
        self.out.put_u8(tag::UINT);
        varint::write_u64(self.out, v);
    }
}

impl<'a, 'b, B: BufMut> ser::Serializer for &'b mut Serializer<'a, B> {
    type Ok = ();
    type Error = WireError;

    type SerializeSeq = SeqSerializer<'b, 'a, B>;
    type SerializeTuple = TupleSerializer<'b, 'a, B>;
    type SerializeTupleStruct = TupleSerializer<'b, 'a, B>;
    type SerializeTupleVariant = TupleSerializer<'b, 'a, B>;
    type SerializeMap = MapSerializer<'b, 'a, B>;
    type SerializeStruct = StructSerializer<'b, 'a, B>;
    type SerializeStructVariant = StructSerializer<'b, 'a, B>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.put_u8(if v { tag::TRUE } else { tag::FALSE });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        if v >= 0 {
            self.put_uint(v as u64);
        } else {
            // CBOR-style: a negative run stores -1 - v, so -1 is 0.
            self.out.put_u8(tag::NINT);
            varint::write_u64(self.out, (-1i64 - v) as u64);
        }
        Ok(())
    }

    fn serialize_i128(self, v: i128) -> Result<(), WireError> {
        i64::try_from(v)
            .map_err(|_| WireError::IntOutOfRange)
            .and_then(|v| self.serialize_i64(v))
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.put_uint(u64::from(v));
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.put_uint(u64::from(v));
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.put_uint(u64::from(v));
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.put_uint(v);
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<(), WireError> {
        u64::try_from(v)
            .map_err(|_| WireError::IntOutOfRange)
            .map(|v| self.put_uint(v))
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.put_u8(tag::F32);
        self.out.put_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.put_u8(tag::F64);
        self.out.put_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        let mut buf = [0u8; 4];
        self.put_str(v.encode_utf8(&mut buf));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.put_str(v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.out.put_u8(tag::BYTES);
        varint::write_u64(self.out, v.len() as u64);
        self.out.put_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.put_u8(tag::NULL);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        self.out.put_u8(tag::NULL);
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), WireError> {
        self.put_str(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.out.put_u8(tag::MAP);
        varint::write_u64(self.out, 1);
        self.put_str(variant);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, WireError> {
        let mode = match len {
            // Probe for an all-u8 sequence before committing to a layout.
            Some(n) => SeqMode::Probing {
                expected: n,
                bytes: Vec::with_capacity(n.min(4096)),
            },
            None => SeqMode::Buffering { count: 0, buf: Vec::new() },
        };
        Ok(SeqSerializer { ser: self, mode })
    }

    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, WireError> {
        self.out.put_u8(tag::SEQ);
        varint::write_u64(self.out, len as u64);
        Ok(TupleSerializer { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, WireError> {
        self.serialize_tuple(len)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, WireError> {
        self.out.put_u8(tag::MAP);
        varint::write_u64(self.out, 1);
        self.put_str(variant);
        self.serialize_tuple(len)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, WireError> {
        match len {
            Some(n) => {
                self.out.put_u8(tag::MAP);
                varint::write_u64(self.out, n as u64);
                Ok(MapSerializer::Streaming { ser: self })
            }
            None => Ok(MapSerializer::Buffering { ser: self, count: 0, buf: Vec::new() }),
        }
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, WireError> {
        self.out.put_u8(tag::MAP);
        varint::write_u64(self.out, len as u64);
        Ok(StructSerializer { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, WireError> {
        self.out.put_u8(tag::MAP);
        varint::write_u64(self.out, 1);
        self.put_str(variant);
        self.out.put_u8(tag::MAP);
        varint::write_u64(self.out, len as u64);
        Ok(StructSerializer { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        // Match serde_json so types that pick a representation based on this
        // flag (none in this workspace today) stay wire/JSON-equivalent.
        true
    }
}

enum SeqMode {
    /// Length known up front; elements probed for `u8` until proven otherwise.
    Probing { expected: usize, bytes: Vec<u8> },
    /// Committed to the general `Seq` layout; elements stream straight out.
    Streaming,
    /// Length unknown; fully-encoded elements accumulate in `buf`.
    Buffering { count: usize, buf: Vec<u8> },
}

/// Sequence serializer implementing the byte-run probe described in the
/// module docs.
pub struct SeqSerializer<'b, 'a, B: BufMut> {
    ser: &'b mut Serializer<'a, B>,
    mode: SeqMode,
}

impl<'b, 'a, B: BufMut> ser::SerializeSeq for SeqSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        match &mut self.mode {
            SeqMode::Probing { expected, bytes } => {
                match value.serialize(ProbeU8) {
                    Ok(byte) => {
                        bytes.push(byte);
                        Ok(())
                    }
                    Err(ProbeMiss) => {
                        // First non-u8 element: commit to the Seq layout,
                        // replaying what the probe buffered so far.
                        self.ser.out.put_u8(tag::SEQ);
                        varint::write_u64(self.ser.out, *expected as u64);
                        for &b in bytes.iter() {
                            self.ser.put_uint(u64::from(b));
                        }
                        self.mode = SeqMode::Streaming;
                        value.serialize(&mut *self.ser)
                    }
                }
            }
            SeqMode::Streaming => value.serialize(&mut *self.ser),
            SeqMode::Buffering { count, buf } => {
                value.serialize(&mut Serializer::new(buf))?;
                *count += 1;
                Ok(())
            }
        }
    }

    fn end(self) -> Result<(), WireError> {
        match self.mode {
            SeqMode::Probing { bytes, .. } => {
                if bytes.is_empty() {
                    // An empty sequence carries no element-type evidence;
                    // keep it a Seq so it decodes as a list of anything.
                    self.ser.out.put_u8(tag::SEQ);
                    varint::write_u64(self.ser.out, 0);
                } else {
                    // Every element was a u8 — emit the compact byte run.
                    self.ser.out.put_u8(tag::BYTES);
                    varint::write_u64(self.ser.out, bytes.len() as u64);
                    self.ser.out.put_slice(&bytes);
                }
                Ok(())
            }
            SeqMode::Streaming => Ok(()),
            SeqMode::Buffering { count, buf } => {
                self.ser.out.put_u8(tag::SEQ);
                varint::write_u64(self.ser.out, count as u64);
                self.ser.out.put_slice(&buf);
                Ok(())
            }
        }
    }
}

/// Tuples (and tuple structs/variants) have a statically-known arity, so the
/// `Seq` header is written eagerly and elements stream with no probing.
pub struct TupleSerializer<'b, 'a, B: BufMut> {
    ser: &'b mut Serializer<'a, B>,
}

impl<'b, 'a, B: BufMut> ser::SerializeTuple for TupleSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'b, 'a, B: BufMut> ser::SerializeTupleStruct for TupleSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'b, 'a, B: BufMut> ser::SerializeTupleVariant for TupleSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// Map serializer: streams when the entry count is known, buffers otherwise.
pub enum MapSerializer<'b, 'a, B: BufMut> {
    Streaming { ser: &'b mut Serializer<'a, B> },
    Buffering { ser: &'b mut Serializer<'a, B>, count: usize, buf: Vec<u8> },
}

impl<'b, 'a, B: BufMut> ser::SerializeMap for MapSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        match self {
            MapSerializer::Streaming { ser } => key.serialize(&mut **ser),
            MapSerializer::Buffering { buf, .. } => key.serialize(&mut Serializer::new(buf)),
        }
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        match self {
            MapSerializer::Streaming { ser } => value.serialize(&mut **ser),
            MapSerializer::Buffering { count, buf, .. } => {
                value.serialize(&mut Serializer::new(buf))?;
                *count += 1;
                Ok(())
            }
        }
    }

    fn end(self) -> Result<(), WireError> {
        match self {
            MapSerializer::Streaming { .. } => Ok(()),
            MapSerializer::Buffering { ser, count, buf } => {
                ser.out.put_u8(tag::MAP);
                varint::write_u64(ser.out, count as u64);
                ser.out.put_slice(&buf);
                Ok(())
            }
        }
    }
}

/// Struct serializer: the field count from `serialize_struct` already
/// excludes `skip_serializing_if` fields, so streaming is always safe.
pub struct StructSerializer<'b, 'a, B: BufMut> {
    ser: &'b mut Serializer<'a, B>,
}

impl<'b, 'a, B: BufMut> ser::SerializeStruct for StructSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.ser.put_str(key);
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl<'b, 'a, B: BufMut> ser::SerializeStructVariant for StructSerializer<'b, 'a, B> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.ser.put_str(key);
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

/// Marker error for the `u8` probe: the element was *not* a `u8`. Never
/// surfaced to callers — it only redirects the sequence onto the `Seq` path.
#[derive(Debug)]
struct ProbeMiss;

impl std::fmt::Display for ProbeMiss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sequence element is not a u8")
    }
}

impl std::error::Error for ProbeMiss {}

impl ser::Error for ProbeMiss {
    fn custom<T: std::fmt::Display>(_msg: T) -> Self {
        ProbeMiss
    }
}

/// A serializer that succeeds only for `serialize_u8`, used to sniff whether
/// a sequence is really a byte blob without any trait specialization.
struct ProbeU8;

impl ser::Serializer for ProbeU8 {
    type Ok = u8;
    type Error = ProbeMiss;

    type SerializeSeq = ser::Impossible<u8, ProbeMiss>;
    type SerializeTuple = ser::Impossible<u8, ProbeMiss>;
    type SerializeTupleStruct = ser::Impossible<u8, ProbeMiss>;
    type SerializeTupleVariant = ser::Impossible<u8, ProbeMiss>;
    type SerializeMap = ser::Impossible<u8, ProbeMiss>;
    type SerializeStruct = ser::Impossible<u8, ProbeMiss>;
    type SerializeStructVariant = ser::Impossible<u8, ProbeMiss>;

    fn serialize_u8(self, v: u8) -> Result<u8, ProbeMiss> {
        Ok(v)
    }

    fn serialize_bool(self, _: bool) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_i8(self, _: i8) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_i16(self, _: i16) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_i32(self, _: i32) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_i64(self, _: i64) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_u16(self, _: u16) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_u32(self, _: u32) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_u64(self, _: u64) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_f32(self, _: f32) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_f64(self, _: f64) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_char(self, _: char) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_str(self, _: &str) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_bytes(self, _: &[u8]) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_none(self) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, _: &T) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_unit(self) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_unit_struct(self, _: &'static str) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_unit_variant(self, _: &'static str, _: u32, _: &'static str) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: &T,
    ) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: &T,
    ) -> Result<u8, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_tuple_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleStruct, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_tuple_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeTupleVariant, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_struct(
        self,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStruct, ProbeMiss> {
        Err(ProbeMiss)
    }
    fn serialize_struct_variant(
        self,
        _: &'static str,
        _: u32,
        _: &'static str,
        _: usize,
    ) -> Result<Self::SerializeStructVariant, ProbeMiss> {
        Err(ProbeMiss)
    }

    fn is_human_readable(&self) -> bool {
        true
    }
}
