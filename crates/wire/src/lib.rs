//! # mochi-wire
//!
//! A compact, self-describing binary codec for the mochi-rs RPC hot path.
//!
//! Mercury (Soumagne et al.) ships proc-encoded binary buffers because
//! argument serialization dominates small-RPC latency; this crate plays the
//! same role for mochi-rs. It is a hand-rolled serde `Serializer` /
//! `Deserializer` with **no external dependencies beyond serde and bytes**,
//! designed so `margo::codec` can swap it in for `serde_json` without any
//! RPC argument type changing shape.
//!
//! ## Wire layout
//!
//! Every value is a one-byte tag followed by tag-specific payload:
//!
//! | tag    | byte | payload                                            |
//! |--------|------|----------------------------------------------------|
//! | Null   | 0x00 | —                                                  |
//! | False  | 0x01 | —                                                  |
//! | True   | 0x02 | —                                                  |
//! | UInt   | 0x03 | LEB128 varint (`u64`)                              |
//! | NInt   | 0x04 | LEB128 varint of `-1 - v` (CBOR-style negatives)   |
//! | F32    | 0x05 | 4 bytes little-endian                              |
//! | F64    | 0x06 | 8 bytes little-endian                              |
//! | Str    | 0x07 | varint length + UTF-8 bytes                        |
//! | Bytes  | 0x08 | varint length + raw bytes                          |
//! | Seq    | 0x09 | varint count + that many values                    |
//! | Map    | 0x0a | varint count + that many key/value pairs           |
//!
//! Structs are maps keyed by field-name strings; enums are externally tagged
//! exactly like `serde_json`; `Option` is `Null`-or-value. A sequence whose
//! elements all serialize as `u8` (a `Vec<u8>` blob) collapses to a `Bytes`
//! run: one byte per byte instead of JSON's ~3.7.

mod de;
mod error;
mod ser;
mod varint;

pub use error::WireError;

use bytes::BufMut;
use serde::{Deserialize, Serialize};

/// One-byte type tags. Public for tooling and tests; the codec API never
/// requires touching these directly.
pub mod tag {
    pub const NULL: u8 = 0x00;
    pub const FALSE: u8 = 0x01;
    pub const TRUE: u8 = 0x02;
    pub const UINT: u8 = 0x03;
    pub const NINT: u8 = 0x04;
    pub const F32: u8 = 0x05;
    pub const F64: u8 = 0x06;
    pub const STR: u8 = 0x07;
    pub const BYTES: u8 = 0x08;
    pub const SEQ: u8 = 0x09;
    pub const MAP: u8 = 0x0a;
}

/// Serialize `value` into a fresh `Vec<u8>`.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode_into(value, &mut out)?;
    Ok(out)
}

/// Serialize `value` directly into an existing buffer — this is the
/// zero-copy entry point `margo::frame` uses to build a frame (length
/// prefix, header, body) in a single reusable `BytesMut` scratch.
pub fn encode_into<T: Serialize + ?Sized, B: BufMut>(
    value: &T,
    out: &mut B,
) -> Result<(), WireError> {
    value.serialize(&mut ser::Serializer::new(out))
}

/// Deserialize a value from `input`, requiring the whole slice be consumed.
pub fn from_slice<'de, T: Deserialize<'de>>(input: &'de [u8]) -> Result<T, WireError> {
    let mut de = de::Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    if de.remaining() != 0 {
        return Err(WireError::TrailingBytes);
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de> + std::fmt::Debug,
    {
        let encoded = to_vec(value).expect("encode");
        from_slice(&encoded).expect("decode")
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Inner {
        id: u64,
        tags: Vec<String>,
        blob: Vec<u8>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    enum Kind {
        Empty,
        Named(String),
        Pair(u32, u32),
        Full { x: i64, ok: bool },
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Outer {
        name: String,
        inner: Option<Inner>,
        kind: Kind,
        table: BTreeMap<String, i64>,
        ratio: f64,
    }

    fn sample_outer() -> Outer {
        Outer {
            name: "svr-1".into(),
            inner: Some(Inner {
                id: 42,
                tags: vec!["a".into(), "bb".into()],
                blob: (0..=255u8).collect(),
            }),
            kind: Kind::Full { x: -7, ok: true },
            table: [("put".to_string(), -1i64), ("get".to_string(), 900)].into(),
            ratio: 0.125,
        }
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(round_trip(&true), true);
        assert_eq!(round_trip(&false), false);
        assert_eq!(round_trip(&0u8), 0u8);
        assert_eq!(round_trip(&u64::MAX), u64::MAX);
        assert_eq!(round_trip(&-1i32), -1i32);
        assert_eq!(round_trip(&i64::MIN), i64::MIN);
        assert_eq!(round_trip(&1.5f32), 1.5f32);
        assert_eq!(round_trip(&-2.25f64), -2.25f64);
        assert_eq!(round_trip(&'é'), 'é');
        assert_eq!(round_trip(&"hello".to_string()), "hello");
        assert_eq!(round_trip(&()), ());
        assert_eq!(round_trip(&(7u32, "x".to_string())), (7u32, "x".to_string()));
    }

    #[test]
    fn structs_and_enums_round_trip() {
        let outer = sample_outer();
        assert_eq!(round_trip(&outer), outer);
        for kind in [
            Kind::Empty,
            Kind::Named("n".into()),
            Kind::Pair(1, 2),
            Kind::Full { x: i64::MIN, ok: false },
        ] {
            assert_eq!(round_trip(&kind), kind);
        }
    }

    #[test]
    fn options_round_trip() {
        assert_eq!(round_trip(&Option::<u32>::None), None);
        assert_eq!(round_trip(&Some(5u32)), Some(5u32));
        assert_eq!(round_trip(&Some("s".to_string())), Some("s".to_string()));
    }

    #[test]
    fn byte_blobs_encode_compactly() {
        for len in [0usize, 1, 4096] {
            let blob: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let encoded = to_vec(&blob).expect("encode");
            assert!(
                encoded.len() <= blob.len() + 16,
                "blob of {} bytes encoded to {} bytes",
                blob.len(),
                encoded.len()
            );
            assert_eq!(from_slice::<Vec<u8>>(&encoded).expect("decode"), blob);
        }
    }

    #[test]
    fn empty_seq_is_not_a_byte_run() {
        // An empty Vec<u8> carries no element-type evidence, so it must
        // stay a Seq and decode as an empty list of anything.
        let encoded = to_vec(&Vec::<u8>::new()).expect("encode");
        assert_eq!(encoded[0], tag::SEQ);
        assert_eq!(from_slice::<Vec<String>>(&encoded).expect("decode"), Vec::<String>::new());
        let value: serde_json::Value = from_slice(&encoded).expect("decode as value");
        assert_eq!(value, serde_json::json!([]));
    }

    #[test]
    fn non_byte_seqs_use_general_layout() {
        let v = vec![1u32, 300, 70000];
        assert_eq!(round_trip(&v), v);
        let encoded = to_vec(&v).expect("encode");
        assert_eq!(encoded[0], tag::SEQ);
    }

    /// Serializes as a u8 for small values, a string otherwise — exercises
    /// the probe-flush path where a sequence starts byte-like and then
    /// must be replayed as a general Seq.
    enum Elem {
        Byte(u8),
        Text(&'static str),
    }

    impl Serialize for Elem {
        fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Elem::Byte(b) => s.serialize_u8(*b),
                Elem::Text(t) => s.serialize_str(t),
            }
        }
    }

    #[test]
    fn probe_flush_replays_buffered_bytes() {
        let mixed = vec![Elem::Byte(1), Elem::Byte(2), Elem::Text("three")];
        let encoded = to_vec(&mixed).expect("encode");
        assert_eq!(encoded[0], tag::SEQ);
        let value: serde_json::Value = from_slice(&encoded).expect("decode");
        assert_eq!(value, serde_json::json!([1, 2, "three"]));
    }

    #[test]
    fn json_value_round_trips_through_wire() {
        let v = serde_json::json!({
            "margo": {"progress_pool": "__primary__", "rpc_pool": null},
            "pools": [{"name": "p1", "kind": "fifo_wait"}, {"name": "p2"}],
            "counts": [0, 1, -5, 2.5],
            "enabled": true,
        });
        let encoded = to_vec(&v).expect("encode");
        let back: serde_json::Value = from_slice(&encoded).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn wire_decode_matches_json_decode() {
        // Satellite property, deterministic instance:
        // decode_wire(encode_wire(x)) == decode_json(encode_json(x)).
        let x = sample_outer();
        let via_wire: Outer = from_slice(&to_vec(&x).unwrap()).unwrap();
        let via_json: Outer =
            serde_json::from_slice(&serde_json::to_vec(&x).unwrap()).unwrap();
        assert_eq!(via_wire, via_json);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = to_vec(&7u32).expect("encode");
        encoded.push(0);
        assert_eq!(from_slice::<u32>(&encoded), Err(WireError::TrailingBytes));
    }

    #[test]
    fn truncation_rejected() {
        let encoded = to_vec(&"a longer string".to_string()).expect("encode");
        for cut in 0..encoded.len() {
            assert!(from_slice::<String>(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(from_slice::<u32>(b"{not json").is_err());
        assert_eq!(from_slice::<u32>(&[0x7b]), Err(WireError::InvalidTag(0x7b)));
    }

    #[test]
    fn unknown_struct_fields_are_skipped() {
        // Decoding a map with extra keys into a struct must skip the extra
        // values via deserialize_ignored_any (serde derive ignores unknown
        // fields by default).
        #[derive(Serialize)]
        struct Wide {
            id: u64,
            extra: Vec<u8>,
        }
        #[derive(Deserialize, Debug, PartialEq)]
        struct Narrow {
            id: u64,
        }
        let encoded = to_vec(&Wide { id: 9, extra: vec![1, 2, 3] }).unwrap();
        assert_eq!(from_slice::<Narrow>(&encoded).unwrap(), Narrow { id: 9 });
    }

    #[test]
    fn integer_edges() {
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(round_trip(&v), v);
        }
        for v in [0u64, 127, 128, u64::MAX] {
            assert_eq!(round_trip(&v), v);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_kind() -> impl Strategy<Value = Kind> {
            prop_oneof![
                Just(Kind::Empty),
                "[a-z]{0,6}".prop_map(Kind::Named),
                (any::<u32>(), any::<u32>()).prop_map(|(a, b)| Kind::Pair(a, b)),
                (any::<i64>(), any::<bool>()).prop_map(|(x, ok)| Kind::Full { x, ok }),
            ]
        }

        fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
            prop_oneof![Just(0usize), Just(1), Just(4096)]
                .prop_flat_map(|len| prop::collection::vec(any::<u8>(), len))
        }

        fn arb_inner() -> impl Strategy<Value = Inner> {
            (any::<u64>(), prop::collection::vec("[a-z]{0,5}", 0..4), arb_blob())
                .prop_map(|(id, tags, blob)| Inner { id, tags, blob })
        }

        fn arb_outer() -> impl Strategy<Value = Outer> {
            (
                "[a-z]{0,8}",
                prop::option::of(arb_inner()),
                arb_kind(),
                prop::collection::btree_map("[a-z]{0,5}", any::<i64>(), 0..5),
                -1.0e9..1.0e9f64,
            )
                .prop_map(|(name, inner, kind, table, ratio)| Outer {
                    name,
                    inner,
                    kind,
                    table,
                    ratio,
                })
        }

        fn arb_json() -> impl Strategy<Value = serde_json::Value> {
            let leaf = prop_oneof![
                Just(serde_json::Value::Null),
                any::<bool>().prop_map(serde_json::Value::from),
                any::<u64>().prop_map(serde_json::Value::from),
                any::<i64>().prop_map(serde_json::Value::from),
                (-1.0e9..1.0e9f64).prop_map(serde_json::Value::from),
                "[ -~]{0,8}".prop_map(serde_json::Value::from),
            ];
            leaf.prop_recursive(3, 24, 6, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 0..5)
                        .prop_map(serde_json::Value::Array),
                    prop::collection::btree_map("[a-z]{0,5}", inner, 0..5).prop_map(|m| {
                        serde_json::Value::Object(m.into_iter().collect())
                    }),
                ]
            })
        }

        proptest! {
            #[test]
            fn outer_round_trips(x in arb_outer()) {
                prop_assert_eq!(round_trip(&x), x);
            }

            #[test]
            fn wire_and_json_decodes_agree(x in arb_outer()) {
                let via_wire: Outer = from_slice(&to_vec(&x).unwrap()).unwrap();
                let via_json: Outer =
                    serde_json::from_slice(&serde_json::to_vec(&x).unwrap()).unwrap();
                prop_assert_eq!(via_wire, via_json);
            }

            #[test]
            fn json_values_round_trip(v in arb_json()) {
                let back: serde_json::Value = from_slice(&to_vec(&v).unwrap()).unwrap();
                prop_assert_eq!(back, v);
            }

            #[test]
            fn blobs_stay_compact(blob in arb_blob()) {
                let encoded = to_vec(&blob).unwrap();
                prop_assert!(encoded.len() <= blob.len() + 16);
                prop_assert_eq!(from_slice::<Vec<u8>>(&encoded).unwrap(), blob);
            }
        }
    }
}
