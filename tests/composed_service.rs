//! The composition example of §3.2: "a Mochi component M managing
//! 'datasets' by storing their metadata in a key-value store (managed by
//! the Yokan component) and their data in a blob storage target (managed
//! by the Warabi component)". We build M as a plain client-side library
//! over the two providers, then exercise the dynamic machinery on the
//! composed whole: migrate the metadata provider while the dataset
//! service keeps working.

use serde_json::json;

use mochi_rs::bedrock::{BedrockServer, Client, ModuleCatalog, ProcessConfig, ProviderSpec};
use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::util::TempDir;
use mochi_rs::warabi::TargetHandle;
use mochi_rs::yokan::DatabaseHandle;

/// Component "M": datasets = metadata in Yokan + payload in Warabi.
struct DatasetClient {
    metadata: DatabaseHandle,
    blobs: TargetHandle,
}

impl DatasetClient {
    fn store(&self, name: &str, description: &str, payload: &[u8]) {
        let blob = self.blobs.create(payload.len() as u64).unwrap();
        self.blobs.write(blob, 0, payload).unwrap();
        let meta = json!({
            "description": description,
            "blob": blob,
            "bytes": payload.len(),
        });
        self.metadata.put(name.as_bytes(), meta.to_string().as_bytes()).unwrap();
    }

    fn load(&self, name: &str) -> Option<(String, Vec<u8>)> {
        let meta_bytes = self.metadata.get(name.as_bytes()).unwrap()?;
        let meta: serde_json::Value = serde_json::from_slice(&meta_bytes).unwrap();
        let blob = meta["blob"].as_u64().unwrap();
        let bytes = meta["bytes"].as_u64().unwrap();
        let payload = self.blobs.read(blob, 0, bytes).unwrap();
        Some((meta["description"].as_str().unwrap().to_string(), payload))
    }
}

fn catalog() -> ModuleCatalog {
    let mut catalog = ModuleCatalog::new();
    catalog.install("libyokan.so", mochi_rs::yokan::bedrock::bedrock_module());
    catalog.install("libwarabi.so", mochi_rs::warabi::bedrock::bedrock_module());
    catalog
}

#[test]
fn dataset_component_composes_yokan_and_warabi() {
    let fabric = Fabric::new();
    let dir = TempDir::new("composed").unwrap();
    let mut process = ProcessConfig::default();
    process.libraries.insert("yokan".into(), "libyokan.so".into());
    process.libraries.insert("warabi".into(), "libwarabi.so".into());
    process.providers.push(
        ProviderSpec::new("metadata", "yokan", 1).with_config(json!({"backend": "lsm"})),
    );
    process.providers.push(
        ProviderSpec::new("data", "warabi", 2).with_config(json!({"target": "file"})),
    );
    let n1 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &process,
        catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    // A second, empty process to migrate onto later.
    let mut empty = ProcessConfig::default();
    empty.libraries.insert("yokan".into(), "libyokan.so".into());
    empty.libraries.insert("warabi".into(), "libwarabi.so".into());
    let n2 = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n2", 1),
        &empty,
        catalog(),
        dir.path().join("n2"),
    )
    .unwrap();

    let client_margo = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let datasets = DatasetClient {
        metadata: DatabaseHandle::new(&client_margo, n1.address(), 1),
        blobs: TargetHandle::new(&client_margo, n1.address(), 2),
    };

    // Store a handful of datasets (one large enough for the bulk path).
    let big_payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    datasets.store("runs/nova/001", "first NOvA run", b"small payload");
    datasets.store("runs/nova/002", "second run", &big_payload);

    let (description, payload) = datasets.load("runs/nova/002").unwrap();
    assert_eq!(description, "second run");
    assert_eq!(payload, big_payload);
    assert!(datasets.load("runs/ghost").is_none());

    // Dynamic step: migrate the metadata provider to n2 while the blobs
    // stay on n1 — components move independently (composability).
    let bedrock = Client::new(&client_margo).make_service_handle(n1.address(), 0);
    bedrock
        .migrate_provider("metadata", &n2.address(), mochi_rs::remi::Strategy::Rdma)
        .unwrap();

    let moved = DatasetClient {
        metadata: DatabaseHandle::new(&client_margo, n2.address(), 1),
        blobs: TargetHandle::new(&client_margo, n1.address(), 2),
    };
    let (description, payload) = moved.load("runs/nova/001").unwrap();
    assert_eq!(description, "first NOvA run");
    assert_eq!(payload, b"small payload");

    // The old location no longer serves metadata.
    assert!(datasets.metadata.get(b"runs/nova/001").is_err());

    n1.shutdown();
    n2.shutdown();
    client_margo.finalize();
}

#[test]
fn jx9_inventory_of_a_composed_process() {
    // Operators can ask a composed process what it runs, per component
    // type (a richer Listing-4-style query).
    let fabric = Fabric::new();
    let dir = TempDir::new("composed-jx9").unwrap();
    let mut process = ProcessConfig::default();
    process.libraries.insert("yokan".into(), "libyokan.so".into());
    process.libraries.insert("warabi".into(), "libwarabi.so".into());
    process.providers.push(ProviderSpec::new("meta1", "yokan", 1));
    process.providers.push(ProviderSpec::new("meta2", "yokan", 2));
    process.providers.push(ProviderSpec::new("blobs", "warabi", 3));
    let server = BedrockServer::bootstrap(
        &fabric,
        Address::tcp("n1", 1),
        &process,
        catalog(),
        dir.path().join("n1"),
    )
    .unwrap();
    let client_margo = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let handle = Client::new(&client_margo).make_service_handle(server.address(), 0);
    let result = handle
        .query(
            r#"$by_type = {};
               foreach ($__config__.providers as $p) {
                   $count = $by_type[$p.type];
                   if ($count == null) { $count = 0; }
                   $by_type[$p.type] = $count + 1; }
               return $by_type;"#,
        )
        .unwrap();
    assert_eq!(result, json!({"yokan": 2, "warabi": 1}));
    server.shutdown();
    client_margo.finalize();
}
