//! Reproduces Figure 2 of the paper literally: three providers (A, B, C)
//! in one process, pools X/Y/Z, ES0 serving X+Y, ES1 serving Z with the
//! network progress loop associated with Pool Z; RPCs targeting A or B run
//! in Pool X, RPCs targeting C run in Pool Y.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mochi_rs::margo::{MargoConfig, MargoRuntime};
use mochi_rs::mercury::{Address, Fabric};

fn figure2_config() -> MargoConfig {
    MargoConfig::from_json(
        r#"{
          "argobots": {
            "pools": [
              { "name": "PoolX", "type": "fifo_wait", "access": "mpmc" },
              { "name": "PoolY", "type": "fifo_wait", "access": "mpmc" },
              { "name": "PoolZ", "type": "fifo_wait", "access": "mpmc" }
            ],
            "xstreams": [
              { "name": "ES0", "scheduler": { "type": "basic_wait", "pools": ["PoolX", "PoolY"] } },
              { "name": "ES1", "scheduler": { "type": "basic_wait", "pools": ["PoolZ"] } }
            ]
          },
          "progress_pool": "PoolZ",
          "default_rpc_pool": "PoolX"
        }"#,
    )
    .unwrap()
}

#[test]
fn figure2_topology_boots_and_routes() {
    let fabric = Fabric::new();
    let server =
        MargoRuntime::init(&fabric, Address::tcp("fig2", 1), &figure2_config()).unwrap();
    let client = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();

    // Provider A and B in PoolX, provider C in PoolY (Figure 2 mapping).
    let hits = Arc::new(AtomicUsize::new(0));
    for (provider_id, pool) in [(1u16, "PoolX"), (2, "PoolX"), (3, "PoolY")] {
        let hits = Arc::clone(&hits);
        server
            .register_typed("work", provider_id, Some(pool), move |n: u64, _| {
                hits.fetch_add(1, Ordering::SeqCst);
                Ok(n + u64::from(provider_id))
            })
            .unwrap();
    }

    for provider_id in [1u16, 2, 3] {
        let out: u64 = client.forward(&server.address(), "work", provider_id, &100u64).unwrap();
        assert_eq!(out, 100 + u64::from(provider_id));
    }
    assert_eq!(hits.load(Ordering::SeqCst), 3);

    // The topology reads back exactly as configured.
    let config = server.config_json();
    let pool_names: Vec<&str> = config["argobots"]["pools"]
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p["name"].as_str().unwrap())
        .collect();
    assert_eq!(pool_names, vec!["PoolX", "PoolY", "PoolZ"]);
    assert_eq!(config["progress_pool"], "PoolZ");
    let registrations = server.registrations();
    assert_eq!(registrations.len(), 3);
    assert!(registrations.iter().any(|(n, p, pool)| n == "work" && *p == 3 && pool == "PoolY"));

    // Pool statistics show the routing: PoolX executed two handlers,
    // PoolY one, PoolZ none (progress runs off-pool in this port; the
    // pool exists for configuration fidelity).
    let stats = server.abt().pool_stats();
    let popped = |name: &str| {
        stats.iter().find(|p| p.name == name).map(|p| p.total_popped).unwrap_or(0)
    };
    assert_eq!(popped("PoolX"), 2);
    assert_eq!(popped("PoolY"), 1);
    assert_eq!(popped("PoolZ"), 0);

    server.finalize();
    client.finalize();
}

#[test]
fn figure2_validity_rules_hold() {
    let fabric = Fabric::new();
    let server =
        MargoRuntime::init(&fabric, Address::tcp("fig2v", 1), &figure2_config()).unwrap();
    // Removing a pool in use by an ES fails (the paper's exact example).
    assert!(server.remove_pool("PoolX").is_err());
    // Adding a duplicate pool name fails.
    assert!(server.add_pool_from_json(r#"{"name": "PoolX"}"#).is_err());
    // Removing the ES first, then the now-unused pool, succeeds.
    server.remove_xstream("ES0").unwrap();
    // PoolX still has no handlers registered, so margo releases it.
    server.remove_pool("PoolX").unwrap();
    server.remove_pool("PoolY").unwrap();
    server.finalize();
}
