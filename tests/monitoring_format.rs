//! Reproduces Listing 1: the monitoring JSON a Mochi process emits, with
//! per-context keys (`parent_rpc:parent_provider:rpc:provider`), per-peer
//! `received from <addr>` blocks, ULT duration statistics, and the
//! periodic in-flight/pool-size samples the paper's §4 describes.

use mochi_rs::margo::{rpc_id_for_name, MargoConfig, MargoRuntime};
use mochi_rs::mercury::{Address, Fabric};

#[test]
fn listing1_shape_from_a_live_service() {
    let fabric = Fabric::new();
    let mut config = MargoConfig::default();
    config.monitoring.sampling_period_ms = 10;
    let server = MargoRuntime::init(&fabric, Address::tcp("mon-server", 1), &config).unwrap();
    let client = MargoRuntime::init_default(&fabric, Address::tcp("mon-client", 1)).unwrap();

    // An "echo" RPC, as in the listing.
    server
        .register_typed("echo", 0, None, |s: String, _| Ok(s))
        .unwrap();
    for _ in 0..3 {
        let _: String = client.forward(&server.address(), "echo", 0, &"hi".to_string()).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(50)); // a few samples

    let stats = server.monitoring_json().unwrap();

    // Key format: 65535:65535:<rpc_id>:<provider_id> for top-level calls.
    let echo_id = rpc_id_for_name("echo");
    let key = format!("65535:65535:{echo_id}:0");
    let entry = &stats["rpcs"][&key];
    assert_eq!(entry["rpc_id"].as_u64().unwrap(), echo_id);
    assert_eq!(entry["provider_id"], 0);
    assert_eq!(entry["parent_rpc_id"], 65535);
    assert_eq!(entry["parent_provider_id"], 65535);
    assert_eq!(entry["name"], "echo");

    // target → "received from <addr>" → ult → duration {num avg min max}.
    let peer_key = format!("received from {}", client.address());
    let duration = &entry["target"][&peer_key]["ult"]["duration"];
    assert_eq!(duration["num"], 3);
    for field in ["avg", "min", "max", "var", "sum"] {
        assert!(duration[field].is_number(), "missing {field}: {duration}");
    }
    assert!(duration["max"].as_f64().unwrap() >= duration["min"].as_f64().unwrap());

    // The origin side lives in the *client's* dump.
    let client_stats = client.monitoring_json().unwrap();
    let sent_key = format!("sent to {}", server.address());
    let forward = &client_stats["rpcs"][&key]["origin"][&sent_key]["forward"]["duration"];
    assert_eq!(forward["num"], 3);

    // §4: "periodically tracks the number of in-flight RPCs and the sizes
    // of user-level thread pools".
    let progress = &stats["progress"];
    assert!(progress["samples"].as_u64().unwrap() >= 2);
    assert!(progress["in_flight_rpcs"]["target"]["num"].as_u64().unwrap() >= 2);
    assert!(progress["pool_sizes"].as_object().unwrap().contains_key("__primary__"));

    server.finalize();
    client.finalize();
}

#[test]
fn nested_rpcs_attribute_parent_context() {
    // Listing 1's note: "these statistics also include the context
    // (parent RPC and parent provider) in which an RPC was issued".
    let fabric = Fabric::new();
    let backend = MargoRuntime::init_default(&fabric, Address::tcp("backend", 1)).unwrap();
    let frontend = MargoRuntime::init_default(&fabric, Address::tcp("frontend", 1)).unwrap();
    let client = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();

    backend.register_typed("store", 2, None, |v: u64, _| Ok(v)).unwrap();
    let backend_addr = backend.address();
    frontend
        .register_typed("ingest", 7, None, move |v: u64, ctx| {
            ctx.forward::<u64, u64>(&backend_addr, "store", 2, &v).map_err(|e| e.to_string())
        })
        .unwrap();
    let _: u64 = client.forward(&frontend.address(), "ingest", 7, &9u64).unwrap();

    let stats = backend.monitoring_json().unwrap();
    let ingest_id = rpc_id_for_name("ingest");
    let store_id = rpc_id_for_name("store");
    let nested_key = format!("{ingest_id}:7:{store_id}:2");
    assert!(
        stats["rpcs"].as_object().unwrap().contains_key(&nested_key),
        "expected parent-attributed key {nested_key}, got {:?}",
        stats["rpcs"].as_object().unwrap().keys().collect::<Vec<_>>()
    );
    let entry = &stats["rpcs"][&nested_key];
    assert_eq!(entry["parent_rpc_id"].as_u64().unwrap(), ingest_id);
    assert_eq!(entry["parent_provider_id"], 7);
    // And it was received from the *frontend*, not the client.
    let peer_key = format!("received from {}", frontend.address());
    assert_eq!(entry["target"][&peer_key]["ult"]["duration"]["num"], 1);

    backend.finalize();
    frontend.finalize();
    client.finalize();
}

#[test]
fn monitoring_can_be_disabled_entirely() {
    let fabric = Fabric::new();
    let mut config = MargoConfig::default();
    config.monitoring.enabled = false;
    let server = MargoRuntime::init(&fabric, Address::tcp("quiet", 1), &config).unwrap();
    let client = MargoRuntime::init_default(&fabric, Address::tcp("cq", 1)).unwrap();
    server.register_typed("echo", 0, None, |s: String, _| Ok(s)).unwrap();
    let _: String = client.forward(&server.address(), "echo", 0, &"x".to_string()).unwrap();
    assert!(server.monitoring_json().is_none());
    server.finalize();
    client.finalize();
}
