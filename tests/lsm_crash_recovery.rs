//! Crash-recovery coverage for the striped LSM write path (DESIGN.md
//! §15): a "crash" is dropping the database instance at a chosen point
//! and reopening the directory, with the flush-path fault hooks
//! (`LsmFailPoint`) pinning the crash instant inside the drain.
//!
//! The contract under test: every acknowledged write survives a crash
//! at ANY point of the seal → persist → truncate pipeline, and recovery
//! is idempotent when the crash left both a table and its source
//! segment behind.

use std::path::Path;
use std::sync::{Arc, Mutex};

use mochi_util::TempDir;
use mochi_yokan::backend::lsm::{LsmConfig, LsmDatabase, LsmFailPoint};
use mochi_yokan::Database;

/// Counts on-disk files by extension — the only view a crashed process
/// leaves behind.
fn files_with_ext(dir: &Path, ext: &str) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == ext))
        .count()
}

/// Crash in the window between seal and flush: sealed segments exist on
/// disk, no table was ever written. A stalled background pool holds the
/// pipeline in exactly that state.
#[test]
fn acked_writes_survive_crash_between_seal_and_flush() {
    let dir = TempDir::new("crash-sealed").unwrap();
    let config = LsmConfig { memtable_bytes: 256, stripes: 2, ..LsmConfig::default() };
    {
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        // Never runs its tasks: every seal parks as a `.seg` file.
        assert!(db.set_background_executor(Arc::new(|_task| {})));
        for i in 0..100u32 {
            db.put(format!("seal-{i:04}").as_bytes(), &[b'a'; 64]).unwrap();
        }
        assert_eq!(db.table_count(), 0, "stalled pool must not have flushed");
        assert!(files_with_ext(dir.path(), "seg") > 0, "expected sealed segments on disk");
        // Crash: drop without flush. Acked state lives only in segments
        // and the active WALs.
    }
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(db.len().unwrap(), 100);
    assert_eq!(db.get(b"seal-0042").unwrap().as_deref(), Some([b'a'; 64].as_slice()));
    // Recovered segments are queued for flush, not stranded.
    db.flush().unwrap();
    assert_eq!(db.sealed_bytes(), 0);
    assert_eq!(db.len().unwrap(), 100);
}

/// Crash inside the drain, before the SSTable hits disk: the fault hook
/// aborts maintenance, leaving only WAL state behind.
#[test]
fn crash_before_table_persist_replays_from_segments() {
    let dir = TempDir::new("crash-pre-table").unwrap();
    let config = LsmConfig { memtable_bytes: 256, stripes: 1, ..LsmConfig::default() };
    {
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        // Synchronous executor: the fault fires deterministically inside
        // the caller that sealed.
        assert!(db.set_background_executor(Arc::new(|task| task())));
        db.set_fail_point(LsmFailPoint::BeforeTablePersist);
        for i in 0..30u32 {
            db.put(format!("pre-{i:04}").as_bytes(), &[b'b'; 32]).unwrap();
        }
        assert!(db.take_background_error().is_some(), "fault never fired");
        assert_eq!(files_with_ext(dir.path(), "tbl"), 0);
        assert!(files_with_ext(dir.path(), "seg") > 0);
        // Crash with the injected fault still armed; a fresh instance
        // starts clean (fail points are per-instance).
    }
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(db.len().unwrap(), 30);
    for i in 0..30u32 {
        assert_eq!(
            db.get(format!("pre-{i:04}").as_bytes()).unwrap().as_deref(),
            Some([b'b'; 32].as_slice()),
            "acked write pre-{i:04} lost in recovery"
        );
    }
}

/// Crash after the SSTable is durable but before its source segment is
/// truncated: recovery sees the same data twice (table + segment) and
/// must converge to a single copy.
#[test]
fn duplicate_table_and_segment_recover_idempotently() {
    let dir = TempDir::new("crash-dup").unwrap();
    let config = LsmConfig { memtable_bytes: 256, stripes: 1, ..LsmConfig::default() };
    {
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        assert!(db.set_background_executor(Arc::new(|task| task())));
        db.set_fail_point(LsmFailPoint::AfterTablePersist);
        for i in 0..30u32 {
            db.put(format!("dup-{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        assert!(db.take_background_error().is_some(), "fault never fired");
        // The crash window: table durable, segment not yet deleted.
        assert!(files_with_ext(dir.path(), "tbl") > 0);
        assert!(files_with_ext(dir.path(), "seg") > 0);
    }
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(db.len().unwrap(), 30, "duplicate table+segment must not double-count");
    assert_eq!(db.get(b"dup-0007").unwrap().as_deref(), Some(b"v7".as_slice()));
    // Draining the recovered segment retires it for good.
    db.flush().unwrap();
    assert_eq!(files_with_ext(dir.path(), "seg"), 0);
    drop(db);
    // Second recovery from the now-clean layout: still idempotent.
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(db.len().unwrap(), 30);
    assert_eq!(db.get(b"dup-0029").unwrap().as_deref(), Some(b"v29".as_slice()));
}

/// Crash while background maintenance is genuinely concurrent: writers
/// overwrite keys while flushes race on real threads, then the process
/// "dies" mid-churn. Recovery must hold exactly the acknowledged final
/// values — no loss, no resurrection of overwritten data.
#[test]
fn mid_churn_crash_recovers_exactly_the_acked_state() {
    let dir = TempDir::new("crash-churn").unwrap();
    let config = LsmConfig { memtable_bytes: 1024, stripes: 4, ..LsmConfig::default() };
    let pending: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
    {
        let db = LsmDatabase::open(dir.path(), config).unwrap();
        let handles = Arc::clone(&pending);
        assert!(db.set_background_executor(Arc::new(move |task| {
            handles.lock().unwrap().push(std::thread::spawn(task));
        })));
        for round in 0..2u32 {
            for i in 0..200u32 {
                db.put(format!("churn-{i:04}").as_bytes(), format!("r{round}").as_bytes())
                    .unwrap();
            }
        }
        // Crash: drop with maintenance possibly mid-flight.
    }
    // The dropped instance's in-flight tasks abort via their dead weak
    // handle (or finish their current drain); wait them out so reopen
    // reads a quiescent directory, as a post-crash restart would.
    for handle in pending.lock().unwrap().drain(..) {
        handle.join().unwrap();
    }
    let db = LsmDatabase::open(dir.path(), config).unwrap();
    assert_eq!(db.len().unwrap(), 200);
    for i in 0..200u32 {
        assert_eq!(
            db.get(format!("churn-{i:04}").as_bytes()).unwrap().as_deref(),
            Some(b"r1".as_slice()),
            "churn-{i:04} must hold the last acknowledged overwrite"
        );
    }
}
