//! The Colza strategy from the paper (§6): "Colza providers declare a
//! dependency on SSG to keep track of the group's view and maintain a
//! hash of this view. Any RPC sent by client applications has this hash
//! as an argument. A mismatch between the hash sent by the client and the
//! hash maintained by a Colza provider informs the latter that the
//! client's view of the group is outdated."
//!
//! We build a minimal Colza-style provider whose RPCs carry the client's
//! view hash and are rejected when stale, and show the full client flow:
//! fetch view → call (ok) → membership changes → call (stale, rejected) →
//! refresh view → call (ok).

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use mochi_rs::margo::MargoRuntime;
use mochi_rs::mercury::{Address, Fabric};
use mochi_rs::ssg::{SsgGroup, SwimConfig, ViewObserver};
use mochi_rs::util::time::wait_until;

const SSG_PROVIDER: u16 = 42;
const COLZA_PROVIDER: u16 = 50;

#[derive(Debug, Serialize, Deserialize)]
struct RenderArgs {
    view_hash: u64,
    pipeline: String,
}

#[derive(Debug, Serialize, Deserialize)]
enum RenderReply {
    Done,
    StaleView,
}

/// Registers the Colza-style provider: executes only when the caller's
/// view matches the provider's SSG view.
fn register_colza(margo: &MargoRuntime, group: Arc<SsgGroup>) {
    margo
        .register_typed(
            "colza_render",
            COLZA_PROVIDER,
            None,
            move |args: RenderArgs, _| {
                if args.view_hash != group.view_hash() {
                    return Ok(RenderReply::StaleView);
                }
                // ... run the in situ pipeline ...
                let _ = args.pipeline;
                Ok(RenderReply::Done)
            },
        )
        .unwrap();
}

#[test]
fn stale_view_hash_is_detected_and_recovered() {
    let fabric = Fabric::new();
    let addresses: Vec<Address> =
        (0..3).map(|i| Address::tcp(format!("colza{i}"), 1)).collect();
    let members: Vec<(MargoRuntime, Arc<SsgGroup>)> = addresses
        .iter()
        .map(|addr| {
            let margo = MargoRuntime::init_default(&fabric, addr.clone()).unwrap();
            let group =
                SsgGroup::create(&margo, SSG_PROVIDER, SwimConfig::fast(), &addresses).unwrap();
            register_colza(&margo, Arc::clone(&group));
            (margo, group)
        })
        .collect();

    let client = MargoRuntime::init_default(&fabric, Address::tcp("client", 1)).unwrap();
    let observer = ViewObserver::new(&client, SSG_PROVIDER);

    // 1. Fetch the view; the call goes through.
    let view = observer.get_view(&addresses[0]).unwrap();
    assert_eq!(view.len(), 3);
    let reply: RenderReply = client
        .forward(
            &addresses[0],
            "colza_render",
            COLZA_PROVIDER,
            &RenderArgs { view_hash: view.hash(), pipeline: "isosurface".into() },
        )
        .unwrap();
    assert!(matches!(reply, RenderReply::Done));

    // 2. Membership changes (member 2 leaves gracefully).
    members[2].1.leave();
    members[2].0.finalize();
    assert!(wait_until(Duration::from_secs(10), Duration::from_millis(10), || {
        members[0].1.view().len() == 2
    }));

    // 3. The client's cached hash is now stale: the provider refuses.
    let reply: RenderReply = client
        .forward(
            &addresses[0],
            "colza_render",
            COLZA_PROVIDER,
            &RenderArgs { view_hash: view.hash(), pipeline: "isosurface".into() },
        )
        .unwrap();
    assert!(matches!(reply, RenderReply::StaleView));

    // 4. Refresh and retry: accepted again.
    let fresh = observer.get_view(&addresses[0]).unwrap();
    assert_eq!(fresh.len(), 2);
    assert_ne!(fresh.hash(), view.hash());
    let reply: RenderReply = client
        .forward(
            &addresses[0],
            "colza_render",
            COLZA_PROVIDER,
            &RenderArgs { view_hash: fresh.hash(), pipeline: "isosurface".into() },
        )
        .unwrap();
    assert!(matches!(reply, RenderReply::Done));

    for (margo, group) in &members[..2] {
        group.stop();
        margo.finalize();
    }
    client.finalize();
}
