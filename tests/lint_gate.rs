//! The `mochi-lint` gate as a tier-1 test: the workspace's own sources
//! must stay free of lock-order cycles, recursive re-locks, data-plane
//! `serde_json` uses, and *new* panic paths or blocking calls beyond
//! the debt frozen in `lint-allow.json`.
//!
//! To regenerate the allowlist after deliberately accepting new debt:
//! `cargo run -p mochi-lint -- --root . --write-allowlist`.

use std::path::Path;

#[test]
fn workspace_passes_mochi_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allowlist =
        mochi_lint::load_allowlist(&root.join("lint-allow.json")).expect("load lint-allow.json");
    let report = mochi_lint::run(root, &allowlist).expect("run mochi-lint");
    assert!(report.files > 0, "lint walked no files — wrong root?");
    assert!(
        !report.lock_edges.is_empty(),
        "lock-order extraction found no edges — the analysis is likely broken"
    );
    assert!(report.is_clean(), "{}", report.render());
}
