//! The `mochi-lint` gate as a tier-1 test: the workspace's own sources
//! must stay free of lock-order cycles, recursive re-locks, data-plane
//! `serde_json` uses, RPC contract violations, locks held across yield
//! points, raw forwards in service clients that bypass the retry-aware
//! chokepoints, the interprocedural hazards (handler-reachable deadline
//! loss, retry-unsound effects, relaxed decision flags — MOCHI012–014),
//! the guard-dataflow hazards (RPC under an ordered lock, swallowed
//! background errors, unbounded queue growth — MOCHI015–017),
//! and *new* panic paths or blocking calls beyond the debt frozen in
//! `lint-allow.json` — and the allowlist itself must carry no stale
//! entries (debt that was paid down but never pruned).
//!
//! To regenerate the allowlist after deliberately accepting new debt:
//! `cargo run -p mochi-lint -- --root . --write-allowlist`.

use std::path::Path;

#[test]
fn workspace_passes_mochi_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allowlist =
        mochi_lint::load_allowlist(&root.join("lint-allow.json")).expect("load lint-allow.json");
    let report = mochi_lint::run(root, &allowlist).expect("run mochi-lint");
    assert!(report.files > 0, "lint walked no files — wrong root?");
    assert!(
        !report.lock_edges.is_empty(),
        "lock-order extraction found no edges — the analysis is likely broken"
    );
    // The interprocedural analyses are only as good as the graph under
    // them: an empty or unresolved graph would let MOCHI012/013 pass
    // vacuously, so a resolution collapse must fail loudly here.
    assert!(
        report.graph_stats.nodes > 500 && report.graph_stats.edges > 500,
        "call graph collapsed: {} nodes, {} edges",
        report.graph_stats.nodes,
        report.graph_stats.edges
    );
    assert!(
        report.graph_stats.resolved_calls > report.graph_stats.fallback_edges,
        "most resolution should come from typing, not the unique-name fallback"
    );
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        report.stale_entries.is_empty(),
        "stale lint-allow.json entries (prune them or rerun --write-allowlist): {:?}",
        report.stale_entries
    );
}

#[test]
fn contract_table_covers_the_workspace_rpc_surface() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allowlist =
        mochi_lint::load_allowlist(&root.join("lint-allow.json")).expect("load lint-allow.json");
    let report = mochi_lint::run(root, &allowlist).expect("run mochi-lint");

    assert!(
        !report.contract_sites.is_empty(),
        "contract extraction found no register/forward sites — the analysis is likely broken"
    );

    // Spot-check that well-known RPCs from every service crate resolved
    // into the table with at least one registration each. These names
    // are defined in the per-crate `rpc_names` modules; if extraction or
    // const resolution regresses, they vanish from the table long before
    // any violation fires.
    let names = report.rpc_names();
    for expected in [
        "yokan_put",
        "yokan_get",
        // The routed-keyspace surfaces (DESIGN.md §17): batch erase and
        // the REMI-backed slice drain used by live rebalance.
        "yokan_erase_multi",
        "yokan_slice_export",
        "yokan_slice_import",
        // The replication surfaces (DESIGN.md §18): versioned
        // put-if-newer, quorum reads, and the hinted-handoff triplet.
        "yokan_put_versioned",
        "yokan_put_versioned_multi",
        "yokan_get_versioned_multi",
        "yokan_hint_put",
        "yokan_hint_list",
        "yokan_hint_drop",
        "warabi_write_bulk",
        "remi_migration_start",
        "ssg_ping",
        "raft_append_entries",
        "bedrock_get_config",
    ] {
        let (_, registrations, _) = names
            .iter()
            .find(|(name, _, _)| name == expected)
            .unwrap_or_else(|| panic!("{expected} missing from the contract table"));
        assert!(
            *registrations > 0,
            "{expected} is in the table but has no registration site"
        );
    }
}
